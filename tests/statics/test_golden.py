"""Golden effect-summary snapshots for every shipped algorithm.

The snapshots under ``tests/statics/golden/`` pin the analyzer's output
per algorithm.  Any drift — a handler gaining a write, a send changing
destination shape, a summary going open — fails here with a diff-style
message and the one-line regeneration command, so reviewers see effect
changes in the PR rather than discovering them in the explorer.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.statics.cli import collect_summaries
from repro.statics.snapshot import render_snapshot

GOLDEN_DIR = Path(__file__).parent / "golden"
SOURCE_ROOT = Path(__file__).parents[2] / "src" / "repro"
REGENERATE = (
    "PYTHONPATH=src python -m repro.statics src/repro "
    "--golden tests/statics/golden"
)


def current_summaries():
    return {
        summary.qualname: summary
        for _, summary in collect_summaries([str(SOURCE_ROOT)])
    }


def test_golden_directory_is_populated():
    assert sorted(GOLDEN_DIR.glob("*.json")), (
        f"no golden snapshots in {GOLDEN_DIR}; run: {REGENERATE}"
    )


@pytest.mark.parametrize(
    "golden_path",
    sorted(GOLDEN_DIR.glob("*.json")),
    ids=lambda path: path.stem,
)
def test_snapshot_matches_analyzer_output(golden_path):
    summaries = current_summaries()
    qualname = golden_path.stem
    assert qualname in summaries, (
        f"{golden_path.name} has no matching algorithm under src/repro — "
        f"stale snapshot; run: {REGENERATE}"
    )
    expected = golden_path.read_text(encoding="utf-8")
    actual = render_snapshot(summaries[qualname])
    assert actual == expected, (
        f"effect summary for {qualname} drifted from its golden "
        f"snapshot; if the change is intentional, run: {REGENERATE}"
    )


def test_every_algorithm_has_a_snapshot():
    snapshotted = {path.stem for path in GOLDEN_DIR.glob("*.json")}
    missing = sorted(set(current_summaries()) - snapshotted)
    assert not missing, (
        f"algorithms without golden snapshots: {missing}; run: {REGENERATE}"
    )

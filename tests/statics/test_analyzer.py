"""Unit tests for the effect-summary analyzer.

Each test feeds a small process class to :func:`summarize_module` (pure
AST mode) or :func:`summarize_algorithm` (runtime/MRO mode) and asserts
on the inferred :class:`EffectSummary` — the contract the sanitizer,
the lint rules and the explorer's commutation table all consume.
"""

from __future__ import annotations

import ast

import pytest

from repro.statics import (
    OPAQUE,
    RACE,
    summarize_algorithm,
    summarize_module,
)


def summarize_one(source: str):
    """The single algorithm summary of ``source``."""
    summaries = summarize_module(ast.parse(source))
    assert len(summaries) == 1, [s.qualname for s in summaries]
    return summaries[0]


def handler(summary, name):
    found = summary.handler(name)
    assert found is not None, f"no handler {name} in {summary.qualname}"
    return found


# ---------------------------------------------------------------------------
# Reads, writes, aliasing
# ---------------------------------------------------------------------------


def test_direct_attribute_reads_and_writes():
    summary = summarize_one(
        """
class P(BroadcastProcess):
    def __init__(self, pid, n):
        super().__init__(pid, n)
        self.seen = set()
        self.rounds = 0

    def on_receive(self, payload, sender):
        if payload.uid in self.seen:
            return
        self.seen.add(payload.uid)
        self.rounds += 1
        yield Deliver(payload)
"""
    )
    assert summary.closed
    recv = handler(summary, "on_receive")
    assert recv.reads == frozenset({"seen", "rounds"})
    assert recv.writes == frozenset({"seen", "rounds"})
    assert recv.delivers


def test_alias_through_local_binding_is_tracked():
    summary = summarize_one(
        """
class P(BroadcastProcess):
    def __init__(self, pid, n):
        super().__init__(pid, n)
        self.log = []

    def on_receive(self, payload, sender):
        buf = self.log
        buf.append(payload)
        yield Deliver(payload)
"""
    )
    assert summary.closed
    assert "log" in handler(summary, "on_receive").writes


def test_parameter_values_do_not_pollute_the_write_set():
    summary = summarize_one(
        """
class P(BroadcastProcess):
    def on_receive(self, payload, sender):
        local = list(payload)
        local.append(sender)
        yield Deliver(payload)
"""
    )
    assert summary.closed
    assert handler(summary, "on_receive").writes == frozenset()


def test_constructor_calls_do_not_count_as_mutation():
    # Capitalized-name calls build fresh values (the `Ballot(...)` idiom
    # in paxos); they must not conservatively mark their args written.
    summary = summarize_one(
        """
class P(BroadcastProcess):
    def __init__(self, pid, n):
        super().__init__(pid, n)
        self.round = 0

    def on_broadcast(self, message):
        ballot = Ballot(self.round, self.pid)
        yield from self.send_to_all((ballot, message))
"""
    )
    assert summary.closed
    bcast = handler(summary, "on_broadcast")
    assert bcast.writes == frozenset()
    assert bcast.reads == frozenset({"round", "pid"})


# ---------------------------------------------------------------------------
# Helper inlining and super() resolution
# ---------------------------------------------------------------------------


def test_self_method_helpers_are_inlined():
    summary = summarize_one(
        """
class P(BroadcastProcess):
    def __init__(self, pid, n):
        super().__init__(pid, n)
        self.seen = set()

    def on_receive(self, payload, sender):
        if self._fresh(payload):
            yield Deliver(payload)

    def _fresh(self, payload):
        if payload.uid in self.seen:
            return False
        self.seen.add(payload.uid)
        return True
"""
    )
    assert summary.closed
    recv = handler(summary, "on_receive")
    assert "seen" in recv.writes


def test_recursive_helpers_terminate():
    summary = summarize_one(
        """
class P(BroadcastProcess):
    def __init__(self, pid, n):
        super().__init__(pid, n)
        self.depth = 0

    def on_receive(self, payload, sender):
        self._sink(payload)
        yield Deliver(payload)

    def _sink(self, payload):
        self.depth += 1
        self._sink(payload)
"""
    )
    assert summary.closed
    assert "depth" in handler(summary, "on_receive").writes


def test_super_calls_resolve_through_in_module_base():
    summaries = summarize_module(
        ast.parse(
            """
class Base(BroadcastProcess):
    def __init__(self, pid, n):
        super().__init__(pid, n)
        self.inbox = []

    def on_receive(self, payload, sender):
        self.inbox.append(payload)
        yield Deliver(payload)

class Derived(Base):
    def __init__(self, pid, n):
        super().__init__(pid, n)
        self.count = 0

    def on_receive(self, payload, sender):
        self.count += 1
        yield from super().on_receive(payload, sender)
"""
        )
    )
    derived = {s.qualname: s for s in summaries}["Derived"]
    assert derived.closed
    recv = handler(derived, "on_receive")
    assert recv.writes == frozenset({"inbox", "count"})


def test_summarize_algorithm_resolves_cross_module_inheritance():
    from repro.broadcasts.kbo_attempt import KboAttemptBroadcast

    summary = summarize_algorithm(KboAttemptBroadcast)
    assert summary.closed
    assert summary.handler("on_receive") is not None


# ---------------------------------------------------------------------------
# Effects: destination shapes, oracle, deliveries, waits
# ---------------------------------------------------------------------------


def test_destination_shapes_are_classified():
    summary = summarize_one(
        """
class P(BroadcastProcess):
    def on_broadcast(self, message):
        for peer in self.others():
            yield Send(peer, message)
        yield Send(self.pid, message)
        yield Send(0, message)

    def on_receive(self, payload, sender):
        yield Send(sender, payload)
"""
    )
    assert summary.closed
    assert handler(summary, "on_broadcast").sends == frozenset(
        {"others", "self", "constant"}
    )
    assert handler(summary, "on_receive").sends == frozenset({"sender"})


def test_send_to_all_intrinsic_and_unknown_targets():
    summary = summarize_one(
        """
class P(BroadcastProcess):
    def on_broadcast(self, message):
        yield from self.send_to_all(message)

    def on_receive(self, payload, sender):
        target = payload[1]
        yield Send(target, payload)
"""
    )
    assert summary.closed
    assert handler(summary, "on_broadcast").sends == frozenset({"all"})
    assert handler(summary, "on_receive").sends == frozenset({"dynamic"})


def test_propose_and_wait_are_recorded():
    summary = summarize_one(
        """
class P(BroadcastProcess):
    def __init__(self, pid, n):
        super().__init__(pid, n)
        self.decided = None

    def on_broadcast(self, message):
        decision = yield Propose("obj", message.uid)
        self.decided = decision
        yield Wait(lambda: self.decided is not None)
        yield Deliver(message)

    def on_receive(self, payload, sender):
        yield Deliver(payload)
"""
    )
    assert summary.closed
    bcast = handler(summary, "on_broadcast")
    assert bcast.proposes
    assert bcast.waits
    recv = handler(summary, "on_receive")
    assert not recv.proposes and not recv.waits


# ---------------------------------------------------------------------------
# Per-message-type case refinement
# ---------------------------------------------------------------------------


def test_payload_tag_dispatch_yields_cases():
    summary = summarize_one(
        """
class P(BroadcastProcess):
    def __init__(self, pid, n):
        super().__init__(pid, n)
        self.acks = {}
        self.echoed = set()

    def on_broadcast(self, message):
        yield from self.send_to_all(("echo", message))

    def on_receive(self, payload, sender):
        kind, message = payload
        if kind == "echo":
            self.echoed.add(message.uid)
            yield Send(sender, ("ack", message))
        elif kind == "ack":
            self.acks[message.uid] = True
            yield Deliver(message)
"""
    )
    assert summary.closed
    recv = handler(summary, "on_receive")
    cases = dict(recv.cases)
    assert set(cases) == {"echo", "ack"}
    assert cases["echo"].sends == frozenset({"sender"})
    assert not cases["echo"].delivers
    assert cases["ack"].sends == frozenset()
    assert cases["ack"].delivers
    # each case's footprint is contained in the handler's
    for case in cases.values():
        assert case.writes <= recv.writes
        assert case.sends <= recv.sends


# ---------------------------------------------------------------------------
# Open reasons: races and opacity
# ---------------------------------------------------------------------------


def test_global_mutation_is_a_race():
    summary = summarize_one(
        """
SHARED = []

class P(BroadcastProcess):
    def on_receive(self, payload, sender):
        SHARED.append(payload)
        yield Deliver(payload)
"""
    )
    assert not summary.closed
    categories = [r.category for _, r in summary.open_reasons()]
    assert categories == [RACE]


def test_class_level_mutable_attribute_is_a_race():
    summary = summarize_one(
        """
class P(BroadcastProcess):
    ledger = {}

    def on_receive(self, payload, sender):
        self.ledger[payload.uid] = sender
        yield Deliver(payload)
"""
    )
    assert not summary.closed
    categories = [r.category for _, r in summary.open_reasons()]
    assert categories == [RACE]


@pytest.mark.parametrize(
    "body",
    [
        "setattr(self, 'x', payload)",
        "getattr(self, name)(payload)",
        "mystery_helper(self, payload)",
    ],
)
def test_dynamic_access_and_escapes_are_opaque(body):
    summary = summarize_one(
        f"""
class P(BroadcastProcess):
    def on_receive(self, payload, sender):
        name = 'slot'
        {body}
        yield Deliver(payload)
"""
    )
    assert not summary.closed
    categories = {r.category for _, r in summary.open_reasons()}
    assert categories == {OPAQUE}


def test_unrecognized_yield_is_opaque():
    summary = summarize_one(
        """
class P(BroadcastProcess):
    def on_receive(self, payload, sender):
        yield payload
"""
    )
    assert not summary.closed
    categories = {r.category for _, r in summary.open_reasons()}
    assert categories == {OPAQUE}


# ---------------------------------------------------------------------------
# Whole-tree invariants
# ---------------------------------------------------------------------------


def test_every_shipped_algorithm_summarizes_closed():
    from repro.statics.cli import collect_summaries

    collected = collect_summaries(["src/repro"])
    assert collected, "no algorithms found under src/repro"
    open_names = [s.qualname for _, s in collected if not s.closed]
    assert open_names == []


def test_service_processes_are_classified_as_services():
    from repro.registers.abd import AbdRegisterProcess

    summary = summarize_algorithm(AbdRegisterProcess)
    assert summary.kind == "service"
    assert summary.handler("on_invoke") is not None

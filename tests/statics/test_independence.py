"""The proven-commutation table: condition matrix and differentials.

``StaticIndependence.proves`` may only return True where reordering is
fingerprint-exact; a wrong True makes the explorer silently drop crash
schedules.  The first half pins the decision matrix on hand-built
footprints; the second half holds the table to the commutation contract
the same way the dynamic relation is held to it — every statically
proven pair at every reachable state of a crash configuration is
executed in both orders and the reached fingerprints compared.
"""

from __future__ import annotations

import ast

import pytest

from repro.broadcasts import SendToAllBroadcast
from repro.runtime import CrashSchedule, Simulator
from repro.runtime.independence import (
    Footprint,
    choice_key,
    conservative_independent,
    independent,
    observed_footprint,
)
from repro.statics import summarize_module
from repro.statics.independence import StaticIndependence, attributed_handlers


def fp(kind="recv", pids=(0,), **kwargs):
    return Footprint(kind, frozenset(pids), **kwargs)


@pytest.fixture(scope="module")
def table():
    built = StaticIndependence.from_algorithm(SendToAllBroadcast)
    assert built.usable
    return built


# ---------------------------------------------------------------------------
# The proves() decision matrix
# ---------------------------------------------------------------------------


class TestProvesMatrix:
    def test_disjoint_receptions_under_pending_crash(self, table):
        a = fp(pids={0}, pending=frozenset({2}))
        b = fp(pids={1}, pending=frozenset({2}))
        # the historical blanket declined (crash pending) ...
        assert not conservative_independent(a, b)
        # ... but both the static table and the crash-aware dynamic
        # relation discharge the pending victim by disjointness
        assert table.proves(a, b)
        assert independent(a, b)

    def test_none_footprints_prove_nothing(self, table):
        assert not table.proves(None, fp())
        assert not table.proves(fp(), None)

    def test_adjacent_injection_blocks(self, table):
        a = fp(pids={0}, pending=frozenset({2}), crashed=True)
        b = fp(pids={1}, pending=frozenset({2}))
        assert not table.proves(a, b)
        assert not table.proves(b, a)

    def test_oracle_touch_blocks(self, table):
        a = fp(pids={0}, pending=frozenset({2}), oracle=True)
        b = fp(pids={1}, pending=frozenset({2}))
        assert not table.proves(a, b)

    def test_emission_blocks(self, table):
        a = fp(pids={0}, pending=frozenset({2}), sent=(("p", 0, 1, 0),))
        b = fp(pids={1}, pending=frozenset({2}))
        assert not table.proves(a, b)

    def test_overlapping_pids_block(self, table):
        a = fp(pids={0, 1}, pending=frozenset({2}))
        b = fp(pids={1}, pending=frozenset({2}))
        assert not table.proves(a, b)

    def test_touching_a_pending_victim_blocks(self, table):
        a = fp(pids={2}, pending=frozenset({2}))
        b = fp(pids={1}, pending=frozenset({2}))
        assert not table.proves(a, b)
        assert not table.proves(b, a)

    def test_victim_pending_on_either_side_counts(self, table):
        # the victim set is unioned: a footprint finalized before the
        # crash was scheduled must still not commute past a toucher
        a = fp(pids={2}, pending=frozenset())
        b = fp(pids={1}, pending=frozenset({2}))
        assert not table.proves(a, b)

    def test_unusable_table_proves_nothing(self):
        summaries = summarize_module(
            ast.parse(
                """
SHARED = []

class Racy(BroadcastProcess):
    def on_receive(self, payload, sender):
        SHARED.append(payload)
        yield Deliver(payload)
"""
            )
        )
        table = StaticIndependence(summaries[0])
        assert not table.usable
        a = fp(pids={0}, pending=frozenset({2}))
        b = fp(pids={1}, pending=frozenset({2}))
        assert not table.proves(a, b)

    def test_kind_without_attributed_handler_blocks(self):
        summaries = summarize_module(
            ast.parse(
                """
class ReceiveOnly(BroadcastProcess):
    def on_receive(self, payload, sender):
        yield Deliver(payload)
"""
            )
        )
        table = StaticIndependence(summaries[0])
        assert table.usable
        a = fp(kind="bcast", pids={0}, pending=frozenset({2}))
        b = fp(kind="recv", pids={1}, pending=frozenset({2}))
        assert not table.proves(a, b)
        assert table.proves(b, fp(kind="recv", pids={0},
                                  pending=frozenset({2})))

    def test_for_simulator_builds_a_usable_table(self):
        simulator = Simulator(
            3, lambda pid, n: SendToAllBroadcast(pid, n), atomic_local=True
        )
        table = StaticIndependence.for_simulator(simulator)
        assert table is not None and table.usable


class TestAttributedHandlers:
    def test_bcast_maps_to_on_broadcast(self, table):
        names = {
            next(n for n, s in table.summary.handlers if s is h)
            for h in attributed_handlers(table.summary, "bcast")
        }
        assert names == {"on_broadcast"}

    def test_recv_includes_waiting_operation_bodies(self):
        summaries = summarize_module(
            ast.parse(
                """
class Waiter(BroadcastProcess):
    def __init__(self, pid, n):
        super().__init__(pid, n)
        self.acks = 0

    def on_broadcast(self, message):
        yield from self.send_to_all(message)
        yield Wait(lambda: self.acks >= self.n)
        yield Deliver(message)

    def on_receive(self, payload, sender):
        self.acks += 1
"""
            )
        )
        picked = attributed_handlers(summaries[0], "recv")
        names = {
            next(n for n, s in summaries[0].handlers if s is h)
            for h in picked
        }
        # the reception may resume the suspended on_broadcast body
        assert names == {"on_receive", "on_broadcast"}

    def test_local_maps_to_every_handler(self, table):
        assert len(attributed_handlers(table.summary, "local")) == len(
            table.summary.handlers
        )


# ---------------------------------------------------------------------------
# Both-orders differential under pending crashes
# ---------------------------------------------------------------------------


def reachable_states(simulator, scripts, crash_schedule, max_depth):
    root = simulator.begin(scripts, crash_schedule=crash_schedule)
    root.choices()
    frontier = [(root, 0)]
    seen = {root.fingerprint()}
    states = []
    while frontier:
        handle, depth = frontier.pop()
        states.append(handle)
        if depth >= max_depth:
            continue
        for index in range(len(handle.choices())):
            child = handle.fork()
            child.advance(index)
            child.choices()
            digest = child.fingerprint()
            if digest not in seen:
                seen.add(digest)
                frontier.append((child, depth + 1))
    return states


def take_by_key(handle, key):
    for index, choice in enumerate(handle.choices()):
        if choice_key(choice) == key:
            handle.advance(index)
            handle.choices()
            return
    raise AssertionError(f"choice {key} not enabled — commutation broken")


def assert_pair_commutes(handle, index_a, index_b):
    choices = handle.choices()
    key_a = choice_key(choices[index_a])
    key_b = choice_key(choices[index_b])

    first = handle.fork()
    first.advance(index_a)
    first.choices()
    take_by_key(first, key_b)

    second = handle.fork()
    second.advance(index_b)
    second.choices()
    take_by_key(second, key_a)

    assert first.fingerprint() == second.fingerprint(), (
        f"statically proven pair {key_a} / {key_b} does not commute"
    )
    keys_first = {choice_key(c) for c in first.choices()}
    keys_second = {choice_key(c) for c in second.choices()}
    assert keys_first == keys_second


class TestProvenCommutationDifferential:
    """Every proven pair the blanket relation declined must commute.

    Since the dynamic relation became crash-aware it subsumes the
    static table (the table requires the same checks *plus* a closed
    summary and handler attribution), so the differential measures the
    table against :func:`conservative_independent` — the historical
    blanket that refused any pair with a crash pending — and asserts
    the subsumption as an invariant.
    """

    @pytest.mark.parametrize(
        "scripts, crashes, depth",
        [
            pytest.param(
                {0: ["a"], 1: ["b"]}, CrashSchedule(at_step={2: 4}), 6,
                id="victim-2",
            ),
            pytest.param(
                {0: ["a"], 1: ["b"]}, CrashSchedule(at_step={1: 4}), 6,
                id="victim-1",
            ),
        ],
    )
    def test_proven_pairs_commute(self, scripts, crashes, depth):
        simulator = Simulator(
            3, lambda pid, n: SendToAllBroadcast(pid, n), atomic_local=True
        )
        table = StaticIndependence.for_simulator(simulator)
        assert table is not None and table.usable
        proven_beyond_blanket = 0
        for handle in reachable_states(simulator, scripts, crashes, depth):
            choices = handle.choices()
            footprints = [
                observed_footprint(handle, index)
                for index in range(len(choices))
            ]
            for i in range(len(choices)):
                for j in range(i + 1, len(choices)):
                    a, b = footprints[i], footprints[j]
                    if table.proves(a, b):
                        # crash-aware dynamic subsumes the table
                        assert independent(a, b), (
                            f"table proved {a} / {b} but the crash-"
                            f"aware dynamic relation declined it"
                        )
                        if not conservative_independent(a, b):
                            proven_beyond_blanket += 1
                        assert_pair_commutes(handle, i, j)
        # the refinement must actually refine: pairs the historical
        # blanket declined (crash pending) were proven and commuted
        assert proven_beyond_blanket > 0, (
            "static table proved nothing beyond the blanket relation"
        )

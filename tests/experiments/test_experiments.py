"""The experiment harness must regenerate the paper's qualitative claims.

Beyond smoke-testing, each assertion here is a claim from the paper that
the corresponding experiment's output must exhibit.
"""

import pytest

from repro.experiments import (
    boundaries,
    figure1,
    lemma10_grid,
    register_power,
    symmetry_matrix,
    theorem_pipeline,
)


class TestFigure1:
    def test_default_parameters_match_the_paper(self):
        output = figure1.run()
        assert "k=3" in output and "N=2" in output
        assert "Lemma 10" in output
        assert "✗" not in output  # every caption claim verified

    def test_other_algorithms_work_too(self):
        output = figure1.run(k=2, n_value=1, algorithm="kbo-attempt")
        assert "KboAttemptBroadcast" in output


class TestLemmaGrid:
    def test_small_grid_all_green(self):
        table = lemma10_grid.rows(
            ks=(2, 3), ns=(1, 2), algorithms=("trivial-ksa", "first-k")
        )
        assert len(table) == 8
        for row in table:
            assert "✗" not in row

    def test_render_contains_headers(self):
        output = lemma10_grid.run(ks=(2,), ns=(1,),
                                  algorithms=("trivial-ksa",))
        assert "L10 (N-solo)" in output


class TestTheoremPipeline:
    def test_every_candidate_realizes_the_contradiction(self):
        rows = theorem_pipeline.theorem_rows(ks=(2, 3))
        assert len(rows) == 10  # 5 candidates x 2 values of k
        for row in rows:
            candidate, k, n, decisions, distinct, agreement, hypothesis = row
            assert distinct == k + 1
            assert agreement == "VIOLATED"

    def test_first_k_localized_to_compositionality(self):
        rows = theorem_pipeline.theorem_rows(ks=(2,))
        first_k = next(r for r in rows if r[0] == "first-k")
        assert "compositionality" in first_k[-1]

    def test_k_stepped_localized_to_compositionality(self):
        rows = theorem_pipeline.theorem_rows(ks=(2,))
        stepped = next(r for r in rows if r[0] == "k-stepped")
        assert "compositionality" in stepped[-1]

    def test_corollary_clique_always_exceeds_k(self):
        for row in theorem_pipeline.corollary_rows(ks=(2, 3), ns=(1, 2)):
            _, k, _, _, clique, verdict = row
            assert clique == k + 1
            assert verdict == "VIOLATED"


class TestSymmetryMatrix:
    @pytest.fixture(scope="class")
    def matrix(self):
        return {row.spec.name: row for row in symmetry_matrix.rows()}

    def test_symmetric_abstractions(self, matrix):
        for name in (
            "Send-To-All Broadcast",
            "FIFO Broadcast",
            "Causal Broadcast",
            "Total Order Broadcast",
            "2-BO Broadcast",
        ):
            assert matrix[name].compositional.holds, name
            assert matrix[name].content_neutral.holds, name

    def test_kstepped_not_compositional(self, matrix):
        row = matrix["1-Stepped Broadcast"]
        assert not row.compositional.holds
        assert row.content_neutral.holds

    def test_first_k_not_compositional(self, matrix):
        row = matrix["First-2 Broadcast"]
        assert not row.compositional.holds
        assert row.content_neutral.holds

    def test_sa_tagged_not_content_neutral(self, matrix):
        row = matrix["SA-tagged Broadcast (k=2)"]
        assert not row.content_neutral.holds


class TestRegisterPower:
    def test_every_register_spec_rejects_every_adversarial_beta(self):
        rows = register_power.rejection_rows(ks=(2,), ns=(1,))
        assert len(rows) == 15  # 5 implementations x 3 specs
        for row in rows:
            assert row[-1] == "NO (rejected)"

    def test_total_order_control_admits(self):
        for row in register_power.control_rows(seeds=(0,)):
            assert row[-1] == "yes"

    def test_render(self):
        output = register_power.run()
        assert "shared memory" in output
        assert "Positive control" in output


class TestSymmetryMatrixExtensions:
    def test_new_specs_present_and_symmetric(self):
        matrix = {row.spec.name: row for row in symmetry_matrix.rows()}
        for name in (
            "Mutual Broadcast",
            "Pair Broadcast",
            "SCD Broadcast",
            "2-SCD Broadcast",
        ):
            assert matrix[name].compositional.holds, name
            assert matrix[name].content_neutral.holds, name

    def test_generic_broadcast_not_content_neutral(self):
        matrix = {row.spec.name: row for row in symmetry_matrix.rows()}
        row = matrix["Generic Broadcast"]
        assert row.compositional.holds
        assert not row.content_neutral.holds


class TestBoundaries:
    def test_consensus_rows_always_agree(self):
        for row in boundaries.consensus_rows(sizes=(3, 4), seeds=(0, 1)):
            assert row[5] == "✓"  # consensus
            assert row[6] == "✓"  # TO spec

    def test_trivial_rows(self):
        for row in boundaries.trivial_rows():
            assert row[-1] == "✓"

    def test_render(self):
        assert "k = n" in boundaries.run()

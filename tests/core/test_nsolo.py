"""Unit tests for N-solo executions (Definition 5)."""

from repro.core import NSoloWitness, find_witness, is_n_solo, verify_witness
from repro.core.message import MessageId
from repro.specs.witnesses import solo_first_execution
from tests.conftest import ExecutionBuilder, complete_exchange


def solo_then_exchange(n: int, per_process: int) -> tuple:
    """Each process delivers its own messages first, then all others'."""
    b = ExecutionBuilder(n)
    labels: dict[int, list[str]] = {p: [] for p in range(n)}
    for p in range(n):
        for i in range(per_process):
            label = f"m{p}.{i}"
            b.broadcast(p, label)
            labels[p].append(label)
    for p in range(n):
        own = labels[p]
        others = [
            label for q in range(n) if q != p for label in labels[q]
        ]
        b.deliver(p, *own, *others)
    return b.build(), labels


class TestVerifyWitness:
    def test_valid_witness(self):
        execution, labels = solo_then_exchange(3, 2)
        witness = NSoloWitness(
            2,
            {
                p: tuple(
                    m.uid for m in execution.broadcasts_by(p)
                )
                for p in range(3)
            },
        )
        assert verify_witness(execution, witness) == []

    def test_wrong_cardinality(self):
        execution, _ = solo_then_exchange(2, 2)
        witness = NSoloWitness(
            2, {0: (execution.broadcasts_by(0)[0].uid,), 1: ()}
        )
        violations = verify_witness(execution, witness)
        assert any("expected 2" in v for v in violations)

    def test_unbroadcast_message_rejected(self):
        execution, _ = solo_then_exchange(2, 1)
        witness = NSoloWitness(
            1, {0: (MessageId(0, 99),), 1: (MessageId(1, 99),)}
        )
        violations = verify_witness(execution, witness)
        assert any("never broadcast" in v for v in violations)

    def test_foreign_owned_message_rejected(self):
        execution, _ = solo_then_exchange(2, 1)
        other = execution.broadcasts_by(1)[0].uid
        witness = NSoloWitness(
            1, {0: (other,), 1: (other,)}
        )
        violations = verify_witness(execution, witness)
        assert any("broadcast by" in v for v in violations)

    def test_undelivered_own_message_rejected(self):
        b = ExecutionBuilder(2)
        b.broadcast(0, "a")
        b.broadcast(1, "b")
        b.deliver(1, "b")  # p0 delivers nothing
        execution = b.build()
        witness = NSoloWitness(
            1,
            {
                0: (execution.broadcasts_by(0)[0].uid,),
                1: (execution.broadcasts_by(1)[0].uid,),
            },
        )
        violations = verify_witness(execution, witness)
        assert any("never delivers" in v for v in violations)

    def test_foreign_first_violation(self):
        b = ExecutionBuilder(2)
        b.broadcast(0, "a")
        b.broadcast(1, "b")
        b.deliver(0, "b", "a")  # foreign witness before own
        b.deliver(1, "b")
        execution = b.build()
        witness = NSoloWitness(
            1,
            {
                0: (execution.broadcasts_by(0)[0].uid,),
                1: (execution.broadcasts_by(1)[0].uid,),
            },
        )
        violations = verify_witness(execution, witness)
        assert any("before finishing" in v for v in violations)


class TestFindWitness:
    def test_finds_witness_on_solo_shape(self):
        execution, _ = solo_then_exchange(3, 2)
        witness = find_witness(execution, 2)
        assert witness is not None
        assert verify_witness(execution, witness) == []

    def test_solo_first_execution_is_1_solo(self):
        assert is_n_solo(solo_first_execution(4), 1)

    def test_complete_exchange_is_not_n_solo(self):
        # everyone delivers p0's message first: p1's own message cannot
        # precede all foreign witness messages at p1
        assert not is_n_solo(complete_exchange(3), 1)

    def test_insufficient_messages(self):
        execution, _ = solo_then_exchange(2, 1)
        assert find_witness(execution, 5) is None

    def test_restriction_of_witness_to_subset_of_processes(self):
        execution, _ = solo_then_exchange(3, 1)
        witness = find_witness(execution, 1, processes=[0, 1])
        assert witness is not None
        assert set(witness.chosen) == {0, 1}

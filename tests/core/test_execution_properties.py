"""Property-based tests for the execution algebra (Definitions 2-4).

Random broadcast-level executions are generated, then the paper's two
transformations are checked for their algebraic laws: restriction is
idempotent and monotone, renaming composes and is invertible, and the two
commute in the appropriate sense — the facts Lemma 9's construction uses
implicitly when it builds δ from γ from β.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings, strategies as st

from repro.core import Execution, MessageFactory, Renaming, Step
from repro.core.actions import BroadcastInvoke, BroadcastReturn, DeliverAction


@st.composite
def broadcast_executions(draw, max_processes=4, max_messages=6):
    """A random well-formed broadcast-level execution."""
    n = draw(st.integers(2, max_processes))
    message_count = draw(st.integers(1, max_messages))
    factory = MessageFactory()
    messages = [
        factory.new(draw(st.integers(0, n - 1)), f"c{i}")
        for i in range(message_count)
    ]
    steps: list[Step] = []
    for message in messages:
        steps.append(Step(message.sender, BroadcastInvoke(message)))
        steps.append(Step(message.sender, BroadcastReturn(message)))
    for p in range(n):
        subset = draw(st.permutations(messages))
        count = draw(st.integers(0, len(messages)))
        for message in subset[:count]:
            steps.append(Step(p, DeliverAction(message)))
    return Execution.of(steps, n)


@st.composite
def executions_with_subset(draw):
    execution = draw(broadcast_executions())
    uids = [m.uid for m in execution.broadcast_messages]
    subset = draw(st.sets(st.sampled_from(uids)))
    return execution, frozenset(subset)


@given(executions_with_subset())
@settings(max_examples=60)
def test_restriction_is_idempotent(case):
    execution, subset = case
    once = execution.restrict(subset)
    twice = once.restrict(subset)
    assert once.steps == twice.steps


@given(executions_with_subset())
@settings(max_examples=60)
def test_restriction_result_mentions_only_subset(case):
    execution, subset = case
    restricted = execution.restrict(subset)
    for step in restricted:
        if step.is_broadcast_event():
            assert step.action.message.uid in subset


@given(executions_with_subset())
@settings(max_examples=60)
def test_nested_restrictions_compose_by_intersection(case):
    execution, subset = case
    uids = [m.uid for m in execution.broadcast_messages]
    other = frozenset(uids[::2])
    nested = execution.restrict(other).restrict(subset)
    direct = execution.restrict(other & subset)
    assert nested.steps == direct.steps


@given(broadcast_executions())
@settings(max_examples=60)
def test_renaming_is_invertible(execution):
    originals = {
        m.uid: m.content for m in execution.broadcast_messages
    }
    fresh = Renaming(
        {uid: ("fresh", i) for i, uid in enumerate(originals)}
    )
    inverse = Renaming(originals)
    roundtrip = execution.rename(fresh).rename(inverse)
    assert roundtrip.steps == execution.steps


@given(executions_with_subset())
@settings(max_examples=60)
def test_restriction_commutes_with_renaming(case):
    execution, subset = case
    renaming = Renaming(
        {
            m.uid: ("r", i)
            for i, m in enumerate(execution.broadcast_messages)
        }
    )
    restricted_subset_renaming = Renaming(
        {uid: c for uid, c in renaming.mapping.items() if uid in subset}
    )
    first = execution.rename(renaming).restrict(subset)
    second = execution.restrict(subset).rename(restricted_subset_renaming)
    assert first.steps == second.steps


@given(broadcast_executions())
@settings(max_examples=60)
def test_projection_is_idempotent(execution):
    beta = execution.broadcast_projection()
    assert beta.broadcast_projection().steps == beta.steps


@given(broadcast_executions())
@settings(max_examples=60)
def test_generated_executions_are_well_formed(execution):
    assert execution.check_well_formed() == []


@given(broadcast_executions())
@settings(max_examples=60)
def test_delivery_sequences_partition_deliver_steps(execution):
    total = sum(
        len(seq) for seq in execution.delivery_sequences.values()
    )
    assert total == sum(1 for s in execution if s.is_deliver())

"""Unit tests for message identity, factories and renamings."""

import pytest

from repro.core import Message, MessageFactory, MessageId, fresh_renaming
from repro.core.message import Renaming


class TestMessageId:
    def test_ordering_is_lexicographic(self):
        assert MessageId(0, 1) < MessageId(0, 2) < MessageId(1, 0)

    def test_str_uses_paper_like_notation(self):
        assert str(MessageId(2, 5)) == "m[2.5]"

    def test_hashable_and_equal_by_value(self):
        assert MessageId(1, 2) == MessageId(1, 2)
        assert len({MessageId(1, 2), MessageId(1, 2)}) == 1


class TestMessage:
    def test_sender_comes_from_identity(self):
        message = Message(MessageId(3, 0), "x")
        assert message.sender == 3

    def test_with_content_preserves_identity(self):
        message = Message(MessageId(1, 1), "a")
        renamed = message.with_content("b")
        assert renamed.uid == message.uid
        assert renamed.content == "b"
        assert message.content == "a"  # immutable original

    def test_str_with_and_without_content(self):
        assert str(Message(MessageId(0, 0))) == "m[0.0]"
        assert "m[0.0]:'v'" == str(Message(MessageId(0, 0), "v"))


class TestMessageFactory:
    def test_sequences_are_per_sender(self):
        factory = MessageFactory()
        first = factory.new(0)
        second = factory.new(1)
        third = factory.new(0)
        assert first.uid == MessageId(0, 0)
        assert second.uid == MessageId(1, 0)
        assert third.uid == MessageId(0, 1)

    def test_all_identities_unique(self):
        factory = MessageFactory()
        uids = {factory.new(p % 3).uid for p in range(100)}
        assert len(uids) == 100


class TestRenaming:
    def test_apply_substitutes_only_mapped_messages(self):
        target = Message(MessageId(0, 0), "old")
        other = Message(MessageId(0, 1), "keep")
        renaming = Renaming({target.uid: "new"})
        assert renaming.apply(target).content == "new"
        assert renaming.apply(other) is other

    def test_apply_preserves_identity(self):
        message = Message(MessageId(2, 7), "x")
        renamed = Renaming({message.uid: "y"}).apply(message)
        assert renamed.uid == message.uid

    def test_container_protocol(self):
        renaming = Renaming({MessageId(0, 0): "a"})
        assert MessageId(0, 0) in renaming
        assert MessageId(1, 0) not in renaming
        assert len(renaming) == 1

    def test_fresh_renaming_pairs_in_order(self):
        uids = [MessageId(0, 0), MessageId(1, 0)]
        renaming = fresh_renaming(uids, ["a", "b", "c"])
        assert renaming.mapping[uids[0]] == "a"
        assert renaming.mapping[uids[1]] == "b"

    def test_fresh_renaming_requires_enough_contents(self):
        with pytest.raises(ValueError, match="contents"):
            fresh_renaming([MessageId(0, 0), MessageId(1, 0)], ["only-one"])

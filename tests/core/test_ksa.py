"""Unit tests for the k-set-agreement object properties (Section 4.1)."""

from repro.core import Execution, Step, check_ksa
from repro.core.actions import CrashAction, DecideAction, ProposeAction


def propose(process, ksa, value):
    return Step(process, ProposeAction(ksa, value))


def decide(process, ksa, value):
    return Step(process, DecideAction(ksa, value))


class TestValidity:
    def test_decided_value_must_be_proposed(self):
        execution = Execution.of(
            [propose(0, "o", "a"), decide(0, "o", "ghost")], 1
        )
        report = check_ksa(execution, k=1)
        assert any("never proposed" in v for v in report.validity)

    def test_deciding_anothers_proposal_is_valid(self):
        execution = Execution.of(
            [
                propose(0, "o", "a"),
                decide(0, "o", "a"),
                propose(1, "o", "b"),
                decide(1, "o", "a"),
            ],
            2,
        )
        assert check_ksa(execution, k=1).ok


class TestAgreement:
    def test_too_many_distinct_values(self):
        execution = Execution.of(
            [
                propose(0, "o", "a"),
                decide(0, "o", "a"),
                propose(1, "o", "b"),
                decide(1, "o", "b"),
            ],
            2,
        )
        report = check_ksa(execution, k=1)
        assert any("> k=1" in v for v in report.agreement)
        assert check_ksa(execution, k=2).ok

    def test_objects_are_independent(self):
        execution = Execution.of(
            [
                propose(0, "o1", "a"),
                decide(0, "o1", "a"),
                propose(1, "o2", "b"),
                decide(1, "o2", "b"),
            ],
            2,
        )
        assert check_ksa(execution, k=1).ok


class TestTermination:
    def test_correct_proposer_must_decide(self):
        execution = Execution.of([propose(0, "o", "a")], 1)
        report = check_ksa(execution, k=1)
        assert any("never decided" in v for v in report.termination)

    def test_crashed_proposer_may_not_decide(self):
        execution = Execution.of(
            [propose(0, "o", "a"), Step(0, CrashAction())], 1
        )
        assert check_ksa(execution, k=1).ok

    def test_prefix_mode_skips_liveness(self):
        execution = Execution.of([propose(0, "o", "a")], 1)
        assert check_ksa(execution, k=1, assume_complete=False).ok


class TestOneShot:
    def test_double_propose_flagged(self):
        execution = Execution.of(
            [
                propose(0, "o", "a"),
                decide(0, "o", "a"),
                propose(0, "o", "b"),
                decide(0, "o", "a"),
            ],
            1,
        )
        report = check_ksa(execution, k=1)
        assert any("twice" in v for v in report.one_shot)


class TestReport:
    def test_ok_str(self):
        assert "✓" in str(check_ksa(Execution.empty(1), k=2))

    def test_k_recorded(self):
        assert check_ksa(Execution.empty(1), k=3).k == 3

"""Unit tests for Execution: queries, transformations, well-formedness."""

import pytest

from repro.core import Execution, MessageFactory, Renaming, Step
from repro.core.actions import (
    BroadcastInvoke,
    CrashAction,
    DecideAction,
    ProposeAction,
)
from tests.conftest import ExecutionBuilder, complete_exchange


class TestSequenceBehaviour:
    def test_empty_execution(self):
        execution = Execution.empty(3)
        assert len(execution) == 0
        assert execution.n == 3
        assert execution.broadcast_messages == ()

    def test_append_is_persistent(self):
        base = Execution.empty(2)
        step = Step(0, CrashAction())
        extended = base.append(step)
        assert len(base) == 0
        assert len(extended) == 1
        assert extended[0] is step

    def test_prefix(self):
        execution = complete_exchange(2)
        assert len(execution.prefix(3)) == 3
        assert execution.prefix(1000).steps == execution.steps

    def test_iteration_matches_indexing(self):
        execution = complete_exchange(2)
        assert list(execution) == [execution[i] for i in range(len(execution))]


class TestQueries:
    def test_broadcasts_by_and_order(self):
        b = ExecutionBuilder(2)
        first = b.broadcast(0, "a")
        second = b.broadcast(1, "b")
        third = b.broadcast(0, "c")
        execution = b.build()
        assert execution.broadcasts_by(0) == (first, third)
        assert execution.broadcasts_by(1) == (second,)
        assert execution.broadcast_messages == (first, second, third)

    def test_delivery_sequences_and_first_delivered(self):
        b = ExecutionBuilder(2)
        b.broadcast(0, "a")
        b.broadcast(1, "b")
        b.deliver(0, "b", "a").deliver(1, "a")
        execution = b.build()
        assert [m.content for m in execution.deliveries_of(0)] == ["b", "a"]
        assert execution.first_delivered(0).content == "b"
        assert execution.first_delivered(1).content == "a"

    def test_first_delivered_none_when_no_delivery(self):
        assert Execution.empty(2).first_delivered(0) is None

    def test_crashed_and_correct(self):
        b = ExecutionBuilder(3)
        b.broadcast(0, "a")
        b.crash(2)
        execution = b.build()
        assert execution.crashed == {2}
        assert execution.correct == {0, 1}

    def test_processes_in_first_step_order(self):
        b = ExecutionBuilder(3)
        b.broadcast(2, "a")
        b.broadcast(0, "b")
        assert b.build().processes == (2, 0)

    def test_decisions_and_proposals(self):
        steps = [
            Step(0, ProposeAction("ksa", "v0")),
            Step(0, DecideAction("ksa", "v0")),
            Step(1, ProposeAction("ksa", "v1")),
            Step(1, DecideAction("ksa", "v0")),
        ]
        execution = Execution.of(steps, 2)
        assert execution.proposals["ksa"] == {0: "v0", 1: "v1"}
        assert execution.decisions["ksa"] == {0: "v0", 1: "v0"}


class TestTransformations:
    def test_broadcast_projection_keeps_only_b_events_and_crashes(self):
        b = ExecutionBuilder(2)
        b.broadcast(0, "a")
        b.deliver(0, "a").crash(1)
        execution = b.build()
        from repro.core.actions import PointToPointId, SendAction

        execution = execution.append(
            Step(0, SendAction(PointToPointId(0, 1, 0), "x"))
        )
        beta = execution.broadcast_projection()
        assert all(
            s.is_broadcast_event() or s.is_crash() for s in beta
        )
        assert beta.crashed == {1}
        assert len(beta) == 4  # invoke, return, deliver, crash

    def test_restrict_drops_only_unselected_broadcast_steps(self):
        b = ExecutionBuilder(2)
        kept = b.broadcast(0, "keep")
        b.broadcast(1, "drop")
        b.deliver(0, "keep", "drop").deliver(1, "drop", "keep")
        execution = b.build()
        restricted = execution.restrict([kept.uid])
        assert [m.content for m in restricted.broadcast_messages] == ["keep"]
        assert [m.content for m in restricted.deliveries_of(1)] == ["keep"]

    def test_restrict_to_all_is_identity(self):
        execution = complete_exchange(3)
        uids = [m.uid for m in execution.broadcast_messages]
        assert execution.restrict(uids).steps == execution.steps

    def test_rename_substitutes_everywhere(self):
        b = ExecutionBuilder(2)
        message = b.broadcast(0, "old")
        b.deliver(0, "old").deliver(1, "old")
        execution = b.build()
        renamed = execution.rename(Renaming({message.uid: "new"}))
        assert renamed.broadcast_messages[0].content == "new"
        assert renamed.deliveries_of(1)[0].content == "new"
        # structure unchanged
        assert len(renamed) == len(execution)
        assert renamed.broadcast_messages[0].uid == message.uid

    def test_rename_unknown_uid_rejected(self):
        execution = complete_exchange(2)
        from repro.core import MessageId

        with pytest.raises(ValueError, match="unknown"):
            execution.rename(Renaming({MessageId(9, 9): "x"}))

    def test_map_processes(self):
        b = ExecutionBuilder(2)
        b.broadcast(0, "a")
        execution = b.build().map_processes({0: 5})
        assert execution.steps[0].process == 5

    def test_with_crashes_prepends(self):
        execution = complete_exchange(2).with_crashes([1])
        assert execution[0].is_crash()
        assert execution.crashed == {1}


class TestWellFormedness:
    def test_complete_exchange_is_well_formed(self):
        assert complete_exchange(3).check_well_formed() == []

    def test_out_of_range_process(self):
        execution = Execution.of([Step(7, CrashAction())], 2)
        assert any("outside" in v for v in execution.check_well_formed())

    def test_step_after_crash(self):
        b = ExecutionBuilder(2)
        b.crash(0)
        b.broadcast(0, "late")
        assert any(
            "after crashing" in v for v in b.build().check_well_formed()
        )

    def test_nested_broadcast_invocations(self):
        b = ExecutionBuilder(1)
        b.invoke_only(0, "first")
        b.invoke_only(0, "second")
        assert any("pending" in v for v in b.build().check_well_formed())

    def test_return_without_invoke(self):
        factory = MessageFactory()
        message = factory.new(0)
        from repro.core.actions import BroadcastReturn

        execution = Execution.of([Step(0, BroadcastReturn(message))], 1)
        assert any(
            "did not invoke" in v for v in execution.check_well_formed()
        )

    def test_decide_without_propose(self):
        execution = Execution.of([Step(0, DecideAction("ksa", "v"))], 1)
        assert any("without a pending" in v
                   for v in execution.check_well_formed())

    def test_double_propose_same_time(self):
        steps = [
            Step(0, ProposeAction("a", 1)),
            Step(0, ProposeAction("b", 2)),
        ]
        execution = Execution.of(steps, 1)
        assert any("pending" in v for v in execution.check_well_formed())

    def test_require_well_formed_raises(self):
        from repro.core import WellFormednessError

        execution = Execution.of([Step(9, CrashAction())], 2)
        with pytest.raises(WellFormednessError):
            execution.require_well_formed()

    def test_require_well_formed_returns_self(self):
        execution = complete_exchange(2)
        assert execution.require_well_formed() is execution

"""Unit tests for the four base BC properties and the verdict plumbing."""

from repro.core import check_base_properties
from repro.specs import SendToAllSpec
from tests.conftest import ExecutionBuilder, complete_exchange


class TestBcValidity:
    def test_delivery_without_broadcast(self, builder):
        b = builder(2)
        message = b.broadcast(0, "real")
        b.deliver(1, "real")
        # forge a delivery of a never-broadcast message
        from repro.core import Message, MessageId, Step
        from repro.core.actions import DeliverAction

        forged = Message(MessageId(1, 9), "forged")
        execution = b.build().append(Step(0, DeliverAction(forged)))
        verdict = check_base_properties(execution, assume_complete=False)
        assert any("never broadcast" in v for v in verdict.validity)

    def test_broadcast_attributed_to_wrong_process(self, builder):
        from repro.core import MessageFactory, Step
        from repro.core.actions import BroadcastInvoke

        factory = MessageFactory()
        message = factory.new(1, "x")  # message claims sender 1
        from repro.core import Execution

        execution = Execution.of([Step(0, BroadcastInvoke(message))], 2)
        verdict = check_base_properties(execution, assume_complete=False)
        assert any("attributed" in v for v in verdict.validity)

    def test_double_broadcast_of_same_message(self, builder):
        from repro.core import Execution, MessageFactory, Step
        from repro.core.actions import BroadcastInvoke, BroadcastReturn

        factory = MessageFactory()
        message = factory.new(0, "x")
        steps = [
            Step(0, BroadcastInvoke(message)),
            Step(0, BroadcastReturn(message)),
            Step(0, BroadcastInvoke(message)),
            Step(0, BroadcastReturn(message)),
        ]
        verdict = check_base_properties(
            Execution.of(steps, 1), assume_complete=False
        )
        assert any("twice" in v for v in verdict.validity)


class TestBcNoDuplication:
    def test_double_delivery_flagged(self, builder):
        b = builder(2)
        b.broadcast(0, "m")
        b.deliver(1, "m")
        b.deliver(1, "m")
        verdict = check_base_properties(b.build(), assume_complete=False)
        assert any("twice" in v for v in verdict.no_duplication)


class TestBcLocalTermination:
    def test_correct_sender_must_return(self, builder):
        b = builder(2)
        b.invoke_only(0, "m")
        b.deliver(0, "m").deliver(1, "m")
        verdict = check_base_properties(b.build())
        assert any("never returns" in v for v in verdict.local_termination)

    def test_crashed_sender_excused(self, builder):
        b = builder(2)
        b.invoke_only(0, "m")
        b.deliver(0, "m").deliver(1, "m")
        b.crash(0)
        assert check_base_properties(b.build()).admitted


class TestBcGlobalCsTermination:
    def test_correct_sender_message_must_reach_all_correct(self, builder):
        b = builder(2)
        b.broadcast(0, "m")
        b.deliver(0, "m")  # p1 never delivers
        verdict = check_base_properties(b.build())
        assert any(
            "never delivers" in v for v in verdict.global_cs_termination
        )

    def test_faulty_sender_message_may_be_partial(self, builder):
        b = builder(3)
        b.broadcast(0, "m")
        b.deliver(0, "m").deliver(1, "m")
        b.crash(0)  # p2 misses m, but sender is faulty
        assert check_base_properties(b.build()).admitted

    def test_crashed_receiver_excused(self, builder):
        b = builder(2)
        b.broadcast(0, "m")
        b.deliver(0, "m")
        b.crash(1)
        assert check_base_properties(b.build()).admitted


class TestVerdict:
    def test_complete_exchange_admitted(self):
        assert check_base_properties(complete_exchange(3)).admitted

    def test_safety_ok_ignores_liveness(self, builder):
        b = builder(2)
        b.broadcast(0, "m")  # nobody delivers: liveness broken, safety fine
        verdict = check_base_properties(b.build())
        assert not verdict.admitted
        assert verdict.safety_ok

    def test_str_formats(self):
        verdict = SendToAllSpec().admits(complete_exchange(2))
        assert "admitted" in str(verdict)

    def test_spec_admits_wires_name(self):
        verdict = SendToAllSpec().admits(complete_exchange(2))
        assert verdict.spec_name == "Send-To-All Broadcast"

"""Serialization round-trips for full CAMP executions from live runs."""

import pytest

from repro.broadcasts import (
    CausalBroadcast,
    ScdBroadcast,
    TotalOrderBroadcast,
    UniformReliableBroadcast,
)
from repro.core.serialize import dumps, loads
from repro.runtime import CrashSchedule, Simulator

ALGORITHMS = [
    UniformReliableBroadcast,
    CausalBroadcast,
    TotalOrderBroadcast,
    ScdBroadcast,
]


@pytest.mark.parametrize(
    "algorithm_class", ALGORITHMS, ids=[a.__name__ for a in ALGORITHMS]
)
@pytest.mark.parametrize("seed", [0, 3])
def test_simulator_traces_roundtrip(algorithm_class, seed):
    simulator = Simulator(
        3, lambda pid, n: algorithm_class(pid, n), k=1, seed=seed
    )
    result = simulator.run(
        {p: [f"m{p}.{i}" for i in range(2)] for p in range(3)},
        crash_schedule=CrashSchedule({2: 25}),
    )
    reloaded = loads(dumps(result.execution))
    assert reloaded == result.execution
    assert reloaded.crashed == result.execution.crashed
    assert (
        reloaded.delivery_sequences == result.execution.delivery_sequences
    )


def test_adversarial_full_pipeline_traces_roundtrip():
    from repro.adversary import adversarial_scheduler
    from repro.broadcasts import KboAttemptBroadcast

    result = adversarial_scheduler(
        3,
        2,
        lambda pid, n: KboAttemptBroadcast(pid, n),
        continue_after_flush=True,
    )
    reloaded = loads(dumps(result.execution))
    assert reloaded == result.execution
    assert (
        reloaded.broadcast_projection().delivery_sequences
        == result.beta.delivery_sequences
    )

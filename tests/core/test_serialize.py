"""Round-trip tests for execution serialization."""

import pytest
from hypothesis import given, settings

from repro.adversary import adversarial_scheduler
from repro.broadcasts import FirstKKsaBroadcast, ScdBroadcast
from repro.core import Execution
from repro.core.serialize import dumps, from_jsonable, loads, to_jsonable
from repro.runtime import Simulator
from tests.core.test_execution_properties import broadcast_executions
from tests.conftest import complete_exchange


class TestRoundTrip:
    def test_empty_execution(self):
        execution = Execution.empty(3)
        assert loads(dumps(execution)) == execution

    def test_broadcast_level_execution(self):
        execution = complete_exchange(3, per_process=2)
        assert loads(dumps(execution)) == execution

    @given(broadcast_executions())
    @settings(max_examples=40)
    def test_random_broadcast_executions(self, execution):
        assert loads(dumps(execution)) == execution

    def test_full_camp_execution_with_oracle_steps(self):
        result = adversarial_scheduler(
            2, 2, lambda pid, n: FirstKKsaBroadcast(pid, n)
        )
        assert loads(dumps(result.execution)) == result.execution

    def test_set_delivery_execution(self):
        simulator = Simulator(
            3, lambda pid, n: ScdBroadcast(pid, n), k=1, seed=4
        )
        run = simulator.run({p: [f"m{p}"] for p in range(3)})
        assert loads(dumps(run.execution)) == run.execution

    def test_queries_survive_the_trip(self):
        result = adversarial_scheduler(
            2, 1, lambda pid, n: FirstKKsaBroadcast(pid, n)
        )
        reloaded = loads(dumps(result.execution))
        assert reloaded.broadcast_messages == (
            result.execution.broadcast_messages
        )
        assert reloaded.decisions == result.execution.decisions
        assert (
            reloaded.broadcast_projection()
            == result.execution.broadcast_projection()
        )


class TestFormat:
    def test_versioned_envelope(self):
        data = to_jsonable(complete_exchange(2))
        assert data["version"] == 1
        assert data["n"] == 2
        assert all({"p", "a"} <= set(step) for step in data["steps"])

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            from_jsonable({"version": 99, "n": 1, "steps": []})

    def test_unknown_action_tag_rejected(self):
        with pytest.raises(ValueError, match="action tag"):
            from_jsonable(
                {
                    "version": 1,
                    "n": 1,
                    "steps": [{"p": 0, "a": {"t": "warp"}}],
                }
            )

    def test_tuples_do_not_degrade_to_lists(self):
        from tests.conftest import ExecutionBuilder

        b = ExecutionBuilder(1)
        b.broadcast(0, "m", content=("tup", 1, ("nested",)))
        reloaded = loads(dumps(b.build()))
        content = reloaded.broadcast_messages[0].content
        assert content == ("tup", 1, ("nested",))
        assert isinstance(content, tuple)
        assert isinstance(content[2], tuple)

    def test_unserializable_content_rejected(self):
        from tests.conftest import ExecutionBuilder

        b = ExecutionBuilder(1)
        b.broadcast(0, "m", content=frozenset({1}))
        with pytest.raises(TypeError, match="not serializable"):
            dumps(b.build())

"""Unit tests for the send/receive channel axioms (Section 2)."""

from repro.core import ChannelTracker, Execution, Step, check_channels
from repro.core.actions import (
    CrashAction,
    PointToPointId,
    ReceiveAction,
    SendAction,
)


def send(process, p2p, payload="x"):
    return Step(process, SendAction(p2p, payload))


def receive(process, p2p, payload="x"):
    return Step(process, ReceiveAction(p2p, payload))


P01 = PointToPointId(0, 1, 0)
P01B = PointToPointId(0, 1, 1)


class TestSrValidity:
    def test_matched_send_receive_ok(self):
        execution = Execution.of([send(0, P01), receive(1, P01)], 2)
        assert check_channels(execution).ok

    def test_reception_without_emission(self):
        execution = Execution.of([receive(1, P01)], 2)
        report = check_channels(execution)
        assert any("never sent" in v for v in report.validity)

    def test_duplicate_emission_flagged(self):
        execution = Execution.of(
            [send(0, P01), send(0, P01), receive(1, P01)], 2
        )
        report = check_channels(execution)
        assert any("duplicate emission" in v for v in report.validity)

    def test_duplicate_emission_reported_against_first_index(self):
        # the duplicate at step 2 must point back at the original
        # emission (step 0), not at a later duplicate
        execution = Execution.of(
            [send(0, P01), send(1, P01B, "y"), send(0, P01),
             send(0, P01), receive(1, P01)],
            2,
        )
        report = check_channels(execution)
        duplicates = [v for v in report.validity if "duplicate" in v]
        assert len(duplicates) == 2
        assert all("first emitted at step 0" in v for v in duplicates)
        assert "step 2:" in duplicates[0]
        assert "step 3:" in duplicates[1]

    def test_duplicate_emission_does_not_mask_termination(self):
        # the first emission stays the channel's record: a reception
        # still satisfies SR-Termination despite later duplicates
        execution = Execution.of(
            [send(0, P01), receive(1, P01), send(0, P01)], 2
        )
        report = check_channels(execution)
        assert not report.termination

    def test_sender_identity_must_match(self):
        execution = Execution.of([send(1, P01)], 2)
        report = check_channels(execution)
        assert any("declared sender" in v for v in report.validity)

    def test_receiver_identity_must_match(self):
        execution = Execution.of([send(0, P01), receive(0, P01)], 2)
        report = check_channels(execution, assume_complete=False)
        assert any("addressed to" in v for v in report.validity)


class TestSrNoDuplication:
    def test_double_reception_flagged(self):
        execution = Execution.of(
            [send(0, P01), receive(1, P01), receive(1, P01)], 2
        )
        report = check_channels(execution)
        assert report.no_duplication


class TestSrTermination:
    def test_unreceived_message_to_correct_process(self):
        execution = Execution.of([send(0, P01)], 2)
        report = check_channels(execution)
        assert any("never received" in v for v in report.termination)

    def test_unreceived_message_to_crashed_process_allowed(self):
        execution = Execution.of(
            [send(0, P01), Step(1, CrashAction())], 2
        )
        assert check_channels(execution).ok

    def test_liveness_skipped_on_prefixes(self):
        execution = Execution.of([send(0, P01)], 2)
        assert check_channels(execution, assume_complete=False).ok


class TestReport:
    def test_ok_report_str(self):
        report = check_channels(Execution.empty(2))
        assert report.ok
        assert "✓" in str(report)

    def test_violating_report_str_lists_problems(self):
        report = check_channels(Execution.of([receive(1, P01)], 2))
        assert not report.ok
        assert "never sent" in str(report)

    def test_independent_channels_do_not_interfere(self):
        execution = Execution.of(
            [send(0, P01), send(0, P01B), receive(1, P01B), receive(1, P01)],
            2,
        )
        assert check_channels(execution).ok


class TestChannelTracker:
    """Incremental evaluation matches whole-execution checking."""

    STEPS = [
        send(0, P01),
        send(0, P01),  # duplicate emission
        receive(1, P01),
        receive(1, P01),  # duplicate reception
        receive(1, P01B),  # never sent
        send(1, PointToPointId(1, 0, 0), "y"),
    ]

    def test_step_by_step_matches_batch(self):
        tracker = ChannelTracker(2)
        for step in self.STEPS:
            tracker.observe(step)
        batch = check_channels(Execution.of(self.STEPS, 2))
        report = tracker.report()
        assert report.validity == batch.validity
        assert report.no_duplication == batch.no_duplication
        assert report.termination == batch.termination

    def test_fork_isolates_branches(self):
        tracker = ChannelTracker(2)
        tracker.observe(send(0, P01))
        branch = tracker.fork()
        branch.observe(receive(1, P01))
        # the fork received; the original did not
        assert branch.report().ok
        assert any(
            "never received" in v for v in tracker.report().termination
        )

    def test_incomplete_report_skips_liveness(self):
        tracker = ChannelTracker(2)
        tracker.observe(send(0, P01))
        assert tracker.report(assume_complete=False).ok
        assert not tracker.report().ok

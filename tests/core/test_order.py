"""Unit tests for the delivery-order relations."""

from repro.core.order import (
    causal_precedence,
    delivery_positions,
    disagreement_graph,
    first_delivered_set,
    kbo_violation_witness,
    pair_orders,
    uniformly_ordered,
)
from tests.conftest import ExecutionBuilder, complete_exchange


def two_messages_disagreeing():
    b = ExecutionBuilder(2)
    first = b.broadcast(0, "a")
    second = b.broadcast(1, "b")
    b.deliver(0, "a", "b").deliver(1, "b", "a")
    return b.build(), first, second


class TestPositionsAndPairs:
    def test_delivery_positions(self):
        execution = complete_exchange(2)
        positions = delivery_positions(execution)
        uids = [m.uid for m in execution.broadcast_messages]
        assert positions[0][uids[0]] == 0
        assert positions[1][uids[1]] == 1

    def test_pair_orders_disagreement(self):
        execution, first, second = two_messages_disagreeing()
        positions = delivery_positions(execution)
        assert pair_orders(positions, first.uid, second.uid) == {1, -1}
        assert not uniformly_ordered(positions, first.uid, second.uid)

    def test_pair_orders_vacuous_when_disjoint_deliverers(self):
        b = ExecutionBuilder(2)
        first = b.broadcast(0, "a")
        second = b.broadcast(1, "b")
        b.deliver(0, "a").deliver(1, "b")
        positions = delivery_positions(b.build())
        assert pair_orders(positions, first.uid, second.uid) == set()
        assert uniformly_ordered(positions, first.uid, second.uid)


class TestDisagreementGraph:
    def test_agreeing_execution_has_no_edges(self):
        graph = disagreement_graph(complete_exchange(3))
        assert graph.number_of_edges() == 0
        assert graph.number_of_nodes() == 3

    def test_disagreeing_pair_is_an_edge(self):
        execution, first, second = two_messages_disagreeing()
        graph = disagreement_graph(execution)
        assert graph.has_edge(first.uid, second.uid)


class TestKboWitness:
    def test_no_witness_on_total_order(self):
        assert kbo_violation_witness(complete_exchange(4), k=1) is None

    def test_witness_for_k1_is_a_disagreeing_pair(self):
        execution, first, second = two_messages_disagreeing()
        witness = kbo_violation_witness(execution, k=1)
        assert witness is not None
        assert set(witness) == {first.uid, second.uid}

    def test_k2_needs_a_triangle(self):
        execution, _, _ = two_messages_disagreeing()
        assert kbo_violation_witness(execution, k=2) is None

    def test_three_way_disagreement(self):
        b = ExecutionBuilder(3)
        b.broadcast(0, "a")
        b.broadcast(1, "b")
        b.broadcast(2, "c")
        # rotate delivery orders: every pair is seen in both orders
        b.deliver(0, "a", "b", "c")
        b.deliver(1, "b", "c", "a")
        b.deliver(2, "c", "a", "b")
        witness = kbo_violation_witness(b.build(), k=2)
        assert witness is not None
        assert len(witness) == 3


class TestCausalPrecedence:
    def test_same_sender_order(self):
        b = ExecutionBuilder(2)
        first = b.broadcast(0, "a")
        second = b.broadcast(0, "b")
        graph = causal_precedence(b.build())
        assert graph.has_edge(first.uid, second.uid)

    def test_deliver_then_broadcast_edge(self):
        b = ExecutionBuilder(2)
        first = b.broadcast(0, "a")
        b.deliver(1, "a")
        reply = b.broadcast(1, "reply")
        graph = causal_precedence(b.build())
        assert graph.has_edge(first.uid, reply.uid)

    def test_transitivity(self):
        b = ExecutionBuilder(3)
        first = b.broadcast(0, "a")
        b.deliver(1, "a")
        middle = b.broadcast(1, "b")
        b.deliver(2, "b")
        last = b.broadcast(2, "c")
        graph = causal_precedence(b.build())
        assert graph.has_edge(first.uid, last.uid)

    def test_concurrent_messages_unrelated(self):
        b = ExecutionBuilder(2)
        first = b.broadcast(0, "a")
        second = b.broadcast(1, "b")
        graph = causal_precedence(b.build())
        assert not graph.has_edge(first.uid, second.uid)
        assert not graph.has_edge(second.uid, first.uid)


class TestFirstDelivered:
    def test_counts_distinct_heads(self):
        execution, first, second = two_messages_disagreeing()
        assert first_delivered_set(execution) == {first.uid, second.uid}

    def test_single_head_when_agreeing(self):
        execution = complete_exchange(3)
        assert len(first_delivered_set(execution)) == 1

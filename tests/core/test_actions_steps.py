"""Unit tests for the action vocabulary and step predicates."""

import pytest

from repro.core import Message, MessageFactory, MessageId, Step
from repro.core.actions import (
    BROADCAST_ACTIONS,
    BroadcastInvoke,
    BroadcastReturn,
    CrashAction,
    DecideAction,
    DeliverAction,
    DeliverSetAction,
    LocalAction,
    PointToPointId,
    ProposeAction,
    ReceiveAction,
    SendAction,
)


@pytest.fixture
def message():
    return MessageFactory().new(1, "hello")


class TestActionStr:
    def test_point_to_point_id(self):
        assert str(PointToPointId(0, 2, 5)) == "s[0->2.5]"

    def test_send_and_receive(self, message):
        p2p = PointToPointId(0, 1, 0)
        assert "send" in str(SendAction(p2p, "x"))
        assert "receive" in str(ReceiveAction(p2p, "x"))

    def test_broadcast_events(self, message):
        assert "B.broadcast" in str(BroadcastInvoke(message))
        assert "return" in str(BroadcastReturn(message))
        deliver = DeliverAction(message)
        assert "B.deliver" in str(deliver)
        assert "from p1" in str(deliver)

    def test_deliver_set_sorts_members(self):
        factory = MessageFactory()
        second = factory.new(1, "b")
        first = factory.new(0, "a")
        action = DeliverSetAction((second, first))
        assert action.messages == (first, second)
        assert "deliver_set" in str(action)

    def test_ksa_operations(self):
        assert "propose" in str(ProposeAction("o", 1))
        assert "decide" in str(DecideAction("o", 1))

    def test_crash_and_local(self):
        assert str(CrashAction()) == "crash"
        assert "note" in str(LocalAction("note"))


class TestDeliverActionOrigin:
    def test_origin_is_the_message_sender(self, message):
        assert DeliverAction(message).origin == 1


class TestBroadcastActionsTuple:
    def test_contains_all_broadcast_level_types(self):
        assert set(BROADCAST_ACTIONS) == {
            BroadcastInvoke,
            BroadcastReturn,
            DeliverAction,
            DeliverSetAction,
        }


class TestStepPredicates:
    def test_each_predicate(self, message):
        p2p = PointToPointId(1, 0, 0)
        cases = [
            (BroadcastInvoke(message), "is_invoke"),
            (BroadcastReturn(message), "is_return"),
            (DeliverAction(message), "is_deliver"),
            (DeliverSetAction((message,)), "is_deliver_set"),
            (SendAction(PointToPointId(0, 1, 0), "x"), "is_send"),
            (ReceiveAction(p2p, "x"), "is_receive"),
            (ProposeAction("o", 1), "is_propose"),
            (CrashAction(), "is_crash"),
        ]
        predicates = [name for _, name in cases]
        for action, positive in cases:
            step = Step(0, action)
            for name in predicates:
                assert getattr(step, name)() == (name == positive), (
                    f"{action} vs {name}"
                )

    def test_broadcast_event_membership(self, message):
        assert Step(0, BroadcastInvoke(message)).is_broadcast_event()
        assert Step(0, DeliverSetAction((message,))).is_broadcast_event()
        assert not Step(0, CrashAction()).is_broadcast_event()

    def test_step_str(self, message):
        assert str(Step(2, BroadcastInvoke(message))).startswith("<p2:")

"""Unit tests for the compositionality / content-neutrality checkers."""

import random

from repro.core import (
    check_compositional,
    check_content_neutral,
)
from repro.core.symmetry import sample_renamings, subset_restrictions
from repro.specs import (
    FirstKBroadcastSpec,
    KSteppedBroadcastSpec,
    SaTaggedBroadcastSpec,
    SendToAllSpec,
    TotalOrderBroadcastSpec,
)
from repro.specs.witnesses import (
    first_k_agreed_execution,
    kstepped_paper_example,
    sa_typed_renaming,
    solo_first_execution,
)
from tests.conftest import complete_exchange


class TestSubsetEnumeration:
    def test_exhaustive_for_small_executions(self):
        execution = complete_exchange(3)  # 3 messages -> 2^3 - 2 = 6 proper
        cases = list(subset_restrictions(execution))
        assert len(cases) == 6

    def test_sampling_beyond_limit(self):
        execution = complete_exchange(4, per_process=4)  # 16 messages
        cases = list(
            subset_restrictions(
                execution, max_cases=10, rng=random.Random(1)
            )
        )
        assert len(cases) == 10

    def test_restrictions_are_actual_restrictions(self):
        execution = complete_exchange(2)
        for subset, restricted in subset_restrictions(execution):
            assert {m.uid for m in restricted.broadcast_messages} == subset


class TestRenamingSampler:
    def test_first_renaming_is_all_fresh(self):
        execution = complete_exchange(2)
        renaming = next(iter(sample_renamings(execution)))
        assert len(renaming) == len(execution.broadcast_messages)

    def test_sampler_produces_requested_count(self):
        execution = complete_exchange(3)
        assert len(list(sample_renamings(execution, max_cases=7))) == 7

    def test_empty_execution_yields_nothing(self):
        from repro.core import Execution

        assert list(sample_renamings(Execution.empty(2))) == []

    def test_identically_seeded_calls_yield_identical_renamings(self):
        # regression: fresh tokens used to be numbered by a process-global
        # counter, so a second call minted fresh#N..., never fresh#0...,
        # and seeded sampling was irreproducible within one process
        execution = complete_exchange(3)
        first = [
            dict(r.items())
            for r in sample_renamings(
                execution, max_cases=9, rng=random.Random(7)
            )
        ]
        second = [
            dict(r.items())
            for r in sample_renamings(
                execution, max_cases=9, rng=random.Random(7)
            )
        ]
        assert first == second

    def test_fresh_tokens_are_distinct_within_a_renaming(self):
        execution = complete_exchange(3)
        all_fresh = next(iter(sample_renamings(execution)))
        contents = list(dict(all_fresh.items()).values())
        assert len(set(contents)) == len(contents)


class TestCompositionalityChecker:
    def test_total_order_has_no_counterexample(self):
        result = check_compositional(
            TotalOrderBroadcastSpec(), complete_exchange(3)
        )
        assert result.holds
        assert result.cases_checked > 0

    def test_kstepped_violation_found_by_enumeration(self):
        execution, _ = kstepped_paper_example()
        result = check_compositional(KSteppedBroadcastSpec(1), execution)
        assert not result.holds
        assert result.counterexample_verdict is not None

    def test_kstepped_paper_witness_is_accepted_as_counterexample(self):
        execution, subset = kstepped_paper_example()
        result = check_compositional(
            KSteppedBroadcastSpec(1), execution, subsets=[subset]
        )
        assert not result.holds
        assert frozenset(result.counterexample) == subset

    def test_subsets_accept_one_shot_iterables(self):
        # regression: the subset used to be consumed twice (once to
        # report, once to restrict), so a generator restricted onto the
        # empty set and the violation went unreported
        execution, subset = kstepped_paper_example()
        result = check_compositional(
            KSteppedBroadcastSpec(1), execution, subsets=[iter(subset)]
        )
        assert not result.holds
        assert frozenset(result.counterexample) == subset

    def test_subsets_accept_any_uid_iterable(self):
        execution, subset = kstepped_paper_example()
        for shape in (list(subset), tuple(subset), sorted(subset)):
            result = check_compositional(
                KSteppedBroadcastSpec(1), execution, subsets=[shape]
            )
            assert not result.holds
            assert frozenset(result.counterexample) == subset

    def test_first_k_violation_found(self):
        execution, subset = first_k_agreed_execution(4)
        result = check_compositional(
            FirstKBroadcastSpec(2), execution, subsets=[subset]
        )
        assert not result.holds

    def test_vacuous_when_base_not_admitted(self):
        execution, _ = kstepped_paper_example()
        restricted = execution.restrict(
            [execution.broadcast_messages[0].uid]
        )
        # base exchange violates liveness for the dropped messages? build
        # a rejected base instead: FirstK(1) on a 2-heads execution
        from tests.conftest import ExecutionBuilder

        b = ExecutionBuilder(2)
        b.broadcast(0, "a")
        b.broadcast(1, "b")
        b.deliver(0, "a", "b").deliver(1, "b", "a")
        result = check_compositional(FirstKBroadcastSpec(1), b.build())
        assert result.skipped_reason is not None
        assert result.holds  # vacuously

    def test_str_renders(self):
        result = check_compositional(SendToAllSpec(), complete_exchange(2))
        assert "no counterexample" in str(result)


class TestContentNeutralityChecker:
    def test_identity_free_specs_are_neutral(self):
        for spec in (SendToAllSpec(), TotalOrderBroadcastSpec()):
            result = check_content_neutral(spec, complete_exchange(3))
            assert result.holds

    def test_sa_tagged_broken_by_targeted_renaming(self):
        execution = solo_first_execution(4)
        result = check_content_neutral(
            SaTaggedBroadcastSpec(2),
            execution,
            renamings=[sa_typed_renaming(execution)],
        )
        assert not result.holds
        assert "SA" in str(result.counterexample_verdict)

    def test_sa_tagged_survives_fresh_renamings(self):
        # fresh opaque tokens make every constraint vacuous
        execution = solo_first_execution(4)
        result = check_content_neutral(
            SaTaggedBroadcastSpec(2), execution, max_cases=8
        )
        assert result.holds

"""CLI contract: exit codes, JSON output shape, select/ignore flags.

The CLI is exercised in-process through :func:`repro.lint.cli.main`
(same code path as ``python -m repro.lint``; the ``__main__`` module
just forwards to it) and once via a real subprocess to pin the module
entry point itself.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"
BAD_HYGIENE = FIXTURES / "core" / "bad_hygiene.py"
GOOD_HYGIENE = FIXTURES / "core" / "good_hygiene.py"


def run_cli(args, capsys):
    code = main([str(a) for a in args])
    return code, capsys.readouterr().out


def test_clean_file_exits_zero(capsys):
    code, out = run_cli([GOOD_HYGIENE], capsys)
    assert code == 0
    assert "0 findings" in out


def test_findings_exit_one_with_locations(capsys):
    code, out = run_cli([BAD_HYGIENE], capsys)
    assert code == 1
    assert "REP005" in out
    assert f"{BAD_HYGIENE}:" in out


def test_json_format_is_structured(capsys):
    code, out = run_cli([BAD_HYGIENE, "--format", "json"], capsys)
    assert code == 1
    document = json.loads(out)
    assert document["version"] == 1
    assert document["count"] == 3
    assert document["counts_by_rule"] == {"REP005": 3}
    for finding in document["findings"]:
        assert set(finding) == {"path", "line", "col", "rule", "message"}
        assert finding["rule"] == "REP005"


def test_json_format_clean_run(capsys):
    code, out = run_cli([GOOD_HYGIENE, "--format", "json"], capsys)
    assert code == 0
    document = json.loads(out)
    assert document["count"] == 0
    assert document["findings"] == []


def test_select_flag(capsys):
    code, _ = run_cli([BAD_HYGIENE, "--select", "REP001"], capsys)
    assert code == 0  # REP005 findings filtered out


def test_ignore_flag(capsys):
    code, _ = run_cli([BAD_HYGIENE, "--ignore", "REP005"], capsys)
    assert code == 0


def test_comma_separated_ids(capsys):
    code, _ = run_cli(
        [BAD_HYGIENE, "--select", "REP004,REP005"], capsys
    )
    assert code == 1


def test_missing_path_exits_two(capsys):
    code = main(["no/such/path.py"])
    assert code == 2


def test_unknown_rule_id_exits_two(capsys):
    # A typo'd --select must not silently disable the whole gate.
    code = main([str(BAD_HYGIENE), "--select", "REP999"])
    assert code == 2
    assert "unknown rule id" in capsys.readouterr().err


def test_list_rules(capsys):
    code, out = run_cli(["--list-rules"], capsys)
    assert code == 0
    for rule_id in ("REP001", "REP002", "REP003", "REP004", "REP005"):
        assert rule_id in out


def test_module_entry_point_subprocess():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, "-m", "repro.lint", str(BAD_HYGIENE)],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 1
    assert "REP005" in result.stdout

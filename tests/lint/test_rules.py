"""Per-rule unit tests: each rule has true positives and true negatives.

Every rule is exercised against a *bad* fixture (expected findings, with
exact rule ids) and a *good* fixture (zero findings), both living under
``tests/lint/fixtures/<scope>/`` so path-based scoping applies exactly
as it does to the real tree.
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path

import pytest

from repro.lint import LintEngine

FIXTURES = Path(__file__).parent / "fixtures"


def rule_ids(path: Path) -> Counter:
    """Rule-id counts the default engine reports for one fixture file."""
    return Counter(f.rule for f in LintEngine().lint_file(path))


# ---------------------------------------------------------------------------
# REP001 — determinism
# ---------------------------------------------------------------------------


def test_rep001_true_positives():
    counts = rule_ids(FIXTURES / "runtime" / "bad_determinism.py")
    assert counts == {"REP001": 6}


def test_rep001_true_negatives():
    assert rule_ids(FIXTURES / "runtime" / "good_determinism.py") == {}


def test_rep001_finds_each_pattern():
    findings = LintEngine().lint_file(
        FIXTURES / "runtime" / "bad_determinism.py"
    )
    messages = " ".join(f.message for f in findings)
    assert "module-level random.randrange" in messages
    assert "without an explicit seed" in messages
    assert "wall clock" in messages
    assert "id()" in messages
    assert "iteration over a set" in messages


# ---------------------------------------------------------------------------
# REP002 — effect discipline
# ---------------------------------------------------------------------------


def test_rep002_true_positives():
    counts = rule_ids(FIXTURES / "broadcasts" / "bad_effects.py")
    assert counts == {"REP002": 4}


def test_rep002_true_negatives():
    assert rule_ids(FIXTURES / "broadcasts" / "good_effects.py") == {}


def test_rep002_finds_each_pattern():
    findings = LintEngine().lint_file(
        FIXTURES / "broadcasts" / "bad_effects.py"
    )
    messages = " ".join(f.message for f in findings)
    assert "must not import" in messages
    assert "constructs runtime machinery" in messages
    assert "driver-side runtime call" in messages
    assert "parameter the process does not own" in messages


# ---------------------------------------------------------------------------
# REP003 — content neutrality
# ---------------------------------------------------------------------------


def test_rep003_true_positive():
    counts = rule_ids(FIXTURES / "specs" / "bad_neutrality.py")
    assert counts == {"REP003": 1}


def test_rep003_true_negative():
    assert rule_ids(FIXTURES / "specs" / "good_neutrality.py") == {}


def test_rep003_suppression_comments_silence_it():
    assert rule_ids(FIXTURES / "specs" / "suppressed_neutrality.py") == {}


# ---------------------------------------------------------------------------
# REP004 — mutable defaults / class-level process state
# ---------------------------------------------------------------------------


def test_rep004_true_positives():
    counts = rule_ids(FIXTURES / "state" / "bad_state.py")
    assert counts == {"REP004": 6}


def test_rep004_true_negatives():
    assert rule_ids(FIXTURES / "state" / "good_state.py") == {}


def test_rep004_ignores_non_process_class_constants():
    engine = LintEngine()
    findings = engine.lint_source(
        "class Policy:\n    _priority = {'recv': 0}\n",
        "anywhere/policies.py",
    )
    assert findings == []


def test_rep004_flags_process_class_even_outside_scoped_dirs():
    engine = LintEngine()
    findings = engine.lint_source(
        "class P(BroadcastProcess):\n    shared = []\n",
        "anywhere/algo.py",
    )
    assert [f.rule for f in findings] == ["REP004"]


def test_rep004_names_each_stateful_iterator_pattern():
    findings = LintEngine().lint_file(FIXTURES / "state" / "bad_state.py")
    messages = " ".join(f.message for f in findings)
    assert "module-level stateful iterator" in messages
    assert "class-level stateful iterator on TokenMint" in messages


def test_rep004_allows_instance_level_iterators():
    # the registers' `self._ids = itertools.count()` idiom must stay legal
    engine = LintEngine()
    findings = engine.lint_source(
        "import itertools\n"
        "class R:\n"
        "    def __init__(self):\n"
        "        self._ids = itertools.count()\n",
        "anywhere/registers.py",
    )
    assert findings == []


# ---------------------------------------------------------------------------
# REP005 — swallowed failures
# ---------------------------------------------------------------------------


def test_rep005_true_positives():
    counts = rule_ids(FIXTURES / "core" / "bad_hygiene.py")
    assert counts == {"REP005": 3}


def test_rep005_true_negatives():
    assert rule_ids(FIXTURES / "core" / "good_hygiene.py") == {}


def test_rep005_finds_each_pattern():
    findings = LintEngine().lint_file(FIXTURES / "core" / "bad_hygiene.py")
    messages = " ".join(f.message for f in findings)
    assert "bare except" in messages
    assert "without re-raise" in messages
    assert "empty body" in messages


# ---------------------------------------------------------------------------
# REP006 — uid iteration order in spec verdicts
# ---------------------------------------------------------------------------


def test_rep006_true_positives():
    counts = rule_ids(FIXTURES / "specs" / "bad_uid_order.py")
    assert counts == {"REP006": 6}


def test_rep006_true_negatives():
    assert rule_ids(FIXTURES / "specs" / "good_uid_order.py") == {}


def test_rep006_suppression_comments_silence_it():
    assert rule_ids(FIXTURES / "specs" / "suppressed_uid_order.py") == {}


def test_rep006_finds_each_accumulator_idiom():
    findings = LintEngine().lint_file(FIXTURES / "specs" / "bad_uid_order.py")
    assert all(f.rule == "REP006" for f in findings)
    lines = sorted(f.line for f in findings)
    # set comprehension, .add accumulator, dict-of-sets unpack, dict
    # subscript, inline frozenset, enumerate-wrapped
    assert lines == [7, 16, 25, 34, 40, 47]


def test_rep006_scoped_to_specs():
    engine = LintEngine(select=["REP006"])
    source = (
        "def f(messages):\n"
        "    uids = {m.uid for m in messages}\n"
        "    return [u for u in uids]\n"
    )
    assert engine.lint_source(source, "src/repro/specs/x.py")
    assert not engine.lint_source(source, "src/repro/runtime/x.py")
    assert not engine.lint_source(source, "tests/specs/test_x.py")


# ---------------------------------------------------------------------------
# Scoping
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "virtual_path, expected",
    [
        ("src/repro/runtime/x.py", True),
        ("src/repro/adversary/x.py", True),
        ("src/repro/specs/x.py", False),
        ("tests/runtime/test_x.py", False),  # test code is exempt
        ("tests/lint/fixtures/runtime/x.py", True),  # fixtures are not
    ],
)
def test_rep001_path_scoping(virtual_path, expected):
    engine = LintEngine(select=["REP001"])
    findings = engine.lint_source(
        "import random\nx = random.random()\n", virtual_path
    )
    assert bool(findings) is expected

"""Suppression directive parsing and application."""

from __future__ import annotations

from repro.lint import LintEngine, SuppressionIndex


def test_same_line_disable():
    index = SuppressionIndex.from_source(
        "x = 1  # repro-lint: disable=REP001\n"
    )
    assert index.is_suppressed("REP001", 1)
    assert not index.is_suppressed("REP002", 1)
    assert not index.is_suppressed("REP001", 2)


def test_disable_next_line():
    index = SuppressionIndex.from_source(
        "# repro-lint: disable-next-line=REP003\nx = 1\n"
    )
    assert index.is_suppressed("REP003", 2)
    assert not index.is_suppressed("REP003", 3)


def test_disable_file():
    index = SuppressionIndex.from_source(
        "x = 1\n# repro-lint: disable-file=REP002\ny = 2\n"
    )
    assert index.is_suppressed("REP002", 1)
    assert index.is_suppressed("REP002", 999)
    assert not index.is_suppressed("REP001", 1)


def test_multiple_ids_and_all():
    index = SuppressionIndex.from_source(
        "a = 1  # repro-lint: disable=REP001, REP004\n"
        "b = 2  # repro-lint: disable=all\n"
    )
    assert index.is_suppressed("REP001", 1)
    assert index.is_suppressed("REP004", 1)
    assert not index.is_suppressed("REP003", 1)
    assert index.is_suppressed("REP003", 2)


def test_trailing_rationale_is_tolerated():
    index = SuppressionIndex.from_source(
        "x = 1  # repro-lint: disable=REP003 -- content-sensitive by design\n"
    )
    assert index.is_suppressed("REP003", 1)


def test_directive_inside_string_literal_does_not_suppress():
    index = SuppressionIndex.from_source(
        'x = "# repro-lint: disable=REP001"\n'
    )
    assert not index.is_suppressed("REP001", 1)


def test_suppression_applies_through_the_engine():
    source = (
        "import random\n"
        "a = random.random()  # repro-lint: disable=REP001\n"
        "b = random.random()\n"
    )
    engine = LintEngine()
    findings = engine.lint_source(source, "runtime/sched.py")
    assert [f.line for f in findings] == [3]


def test_file_wide_suppression_through_the_engine():
    source = (
        "# repro-lint: disable-file=REP001\n"
        "import random\n"
        "a = random.random()\n"
        "b = random.random()\n"
    )
    findings = LintEngine().lint_source(source, "runtime/sched.py")
    assert findings == []

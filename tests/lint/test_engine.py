"""Engine behavior: discovery, filtering, parse errors, determinism."""

from __future__ import annotations

from pathlib import Path

from repro.lint import PARSE_ERROR_ID, Finding, LintEngine, run_lint
from repro.lint.engine import iter_python_files

FIXTURES = Path(__file__).parent / "fixtures"


def test_directory_walk_skips_fixtures(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "ok.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "fixtures").mkdir()
    (tmp_path / "pkg" / "fixtures" / "bad.py").write_text("x = 2\n")
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "__pycache__" / "junk.py").write_text("x = 3\n")
    found = [p.name for p in iter_python_files([tmp_path])]
    assert found == ["ok.py"]


def test_explicit_file_is_linted_even_inside_fixtures():
    findings = LintEngine().lint_file(
        FIXTURES / "core" / "bad_hygiene.py"
    )
    assert findings  # fixtures dir is excluded from walks, not from this


def test_walk_over_fixture_parent_reports_nothing():
    assert run_lint([Path(__file__).parent]) == []


def test_select_restricts_to_listed_rules():
    engine = LintEngine(select=["REP005"])
    assert set(
        f.rule for f in engine.lint_file(FIXTURES / "core" / "bad_hygiene.py")
    ) == {"REP005"}
    assert (
        engine.lint_file(FIXTURES / "runtime" / "bad_determinism.py") == []
    )


def test_ignore_drops_listed_rules():
    engine = LintEngine(ignore=["REP001"])
    assert (
        engine.lint_file(FIXTURES / "runtime" / "bad_determinism.py") == []
    )


def test_parse_error_is_reported_as_rep000(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n")
    findings = LintEngine().lint_file(bad)
    assert len(findings) == 1
    assert findings[0].rule == PARSE_ERROR_ID
    assert "does not parse" in findings[0].message


def test_parse_error_survives_select_filter(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n")
    findings = LintEngine(select=["REP003"]).lint_file(bad)
    assert [f.rule for f in findings] == [PARSE_ERROR_ID]


def test_findings_are_sorted_and_stable():
    engine = LintEngine()
    first = engine.lint_file(FIXTURES / "runtime" / "bad_determinism.py")
    second = engine.lint_file(FIXTURES / "runtime" / "bad_determinism.py")
    assert first == second
    assert first == sorted(first)


def test_finding_render_and_jsonable():
    finding = Finding(
        path="a.py", line=3, col=7, rule="REP001", message="boom"
    )
    assert finding.render() == "a.py:3:7: REP001 boom"
    assert finding.to_jsonable() == {
        "path": "a.py",
        "line": 3,
        "col": 7,
        "rule": "REP001",
        "message": "boom",
    }

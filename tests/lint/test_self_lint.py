"""The repo lints itself clean — the tier that guards future PRs.

If this test fails, a change introduced nondeterminism, an effect-API
bypass, content inspection in a spec, aliased mutable state, or a
swallowed checker failure.  Fix the code or add a line suppression with
a written rationale; see docs/static_analysis.md.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import ALL_RULES, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_lints_clean():
    findings = run_lint([REPO_ROOT / "src" / "repro"])
    assert findings == [], "\n" + "\n".join(f.render() for f in findings)


def test_tests_lint_clean():
    findings = run_lint([REPO_ROOT / "tests"])
    assert findings == [], "\n" + "\n".join(f.render() for f in findings)


def test_every_rule_is_documented():
    catalog = (REPO_ROOT / "docs" / "static_analysis.md").read_text()
    for rule in ALL_RULES:
        assert rule.id in catalog, f"{rule.id} missing from the rule catalog"


def test_rule_ids_are_unique_and_well_formed():
    ids = [rule.id for rule in ALL_RULES]
    assert len(set(ids)) == len(ids)
    for rule_id in ids:
        assert rule_id.startswith("REP") and len(rule_id) == 6

"""REP007/REP008 true positives: handlers that defeat effect inference."""

from repro.runtime.process import BroadcastProcess, Send

DELIVERED_ANYWHERE = []


class GlobalCountBroadcast(BroadcastProcess):
    """REP007: a handler mutating module-global state."""

    def __init__(self, pid, n):
        super().__init__(pid, n)
        self.count = 0

    def on_broadcast(self, message):
        yield from self.send_to_all(message)

    def on_receive(self, p2p, message):
        DELIVERED_ANYWHERE.append(message.uid)
        self.count += 1


class SharedLedgerBroadcast(BroadcastProcess):
    """REP007: class-level mutable state shared across instances."""

    # repro-lint: disable-next-line=REP004 -- REP007's shared-attr case
    ledger = {}

    def on_broadcast(self, message):
        yield from self.send_to_all(message)

    def on_receive(self, p2p, message):
        self.ledger[message.uid] = p2p.sender


class DynamicFieldBroadcast(BroadcastProcess):
    """REP008: dynamic attribute access hides the write set."""

    def on_broadcast(self, message):
        yield from self.send_to_all(message)

    def on_receive(self, p2p, message):
        setattr(self, f"slot_{p2p.sender}", message)


class OpaqueHelperBroadcast(BroadcastProcess):
    """REP008: an unresolvable call could mutate anything it reaches."""

    def on_broadcast(self, message):
        yield from self.send_to_all(message)

    def on_receive(self, p2p, message):
        from .elsewhere import register_delivery

        register_delivery(self, message)

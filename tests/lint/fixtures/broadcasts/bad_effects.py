"""Fixture: every REP002 effect-discipline breach (true positives)."""
# repro-lint: disable-file=REP008 -- the unrecognizable yields below are
# REP002 true positives; the closure rule has its own fixture

from repro.runtime.network import Network  # forbidden runtime import


class LeakyBroadcast(BroadcastProcess):  # noqa: F821 - parse-only fixture
    """An algorithm that reaches around the effect vocabulary."""

    def on_broadcast(self, message):
        network = Network()  # constructs runtime machinery
        runtime = self.peer_runtime
        runtime.inject_receive(None, message)  # driver-side call
        yield None

    def on_receive(self, payload, sender):
        payload.content = "rewritten"  # mutates a non-owned object
        yield None

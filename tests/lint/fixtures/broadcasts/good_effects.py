"""Fixture: a disciplined algorithm (REP002 true negatives)."""

from repro.runtime.effects import Deliver, Send
from repro.runtime.process import BroadcastProcess


class DisciplinedBroadcast(BroadcastProcess):
    """Interacts with the world only by yielding effects."""

    def __init__(self, pid: int, n: int) -> None:
        super().__init__(pid, n)
        self._seen = set()

    def on_broadcast(self, message):
        for dest in self.everyone():
            yield Send(dest, message)

    def on_receive(self, payload, sender):
        if payload.uid not in self._seen:
            self._seen.add(payload.uid)
            state = self._seen  # locals derived from self are fine
            state.add(payload.uid)
            yield Deliver(payload)

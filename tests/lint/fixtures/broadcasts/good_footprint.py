"""REP007/REP008 true negatives: handlers with closed effect summaries."""

from repro.runtime.process import BroadcastProcess, Deliver


class InstanceStateBroadcast(BroadcastProcess):
    """All state instance-level; helpers resolve; effects recognized."""

    def __init__(self, pid, n):
        super().__init__(pid, n)
        self.pending = {}
        self.delivered_uids = set()

    def on_broadcast(self, message):
        yield from self.send_to_all(message)

    def on_receive(self, p2p, message):
        if self._note(message):
            yield Deliver(message)

    def _note(self, message):
        # a self-method helper: inlined by the analyzer, stays closed
        if message.uid in self.delivered_uids:
            return False
        self.delivered_uids.add(message.uid)
        self.pending[message.uid] = message
        return True


class DerivedBroadcast(InstanceStateBroadcast):
    """``super()`` delegation resolves through the in-module base."""

    def __init__(self, pid, n):
        super().__init__(pid, n)
        self.echoes = 0

    def on_receive(self, p2p, message):
        self.echoes += 1
        yield from super().on_receive(p2p, message)

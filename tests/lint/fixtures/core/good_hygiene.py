"""Fixture: disciplined exception handling (REP005 true negatives)."""


def check_termination(execution):
    try:
        return execution.verify()
    except KeyError as error:  # specific, converted with context
        raise ValueError(f"malformed execution: {error}") from error


def check_agreement(execution):
    try:
        assert execution.decided_values() <= execution.proposals()
    except AssertionError:
        raise  # re-raised: the verdict propagates


def check_validity(execution):
    try:
        execution.validate()
    except Exception as error:  # broad but not silent
        raise RuntimeError("validity check crashed") from error

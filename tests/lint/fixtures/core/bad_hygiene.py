"""Fixture: swallowed checker failures (REP005 true positives)."""


def check_termination(execution):
    try:
        return execution.verify()
    except:  # bare except
        return True


def check_agreement(execution):
    try:
        assert execution.decided_values() <= execution.proposals()
    except AssertionError:  # verdict caught and discarded
        return None
    return True


def check_validity(execution):
    try:
        execution.validate()
    except Exception:  # silent swallow-all
        pass
    return True

"""Fixture: content access under an explicit suppression (lints clean)."""


class DocumentedContentSpec(BroadcastSpec):  # noqa: F821 - parse-only
    """Content-sensitive on purpose, and says so."""

    def ordering_violations(self, execution):
        tags = []
        for message in execution.broadcast_messages:
            # repro-lint: disable-next-line=REP003
            tags.append(message.content)
        first = tags[0].content if tags else None  # repro-lint: disable=REP003
        return [] if first is None else [str(first)]

"""Fixture: a content-neutral delivery predicate (REP003 negatives)."""


class IdentityOnlySpec(BroadcastSpec):  # noqa: F821 - parse-only fixture
    """Keys on identities and positions only — invariant under renaming."""

    def ordering_violations(self, execution):
        violations = []
        seen = []
        for message in execution.broadcast_messages:
            if (message.sender, message.uid) in seen:
                violations.append(f"duplicate {message.uid}")
            seen.append((message.sender, message.uid))
        return violations

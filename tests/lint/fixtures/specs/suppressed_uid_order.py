"""REP006 suppression: a documented, order-insensitive aggregation."""


def count_distinct(messages):
    uids = {m.uid for m in messages}
    total = 0
    for _uid in uids:  # repro-lint: disable=REP006 -- order-insensitive count
        total += 1
    return total

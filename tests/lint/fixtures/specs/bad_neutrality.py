"""Fixture: a content-sensitive delivery predicate (REP003 positives)."""


class PayloadPeekingSpec(BroadcastSpec):  # noqa: F821 - parse-only fixture
    """Branches on what messages say, violating Def. 3."""

    def ordering_violations(self, execution):
        violations = []
        for message in execution.broadcast_messages:
            if message.content == "URGENT":  # inspects content
                violations.append(str(message))
        return violations

"""REP006 true negatives: sorted or inherently ordered uid iteration."""


def detail_sorted_set(messages):
    uids = {m.uid for m in messages}
    return [f"missing {uid}" for uid in sorted(uids)]


def detail_sorted_accumulator(messages):
    seen = set()
    for message in messages:
        seen.add(message.uid)
    return [str(uid) for uid in sorted(seen)]


def detail_sorted_dict_values(messages):
    per_sender = {}
    for message in messages:
        per_sender.setdefault(message.uid.sender, set()).add(message.uid)
    details = []
    for sender, uids in sorted(per_sender.items()):
        for uid in sorted(uids):
            details.append(f"{sender} -> {uid}")
    return details


def detail_ordered_list(messages):
    uids = [m.uid for m in messages]  # a list: execution order, stable
    return [str(uid) for uid in uids]


def membership_checks_are_fine(messages, suspects):
    known = {m.uid for m in messages}
    return [str(uid) for uid in suspects if uid in known]


def non_uid_sets_are_out_of_scope(processes):
    alive = set(processes)
    return [p for p in alive]  # REP001's business, not REP006's


def _ordered_uids(uids):
    return sorted(uids)


def _ordered_uid_list(uids):
    return list(sorted(uids))


def detail_helper_sorted(messages):
    # rebinding the unpacked set through a sorted()-wrapping helper
    # launders it back to ordered, exactly like inline sorted(...)
    per_sender = {}
    for message in messages:
        per_sender.setdefault(message.uid.sender, set()).add(message.uid)
    details = []
    for sender, uids in per_sender.items():
        uids = _ordered_uids(uids)
        for uid in uids:
            details.append(f"{sender} -> {uid}")
    return details


def detail_rebound_sorted(messages):
    per_sender = {}
    for message in messages:
        per_sender.setdefault(message.uid.sender, set()).add(message.uid)
    out = []
    for sender, uids in per_sender.items():
        uids = _ordered_uid_list(uids)
        out.extend(str(uid) for uid in uids)
    return out

"""REP006 true positives: hash-ordered iteration over uid collections."""


def detail_from_set_comprehension(messages):
    uids = {m.uid for m in messages}
    details = []
    for uid in uids:  # BAD: hash order
        details.append(f"missing {uid}")
    return details


def detail_from_add_accumulator(messages):
    seen = set()
    for message in messages:
        seen.add(message.uid)
    return [str(uid) for uid in seen]  # BAD: hash order


def detail_from_setdefault_dict(messages):
    per_sender = {}
    for message in messages:
        per_sender.setdefault(message.uid.sender, set()).add(message.uid)
    details = []
    for sender, uids in per_sender.items():
        for uid in uids:  # BAD: the dict's values are uid sets
            details.append(f"{sender} -> {uid}")
    return details


def detail_from_dict_subscript(messages):
    per_sender = {}
    for message in messages:
        per_sender.setdefault(message.uid.sender, set()).add(message.uid)
    return [str(uid) for uid in per_sender[0]]  # BAD: set value


def detail_from_inline_frozenset(messages):
    return [
        str(uid)
        for uid in frozenset(m.uid for m in messages)  # BAD: hash order
    ]


def detail_with_enumerate(messages):
    uids = {m.uid for m in messages}
    details = []
    for rank, uid in enumerate(uids):  # BAD: enumerate does not order
        details.append(f"{rank}: {uid}")
    return details

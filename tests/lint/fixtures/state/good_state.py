"""Fixture: per-instance state, immutable defaults (REP004 negatives)."""

_PRIORITY = {"recv": 0, "local": 1}  # module constant: not process state


def accumulate(value, bucket=None):
    if bucket is None:
        bucket = []
    bucket.append(value)
    return bucket


def label(message, prefix=""):  # immutable default
    return prefix + str(message)


class PerInstanceBroadcast(BroadcastProcess):  # noqa: F821 - parse-only
    """Every process owns fresh containers."""

    ROUNDS = 3  # immutable class constant is fine

    def __init__(self, pid, n):
        super().__init__(pid, n)
        self.pending = []
        self.delivered_by_uid = {}

    def on_broadcast(self, message):
        self.pending.append(message)
        yield None

    def on_receive(self, payload, sender):
        yield None


import itertools


class RequestIds:
    """Instance-level iterators are per-object state: fine."""

    def __init__(self):
        self._ids = itertools.count()

    def fresh(self):
        return next(self._ids)


def numbered(items):
    counter = itertools.count()  # function-local: scoped per call
    return [(next(counter), item) for item in items]

"""Fixture: aliased mutable state (REP004 true positives)."""


def accumulate(value, bucket=[]):  # mutable default
    bucket.append(value)
    return bucket


def tally(key, counts={}):  # mutable default
    counts[key] = counts.get(key, 0) + 1
    return counts


class SharedStateBroadcast(BroadcastProcess):  # noqa: F821 - parse-only
    """All process instances alias one buffer: accidental shared memory."""

    pending = []  # class-level mutable on a process class
    delivered_by_uid = {}  # class-level mutable on a process class

    def on_broadcast(self, message):
        self.pending.append(message)
        yield None

    def on_receive(self, payload, sender):
        yield None


import itertools

_GLOBAL_IDS = itertools.count()  # module-level stateful iterator


class TokenMint:
    """Not a process class, still wrong: one cursor for all callers."""

    _counter = itertools.count()  # class-level stateful iterator

    def fresh(self):
        return next(self._counter)

"""Fixture: deterministic scheduling idioms (REP001 true negatives)."""

import random


def pick_next_event(choices, rng: random.Random):
    return choices[rng.randrange(len(choices))]


def make_generator(seed: int):
    return random.Random(seed)


def schedule(alive: set[int]):
    order = []
    for process in sorted(alive):  # deterministic iteration
        order.append(process)
    return order


def membership(alive: set[int], process: int) -> bool:
    return process in alive  # membership tests are order-free


def order_by_field(runtimes):
    return sorted(runtimes, key=lambda r: r.pid)

"""Fixture: every REP001 nondeterminism pattern (true positives)."""

import random
import time


def pick_next_event(choices):
    return choices[random.randrange(len(choices))]  # module-level RNG


def make_generator():
    return random.Random()  # unseeded


def timestamp_step():
    return time.time()  # wall clock


def order_by_identity(runtimes):
    return sorted(runtimes, key=id)  # memory-layout ordering


def schedule(alive: set[int]):
    order = []
    for process in alive:  # bare set iteration
        order.append(process)
    return order


def crashed_first():
    crashed = {3, 1, 2}
    return [p for p in crashed]  # set literal through a local name

"""MemoStore: cost-aware bounded eviction and persistence."""

import json

import pytest

from repro.server.memo import MemoStore


def fill(store, count, *, cost=1.0, payload_bytes=16):
    for index in range(count):
        store.put(
            f"key-{index:03d}",
            {"value": "x" * payload_bytes, "index": index},
            cost=cost,
        )


class TestCoreOperations:
    def test_put_get_round_trip(self):
        store = MemoStore()
        store.put("k", {"a": [1, 2]}, cost=1.0)
        assert store.get("k") == {"a": [1, 2]}
        assert "k" in store and len(store) == 1

    def test_miss_returns_none_and_counts(self):
        store = MemoStore()
        assert store.get("absent") is None
        assert store.stats()["misses"] == 1

    def test_get_returns_isolated_copy(self):
        store = MemoStore()
        store.put("k", {"nested": {"list": [1]}}, cost=1.0)
        first = store.get("k")
        first["nested"]["list"].append(99)
        assert store.get("k") == {"nested": {"list": [1]}}

    def test_put_copies_caller_payload(self):
        store = MemoStore()
        payload = {"list": [1]}
        store.put("k", payload, cost=1.0)
        payload["list"].append(99)
        assert store.get("k") == {"list": [1]}

    def test_reput_replaces(self):
        store = MemoStore()
        store.put("k", {"v": 1}, cost=1.0)
        store.put("k", {"v": 2}, cost=1.0)
        assert store.get("k") == {"v": 2}
        assert len(store) == 1


class TestEvictionBounds:
    def test_entry_bound_under_fifty_job_load(self):
        store = MemoStore(max_entries=8, max_bytes=1 << 20)
        fill(store, 50)
        assert len(store) <= 8
        assert store.stats()["evictions"] == 42

    def test_byte_bound_under_fifty_job_load(self):
        store = MemoStore(max_entries=256, max_bytes=512)
        fill(store, 50, payload_bytes=64)
        assert store.total_bytes() <= 512
        assert len(store) >= 1

    def test_oversized_single_payload_kept_alone(self):
        store = MemoStore(max_entries=8, max_bytes=128)
        fill(store, 4, payload_bytes=16)
        store.put("huge", {"value": "x" * 4096}, cost=9.0)
        assert len(store) == 1
        assert store.get("huge") is not None

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            MemoStore(max_entries=0)
        with pytest.raises(ValueError):
            MemoStore(max_bytes=0)


class TestCostAwareness:
    def test_expensive_entry_survives_cheap_churn(self):
        store = MemoStore(max_entries=4)
        store.put("expensive", {"value": "x" * 16}, cost=1000.0)
        fill(store, 20, cost=0.001)
        assert store.get("expensive") is not None

    def test_insertion_recency_respected_across_epochs(self):
        # uniform cost/size: later epochs outrank earlier ones
        store = MemoStore(max_entries=2)
        for key in ("a", "b", "c", "d"):
            store.put(key, {"value": "x" * 16}, cost=1.0)
        assert set(e.key for e in store.entries()) == {"c", "d"}

    def test_hit_refresh_outlives_unrefreshed_peer(self):
        store = MemoStore(max_entries=2)
        store.put("a", {"value": "x" * 16}, cost=2.0)
        store.put("b", {"value": "x" * 16}, cost=1.0)
        store.put("c", {"value": "x" * 16}, cost=1.0)  # evicts b
        assert "b" not in store
        assert store.get("a") is not None  # refresh at the new clock
        store.put("d", {"value": "x" * 16}, cost=1.0)  # evicts c, not a
        assert set(e.key for e in store.entries()) == {"a", "d"}


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        path = str(tmp_path / "memo.json")
        store = MemoStore(max_entries=8)
        store.put("k1", {"v": 1}, cost=2.0)
        store.put("k2", {"v": [1, 2]}, cost=3.0)
        store.get("k1")
        store.save(path)
        loaded = MemoStore.load(path, max_entries=8)
        assert len(loaded) == 2
        assert loaded.get("k1") == {"v": 1}
        assert loaded.get("k2") == {"v": [1, 2]}

    def test_load_rebounds_against_tighter_limits(self, tmp_path):
        path = str(tmp_path / "memo.json")
        store = MemoStore(max_entries=16)
        fill(store, 10)
        store.save(path)
        loaded = MemoStore.load(path, max_entries=3)
        assert len(loaded) <= 3

    def test_missing_file_yields_empty_store(self, tmp_path):
        loaded = MemoStore.load(str(tmp_path / "absent.json"))
        assert len(loaded) == 0

    def test_corrupt_file_yields_empty_store(self, tmp_path):
        path = tmp_path / "memo.json"
        path.write_text("{not json")
        assert len(MemoStore.load(str(path))) == 0

    def test_wrong_schema_yields_empty_store(self, tmp_path):
        path = tmp_path / "memo.json"
        path.write_text(json.dumps({"schema": 999, "entries": []}))
        assert len(MemoStore.load(str(path))) == 0

    def test_torn_entries_skipped(self, tmp_path):
        path = tmp_path / "memo.json"
        path.write_text(
            json.dumps(
                {
                    "schema": 1,
                    "entries": [
                        {"key": "good", "payload": {"v": 1}, "cost": 1.0},
                        {"key": "torn"},  # missing payload/cost
                    ],
                }
            )
        )
        loaded = MemoStore.load(str(path))
        assert len(loaded) == 1
        assert loaded.get("good") == {"v": 1}

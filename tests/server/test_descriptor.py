"""Descriptor canonicalization: equivalent requests, identical keys.

The memo store only works if every spelling of the same job lands on
the same :func:`job_digest` — and if digests from different engine
schema versions can never collide.
"""

import pytest

from repro.server.descriptor import (
    ALGORITHMS,
    ENGINE_SCHEMA,
    SPECS,
    DescriptorError,
    JobDescriptor,
    job_digest,
)

BASE = {
    "algorithm": "send-to-all",
    "n": 3,
    "scripts": {"0": ["a"], "1": ["b"]},
}


def digest_of(data):
    return job_digest(JobDescriptor.from_json(data))


class TestEquivalentSpellings:
    def test_reordered_keys(self):
        reordered = {
            "scripts": {"0": ["a"], "1": ["b"]},
            "n": 3,
            "algorithm": "send-to-all",
        }
        assert digest_of(BASE) == digest_of(reordered)

    def test_defaults_explicit_vs_omitted(self):
        explicit = dict(
            BASE,
            spec="channels",
            k=1,
            engine="dedup",
            sleep_sets=False,
            static_independence=False,
            symmetry="none",
            workers=1,
            max_schedules=100_000,
            max_depth=400,
            stop_at_first_violation=False,
            assume_complete=False,
            sync_broadcasts=False,
            crash_at_step={},
            crash_initially=[],
        )
        assert digest_of(BASE) == digest_of(explicit)

    def test_list_vs_tuple_script_values(self):
        as_tuples = dict(BASE, scripts={"0": ("a",), "1": ("b",)})
        assert digest_of(BASE) == digest_of(as_tuples)

    def test_int_vs_str_script_pids(self):
        int_pids = dict(BASE, scripts={0: ["a"], 1: ["b"]})
        assert digest_of(BASE) == digest_of(int_pids)

    def test_script_pid_order_irrelevant(self):
        swapped = dict(BASE, scripts={"1": ["b"], "0": ["a"]})
        assert digest_of(BASE) == digest_of(swapped)

    def test_empty_scripts_dropped(self):
        padded = dict(BASE, scripts={"0": ["a"], "1": ["b"], "2": []})
        assert digest_of(BASE) == digest_of(padded)

    def test_progress_every_is_telemetry_only(self):
        assert digest_of(BASE) == digest_of(dict(BASE, progress_every=7))

    def test_crash_mapping_vs_pairs(self):
        as_mapping = dict(BASE, crash_at_step={"1": 2, "0": 3})
        as_pairs = dict(BASE, crash_at_step=[[0, 3], [1, 2]])
        assert digest_of(as_mapping) == digest_of(as_pairs)

    def test_crash_initially_order_and_dups(self):
        assert digest_of(dict(BASE, crash_initially=[2, 0])) == digest_of(
            dict(BASE, crash_initially=[0, 2, 0])
        )

    def test_json_round_trip_preserves_digest(self):
        descriptor = JobDescriptor.from_json(
            dict(BASE, sleep_sets=True, symmetry="rename", k=2, spec="kbo")
        )
        rebuilt = JobDescriptor.from_json(descriptor.to_json())
        assert rebuilt == descriptor
        assert job_digest(rebuilt) == job_digest(descriptor)


class TestDistinctRequestsDistinctKeys:
    @pytest.mark.parametrize(
        "change",
        [
            {"n": 4},
            {"scripts": {"0": ["a"], "1": ["c"]}},
            {"spec": "total-order"},
            {"engine": "incremental"},
            {"sleep_sets": True},
            {"static_independence": True},
            {"symmetry": "rename"},
            {"workers": 2},
            {"max_schedules": 50_000},
            {"max_depth": 100},
            {"stop_at_first_violation": True},
            {"assume_complete": True},
            {"sync_broadcasts": True},
            {"crash_initially": [0]},
            {"crash_at_step": {"0": 1}},
        ],
    )
    def test_engine_relevant_field_changes_digest(self, change):
        assert digest_of(BASE) != digest_of(dict(BASE, **change))

    def test_schema_versions_never_collide(self):
        descriptor = JobDescriptor.from_json(BASE)
        digests = {
            job_digest(descriptor, schema=schema)
            for schema in range(ENGINE_SCHEMA + 4)
        }
        assert len(digests) == ENGINE_SCHEMA + 4
        assert job_digest(descriptor) == job_digest(
            descriptor, schema=ENGINE_SCHEMA
        )


class TestValidation:
    @pytest.mark.parametrize(
        "bad",
        [
            {"algorithm": "nope"},
            {"spec": "nope"},
            {"engine": "nope"},
            {"symmetry": "nope"},
            {"n": 0},
            {"k": 0},
            {"workers": 0},
            {"max_schedules": 0},
            {"max_depth": 0},
            {"progress_every": 0},
            {"scripts": {"7": ["a"]}},  # pid outside 0..n-1
            {"crash_at_step": {"7": 1}},
            {"crash_at_step": {"0": -1}},
            {"crash_initially": [7]},
        ],
    )
    def test_invalid_fields_rejected(self, bad):
        with pytest.raises(DescriptorError):
            JobDescriptor.from_json(dict(BASE, **bad))

    def test_unknown_keys_rejected(self):
        with pytest.raises(DescriptorError, match="unknown descriptor"):
            JobDescriptor.from_json(dict(BASE, sleeep_sets=True))

    def test_missing_required_keys_rejected(self):
        with pytest.raises(DescriptorError, match="missing required"):
            JobDescriptor.from_json({"algorithm": "send-to-all"})

    def test_duplicate_script_pids_rejected(self):
        with pytest.raises(DescriptorError, match="duplicate"):
            JobDescriptor.from_json(
                dict(BASE, scripts=[[0, ["a"]], ["0", ["b"]]])
            )

    def test_registries_resolve(self):
        for name in ALGORITHMS:
            assert ALGORITHMS[name](0, 2) is not None
        for name in SPECS:
            assert SPECS[name](1) is not None


class TestBuildAndCost:
    def test_build_resolves_runnable_arguments(self):
        descriptor = JobDescriptor.from_json(
            dict(BASE, sleep_sets=True, crash_at_step={"0": 2})
        )
        simulator, scripts, prop, crash, kwargs = descriptor.build()
        assert simulator.n == 3
        assert scripts == {0: ("a",), 1: ("b",)}
        assert prop is not None
        assert crash is not None and crash.at_step == {0: 2}
        assert kwargs["engine"] == "dedup"
        assert kwargs["sleep_sets"] is True
        assert "static_independence" not in kwargs

    def test_estimated_cost_orders_small_before_large(self):
        tiny = JobDescriptor.from_json(
            {"algorithm": "send-to-all", "n": 2, "scripts": {"0": ["x"]}}
        )
        showcase = JobDescriptor.from_json(BASE)
        assert tiny.estimated_cost() < showcase.estimated_cost()

"""JobManager: lifecycle, memoization, coalescing, batching, cancel.

All tests drive the manager through ``asyncio.run`` (no pytest-asyncio
in the toolchain).  Jobs use deliberately tiny configurations; the one
long-running configuration exists only to be cancelled.
"""

import asyncio

import pytest

import repro.server.jobs as jobs_module
from repro.server.descriptor import JobDescriptor
from repro.server.jobs import JobManager, JobState
from repro.server.memo import MemoStore


def tiny(letter="x"):
    """A near-instant job (single broadcaster, n=2)."""
    return JobDescriptor.from_json(
        {
            "algorithm": "send-to-all",
            "n": 2,
            "scripts": {"0": [letter]},
            "progress_every": 2,
        }
    )


def showcase():
    """The depth-8 config: big enough to occupy a worker for a while."""
    return JobDescriptor.from_json(
        {
            "algorithm": "send-to-all",
            "n": 3,
            "scripts": {"0": ["a"], "1": ["b"]},
            "progress_every": 50,
        }
    )


def long_running():
    """URB with two senders: thousands of terminals, cancellable."""
    return JobDescriptor.from_json(
        {
            "algorithm": "uniform-reliable",
            "n": 2,
            "scripts": {"0": ["a"], "1": ["b"]},
            "engine": "incremental",
        }
    )


def manager(**kwargs):
    kwargs.setdefault("max_workers", 1)
    return JobManager(MemoStore(), **kwargs)


class TestLifecycleAndMemo:
    def test_submit_runs_to_done(self):
        async def main():
            mgr = manager()
            record = mgr.submit(tiny())
            await record.wait()
            assert record.state is JobState.DONE
            assert record.result["exhausted"] is True
            assert record.violations_digest
            assert not record.memo_hit
            await mgr.drain()

        asyncio.run(main())

    def test_second_submission_is_memo_hit(self):
        async def main():
            mgr = manager()
            first = mgr.submit(tiny())
            await first.wait()
            second = mgr.submit(tiny())
            assert second.state is JobState.DONE
            assert second.memo_hit
            assert second.job_id != first.job_id
            assert second.result == first.result
            assert second.violations_digest == first.violations_digest
            stats = mgr.stats()
            assert stats["explorations_run"] == 1
            assert stats["memo_hits"] == 1
            await mgr.drain()

        asyncio.run(main())

    def test_in_flight_equivalents_coalesce(self):
        async def main():
            mgr = manager()  # one worker
            blocker = mgr.submit(showcase())  # occupies it
            first = mgr.submit(tiny())
            twin = mgr.submit(tiny())
            assert twin is first
            assert first.submissions == 2
            await asyncio.gather(blocker.wait(), first.wait())
            stats = mgr.stats()
            assert stats["coalesced"] == 1
            assert stats["explorations_run"] == 2
            await mgr.drain()

        asyncio.run(main())

    def test_failed_job_records_error(self, monkeypatch):
        # patch before fork: the worker inherits the raising stub
        def explode(descriptor, emit, **kwargs):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(jobs_module, "_run_descriptor", explode)

        async def main():
            mgr = manager()
            record = mgr.submit(tiny())
            await record.wait()
            assert record.state is JobState.FAILED
            assert "engine exploded" in record.error
            assert mgr.stats()["explorations_run"] == 0
            await mgr.drain()

        asyncio.run(main())

    def test_progress_events_reach_subscribers(self):
        async def main():
            mgr = manager()
            record = mgr.submit(tiny())
            queue = mgr.subscribe(record.job_id)
            events = []
            while True:
                event = await queue.get()
                events.append(event)
                if event["event"] in ("done", "failed", "cancelled"):
                    break
            kinds = [e["event"] for e in events]
            assert kinds[0] == "running"
            assert kinds[-1] == "done"
            assert "progress" in kinds
            snapshot = next(
                e["snapshot"] for e in events if e["event"] == "progress"
            )
            assert snapshot["expansions"] >= 1
            await mgr.drain()

        asyncio.run(main())

    def test_late_subscriber_gets_terminal_event(self):
        async def main():
            mgr = manager()
            record = mgr.submit(tiny())
            await record.wait()
            queue = mgr.subscribe(record.job_id)
            event = queue.get_nowait()
            assert event["event"] == "done"
            assert event["result"] == record.result
            await mgr.drain()

        asyncio.run(main())


class TestQueueingAndBatching:
    def test_priority_order(self):
        async def main():
            mgr = manager()
            mgr.submit(showcase())  # occupy the single worker
            low = mgr.submit(tiny("l"), priority=5)
            high = mgr.submit(tiny("h"), priority=0)
            batch = mgr._pop_batch()
            assert batch[0] is high
            assert low.state is JobState.QUEUED
            # restore and settle
            import heapq

            mgr._seq += 1
            heapq.heappush(
                mgr._heap, (high.priority, mgr._seq, high.job_id)
            )
            await asyncio.gather(low.wait(), high.wait())
            await mgr.drain()

        asyncio.run(main())

    def test_small_jobs_batch_into_one_dispatch(self):
        async def main():
            mgr = manager(batch_max=4)
            blocker = mgr.submit(showcase())  # cost 36 > small_cost 32
            small = [mgr.submit(tiny(letter)) for letter in "pqr"]
            await asyncio.gather(*(r.wait() for r in [blocker, *small]))
            stats = mgr.stats()
            assert all(r.state is JobState.DONE for r in small)
            # blocker alone + the three small jobs as one batch
            assert stats["batches_dispatched"] == 2
            assert stats["batched_jobs"] == 3
            assert stats["explorations_run"] == 4
            await mgr.drain()

        asyncio.run(main())

    def test_batch_max_respected(self):
        async def main():
            mgr = manager(batch_max=2)
            blocker = mgr.submit(showcase())
            small = [mgr.submit(tiny(letter)) for letter in "pqrs"]
            await asyncio.gather(*(r.wait() for r in [blocker, *small]))
            assert mgr.stats()["batches_dispatched"] == 3  # 1 + 2 + 2
            await mgr.drain()

        asyncio.run(main())


class TestCancellation:
    def test_cancel_queued_job(self):
        async def main():
            mgr = manager()
            blocker = mgr.submit(showcase())
            victim = mgr.submit(tiny())
            queue = mgr.subscribe(victim.job_id)
            assert mgr.cancel(victim.job_id) is True
            assert victim.state is JobState.CANCELLED
            assert queue.get_nowait()["event"] == "cancelled"
            await blocker.wait()
            assert mgr.stats()["explorations_run"] == 1
            await mgr.drain()

        asyncio.run(main())

    def test_cancel_running_job_terminates_worker(self):
        async def main():
            mgr = manager(backend="process")
            record = mgr.submit(long_running())
            queue = mgr.subscribe(record.job_id)
            event = await queue.get()
            assert event["event"] == "running"
            assert mgr.cancel(record.job_id) is True
            await record.wait()
            assert record.state is JobState.CANCELLED
            # a fresh equivalent submission is not poisoned by the cancel
            again = mgr.submit(long_running())
            assert again.state in (JobState.QUEUED, JobState.RUNNING)
            assert mgr.cancel(again.job_id) is True
            await again.wait()
            await mgr.drain()

        asyncio.run(main())

    def test_cancel_terminal_job_is_stable(self):
        async def main():
            mgr = manager()
            record = mgr.submit(tiny())
            await record.wait()
            assert mgr.cancel(record.job_id) is False
            assert record.state is JobState.DONE
            await mgr.drain()

        asyncio.run(main())

    def test_cancel_unknown_job_raises(self):
        async def main():
            mgr = manager()
            with pytest.raises(KeyError):
                mgr.cancel("job-999")
            await mgr.drain()

        asyncio.run(main())


class TestDrainAndBackends:
    def test_drain_cancels_queue_and_finishes_running(self):
        async def main():
            mgr = manager()
            running = mgr.submit(showcase())
            queued = mgr.submit(tiny())
            await mgr.drain()
            assert running.state is JobState.DONE
            assert queued.state is JobState.CANCELLED
            with pytest.raises(RuntimeError):
                mgr.submit(tiny("z"))

        asyncio.run(main())

    def test_thread_backend_runs_and_memoizes(self):
        async def main():
            mgr = manager(backend="thread")
            first = mgr.submit(tiny())
            await first.wait()
            assert first.state is JobState.DONE
            second = mgr.submit(tiny())
            assert second.memo_hit
            assert second.result == first.result
            await mgr.drain()

        asyncio.run(main())

    def test_backends_agree_on_results(self):
        async def run_with(backend):
            mgr = manager(backend=backend)
            record = mgr.submit(tiny())
            await record.wait()
            await mgr.drain()
            return record.result

        process_result = asyncio.run(run_with("process"))
        thread_result = asyncio.run(run_with("thread"))
        assert process_result == thread_result

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            JobManager(MemoStore(), backend="carrier-pigeon")

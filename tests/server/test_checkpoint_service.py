"""Service-layer checkpoint/resume: cancel warm, die warm, restart warm.

Covers the operational half of the checkpoint contract:

* the thread backend interrupts *started* jobs cooperatively (the
  cancel event reaches the engine, the job reports ``cancelled``, and
  its partial search is checkpointed);
* the process backend's terminated workers leave their periodic
  checkpoints behind, and :meth:`JobManager.resume` completes the job
  construction-identically to a cold run;
* a worker death requeues a checkpointed job (bounded by the requeue
  cap) instead of failing it;
* the ``resume`` verb round-trips over real TCP;
* a real SIGTERM to a ``python -m repro.server serve`` subprocess —
  both TCP and ``--stdio`` — exits cleanly, checkpoints running work,
  and persists the memo.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

import repro.server.jobs as jobs_module
from repro.server.client import ServiceClient
from repro.server.descriptor import JobDescriptor
from repro.server.jobs import JobManager, JobRecord, JobState
from repro.server.memo import MemoStore
from repro.server.service import VerificationService


def long_running():
    """URB with two senders: thousands of terminals, cancellable."""
    return JobDescriptor.from_json(
        {
            "algorithm": "uniform-reliable",
            "n": 2,
            "scripts": {"0": ["a"], "1": ["b"]},
            "engine": "incremental",
            "progress_every": 25,
        }
    )


def tiny(letter="x"):
    return JobDescriptor.from_json(
        {"algorithm": "send-to-all", "n": 2, "scripts": {"0": [letter]}}
    )


def manager(**kwargs):
    kwargs.setdefault("max_workers", 1)
    return JobManager(MemoStore(), **kwargs)


#: Result fields that must match between a resumed and a cold run
#: (events_executed/events_replayed are exempt: a resume re-pays the
#: schedule prefix, exactly like parallel shards do).
INVARIANT = (
    "schedules_explored",
    "terminal_schedules",
    "exhausted",
    "max_depth_seen",
    "states_seen",
    "expansions_by_depth",
    "violations",
)


def assert_equivalent(resumed: dict, reference: dict) -> None:
    assert not resumed["interrupted"]
    for name in INVARIANT:
        assert resumed[name] == reference[name], name


async def cold_reference(descriptor: JobDescriptor) -> dict:
    mgr = manager()
    record = mgr.submit(descriptor)
    await record.wait()
    await mgr.drain()
    assert record.state is JobState.DONE
    return record.result


class TestThreadBackendCancel:
    def test_started_job_interrupts_cooperatively(self, tmp_path):
        async def main():
            mgr = manager(
                backend="thread", checkpoint_dir=str(tmp_path)
            )
            record = mgr.submit(long_running())
            queue = mgr.subscribe(record.job_id)
            event = await queue.get()
            assert event["event"] == "running"
            assert mgr.cancel(record.job_id) is True
            await asyncio.wait_for(record.wait(), 60)
            assert record.state is JobState.CANCELLED
            # the interrupt checkpointed the partial search
            path = mgr._checkpoint_path(record.digest)
            assert path is not None and os.path.exists(path)
            await mgr.drain()

        asyncio.run(main())

    def test_replay_job_is_not_cancellable(self):
        async def main():
            mgr = manager(backend="thread")
            descriptor = JobDescriptor.from_json(
                {
                    "algorithm": "send-to-all",
                    "n": 2,
                    "scripts": {"0": ["a"], "1": ["b"]},
                    "engine": "replay",
                }
            )
            record = mgr.submit(descriptor)
            queue = mgr.subscribe(record.job_id)
            assert (await queue.get())["event"] == "running"
            assert mgr.cancel(record.job_id) is False
            await mgr.drain()
            assert record.state is JobState.DONE

        asyncio.run(main())

    def test_cancel_then_resume_is_lossless(self, tmp_path):
        async def main():
            reference = await cold_reference(long_running())
            mgr = manager(
                backend="thread", checkpoint_dir=str(tmp_path)
            )
            record = mgr.submit(long_running())
            queue = mgr.subscribe(record.job_id)
            assert (await queue.get())["event"] == "running"
            assert mgr.cancel(record.job_id) is True
            await asyncio.wait_for(record.wait(), 60)
            assert record.state is JobState.CANCELLED
            resumed = mgr.resume(record.job_id)
            assert resumed.job_id != record.job_id
            await asyncio.wait_for(resumed.wait(), 120)
            assert resumed.state is JobState.DONE
            assert not resumed.memo_hit
            assert_equivalent(resumed.result, reference)
            # completion discarded the at-rest checkpoint
            path = mgr._checkpoint_path(record.digest)
            assert not os.path.exists(path)
            assert mgr.stats()["resumed"] == 1
            await mgr.drain()

        asyncio.run(main())


class TestProcessBackendCancel:
    def test_terminated_worker_leaves_checkpoint_and_resumes(
        self, tmp_path
    ):
        async def main():
            reference = await cold_reference(long_running())
            mgr = manager(
                backend="process",
                checkpoint_dir=str(tmp_path),
                checkpoint_every=10,
            )
            record = mgr.submit(long_running())
            queue = mgr.subscribe(record.job_id)
            assert (await queue.get())["event"] == "running"
            # wait for real progress so periodic checkpoints exist
            while (await queue.get())["event"] != "progress":
                pass
            assert mgr.cancel(record.job_id) is True
            await asyncio.wait_for(record.wait(), 60)
            assert record.state is JobState.CANCELLED
            path = mgr._checkpoint_path(record.digest)
            assert path is not None and os.path.exists(path)
            resumed = mgr.resume(record.job_id)
            await asyncio.wait_for(resumed.wait(), 120)
            assert resumed.state is JobState.DONE
            assert_equivalent(resumed.result, reference)
            await mgr.drain()

        asyncio.run(main())

    def test_resume_of_done_job_is_identity(self):
        async def main():
            mgr = manager()
            record = mgr.submit(tiny())
            await record.wait()
            assert mgr.resume(record.job_id) is record
            await mgr.drain()

        asyncio.run(main())


class TestRequeueAfterWorkerDeath:
    def _running_record(self, mgr, digest):
        record = JobRecord(
            f"job-{digest}", tiny(), digest, 0, state=JobState.RUNNING
        )
        mgr._jobs[record.job_id] = record
        handle = jobs_module._BatchHandle(jobs=[record])
        handle.started.add(record.job_id)
        return record, handle

    def test_without_checkpoint_death_fails_loudly(self, tmp_path):
        mgr = manager(checkpoint_dir=str(tmp_path))
        record, handle = self._running_record(mgr, "digest-cold")
        mgr._finalize_batch(handle, exitcode=-9)
        assert record.state is JobState.FAILED
        assert "died" in record.error

    def test_with_checkpoint_death_requeues_up_to_cap(self, tmp_path):
        mgr = manager(checkpoint_dir=str(tmp_path))
        record, handle = self._running_record(mgr, "digest-warm")
        with open(mgr._checkpoint_path("digest-warm"), "w") as fh:
            fh.write("{}")
        for attempt in range(1, jobs_module._REQUEUE_CAP + 1):
            mgr._finalize_batch(handle, exitcode=-9)
            assert record.state is JobState.QUEUED
            assert record.requeues == attempt
            record.state = JobState.RUNNING
        mgr._finalize_batch(handle, exitcode=-9)
        assert record.state is JobState.FAILED
        assert mgr.stats()["requeued_after_death"] == (
            jobs_module._REQUEUE_CAP
        )


class TestResumeVerbOverTcp:
    def test_cancel_resume_round_trip(self, tmp_path):
        async def main():
            service = VerificationService(
                backend="thread",
                max_workers=1,
                checkpoint_dir=str(tmp_path),
            )
            host, port = await service.serve_tcp("127.0.0.1", 0)
            descriptor = long_running().to_json()
            async with ServiceClient(host, port) as client, ServiceClient(
                host, port
            ) as watcher:
                job = (await client.submit(descriptor))["job"]
                async for event in watcher.watch(job):
                    if event["event"] in ("running", "progress"):
                        break
                reply = await client.cancel(job)
                assert reply["cancelled"] is True
                status = await client.result(job)
                assert status["state"] == "cancelled"
                resumed = await client.resume(job)
                assert resumed["resumed_from"] == job
                assert resumed["job"] != job
                final = await asyncio.wait_for(
                    client.result(resumed["job"]), 120
                )
                assert final["state"] == "done"
                assert not final["result"]["interrupted"]
            await service.shutdown()

        asyncio.run(main())


def _spawn(argv, **kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.server", *argv],
        env=env,
        text=True,
        **kwargs,
    )
    # watchdog: a hung server must fail the test, not the suite
    timer = threading.Timer(120, proc.kill)
    timer.daemon = True
    timer.start()
    return proc, timer


class TestRealSignals:
    """Real SIGTERM delivered to real server subprocesses."""

    def test_tcp_sigterm_checkpoints_and_persists(self, tmp_path):
        memo_path = os.path.join(tmp_path, "memo.json")
        ckpt_dir = os.path.join(tmp_path, "ckpt")
        proc, timer = _spawn(
            [
                "serve", "--port", "0", "--memo", memo_path,
                "--checkpoint-dir", ckpt_dir,
                "--checkpoint-every", "10", "--max-workers", "1",
            ],
            stdout=subprocess.PIPE,
        )
        try:
            banner = proc.stdout.readline()
            port = int(banner.strip().rsplit(":", 1)[1])

            async def submit_and_watch():
                async with ServiceClient("127.0.0.1", port) as client:
                    job = (
                        await client.submit(long_running().to_json())
                    )["job"]
                    async for event in client.watch(job):
                        if event["event"] == "progress":
                            return

            asyncio.run(submit_and_watch())
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=90) == 0
            assert os.path.exists(memo_path)
            names = os.listdir(ckpt_dir)
            assert any(name.endswith(".ckpt") for name in names)
        finally:
            timer.cancel()
            proc.kill()

    def test_stdio_sigterm_exits_gracefully(self, tmp_path):
        memo_path = os.path.join(tmp_path, "memo.json")
        proc, timer = _spawn(
            ["serve", "--stdio", "--memo", memo_path],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
        )
        try:
            request = {
                "op": "submit",
                "descriptor": tiny().to_json(),
                "wait": True,
            }
            proc.stdin.write(json.dumps(request) + "\n")
            proc.stdin.flush()
            reply = json.loads(proc.stdout.readline())
            assert reply["ok"] and reply["state"] == "done"
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=90) == 0
            # graceful shutdown persisted the memo with the result
            assert os.path.exists(memo_path)
            with open(memo_path) as handle:
                assert handle.read().strip()
        finally:
            timer.cancel()
            proc.kill()

    def test_stdio_eof_still_shuts_down_cleanly(self, tmp_path):
        memo_path = os.path.join(tmp_path, "memo.json")
        proc, timer = _spawn(
            ["serve", "--stdio", "--memo", memo_path],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
        )
        try:
            proc.stdin.close()
            assert proc.wait(timeout=90) == 0
            assert os.path.exists(memo_path)
        finally:
            timer.cancel()
            proc.kill()

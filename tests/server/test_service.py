"""End-to-end service tests over real TCP connections.

These drive the acceptance path: two equivalent submissions run exactly
one exploration (the second is a construction-identical memo hit), a
live subscriber streams ``ProgressSnapshot`` events for the cold run,
shutdown persists the memo for warm restarts, and the store stays
within bounds under load.
"""

import asyncio

import pytest

from repro.server.client import ServiceClient, ServiceError
from repro.server.descriptor import JobDescriptor
from repro.server.service import VerificationService

SHOWCASE = {
    "algorithm": "send-to-all",
    "n": 3,
    "scripts": {"0": ["a"], "1": ["b"]},
    "engine": "dedup",
    "progress_every": 50,
}

#: Same request, respelled: reordered keys, explicit defaults, other
#: telemetry cadence.
SHOWCASE_RESPELLED = {
    "scripts": {"1": ["b"], "0": ["a"]},
    "n": 3,
    "k": 1,
    "engine": "dedup",
    "symmetry": "none",
    "algorithm": "send-to-all",
    "progress_every": 500,
}

VIOLATING = {
    "algorithm": "send-to-all",
    "n": 2,
    "scripts": {"0": ["x"], "1": ["y"]},
    "spec": "total-order",
}


def tiny(letter):
    return {
        "algorithm": "send-to-all",
        "n": 2,
        "scripts": {"0": [letter]},
    }


async def started_service(**kwargs):
    service = VerificationService(**kwargs)
    host, port = await service.serve_tcp("127.0.0.1", 0)
    return service, host, port


class TestAcceptance:
    def test_two_equivalent_submissions_one_exploration(self):
        async def main():
            service, host, port = await started_service(max_workers=2)
            async with ServiceClient(host, port) as client, ServiceClient(
                host, port
            ) as watcher:
                submitted = await client.submit(SHOWCASE)
                job = submitted["job"]

                progress = []
                terminal = None
                async for event in watcher.watch(job):
                    if event["event"] == "progress":
                        progress.append(event["snapshot"])
                    elif event["event"] == "done":
                        terminal = event

                # live subscriber streamed snapshots during the cold run
                assert len(progress) >= 1
                assert progress[0]["expansions"] >= 1
                assert terminal is not None

                cold = await client.result(job)
                assert cold["memo_hit"] is False
                assert cold["result"]["states_seen"] == 321

                warm = await client.submit(SHOWCASE_RESPELLED, wait=True)
                assert warm["memo_hit"] is True
                assert warm["job"] != job
                # construction-identical ExplorationResult
                assert warm["result"] == cold["result"]
                assert (
                    warm["violations_digest"] == cold["violations_digest"]
                )
                assert (
                    warm["result"]["states_seen"]
                    == cold["result"]["states_seen"]
                )

                stats = await client.stats()
                assert stats["explorations_run"] == 1
                assert stats["memo_hits"] == 1
            await service.shutdown()

        asyncio.run(main())

    def test_watch_streams_independence_stats(self):
        # a sleep-set crash job counts verdicts by source; the watch
        # stream must carry them in both the progress snapshots and
        # the terminal result
        crashy = {
            "algorithm": "send-to-all",
            "n": 3,
            "scripts": {"0": ["a"], "1": ["b"]},
            "engine": "dedup",
            "sleep_sets": True,
            "crash_at_step": {"2": 4},
            "max_depth": 8,
            "progress_every": 25,
        }

        async def main():
            service, host, port = await started_service()
            async with ServiceClient(host, port) as client, ServiceClient(
                host, port
            ) as watcher:
                job = (await client.submit(crashy))["job"]
                snapshots = []
                terminal = None
                async for event in watcher.watch(job):
                    if event["event"] == "progress":
                        snapshots.append(event["snapshot"])
                    elif event["event"] == "done":
                        terminal = event
                assert snapshots, "expected progress snapshots"
                assert any(
                    s.get("independence_stats", {}).get("memo_queries", 0)
                    for s in snapshots
                ), "no snapshot carried independence counters"
                assert terminal is not None
                stats = terminal["result"]["independence_stats"]
                assert stats["crash_proof"] > 0
                assert stats["memo_queries"] >= stats["memo_hits"] >= 0
            await service.shutdown()

        asyncio.run(main())

    def test_independence_line_rendering(self):
        from repro.server.__main__ import _independence_line

        assert _independence_line(None) is None
        assert _independence_line({}) is None
        assert _independence_line({"dynamic": 0}) is None
        line = _independence_line(
            {
                "dynamic": 3,
                "crash_proof": 2,
                "conservative": 5,
                "memo_queries": 10,
                "memo_hits": 4,
            }
        )
        assert line == "dynamic=3 crash_proof=2 conservative=5 memo=4/10"

    def test_violating_config_reports_violations(self):
        async def main():
            service, host, port = await started_service()
            async with ServiceClient(host, port) as client:
                reply = await client.submit(VIOLATING, wait=True)
                assert reply["state"] == "done"
                assert len(reply["result"]["violations"]) > 0
                assert reply["violations_digest"]
            await service.shutdown()

        asyncio.run(main())

    def test_eviction_bounds_under_fifty_job_load(self):
        async def main():
            # synthetic load: 50 distinct memoized results against a
            # store bounded far below them
            service, host, port = await started_service(
                max_entries=8, max_bytes=1 << 16
            )
            memo = service.manager.memo
            for index in range(50):
                memo.put(
                    f"job-digest-{index}",
                    {"result": {"states_seen": index}},
                    cost=float(index),
                )
            assert len(memo) <= 8
            assert memo.total_bytes() <= 1 << 16
            async with ServiceClient(host, port) as client:
                stats = await client.stats()
                assert stats["memo"]["entries"] <= 8
                assert stats["memo"]["evictions"] >= 42
            await service.shutdown()

        asyncio.run(main())

    def test_warm_restart_from_persisted_memo(self, tmp_path):
        memo_path = str(tmp_path / "memo.json")

        async def first_life():
            service, host, port = await started_service(
                memo_path=memo_path
            )
            runner = asyncio.create_task(service.run_until_shutdown())
            async with ServiceClient(host, port) as client:
                cold = await client.submit(tiny("w"), wait=True)
                await client.shutdown()
            await runner
            return cold

        async def second_life(cold):
            service, host, port = await started_service(
                memo_path=memo_path
            )
            async with ServiceClient(host, port) as client:
                warm = await client.submit(tiny("w"), wait=True)
                assert warm["memo_hit"] is True
                assert warm["result"] == cold["result"]
                assert (
                    warm["violations_digest"] == cold["violations_digest"]
                )
                assert (await client.stats())["explorations_run"] == 0
            await service.shutdown()

        cold = asyncio.run(first_life())
        asyncio.run(second_life(cold))


class TestProtocolSurface:
    def test_ping_status_jobs_cancel(self):
        async def main():
            service, host, port = await started_service(max_workers=1)
            async with ServiceClient(host, port) as client:
                assert (await client.ping())["pong"] is True

                blocker = (await client.submit(SHOWCASE))["job"]
                victim = (await client.submit(tiny("v")))["job"]

                status = await client.status(victim)
                assert status["state"] in ("queued", "running")

                cancelled = await client.cancel(victim)
                assert cancelled["cancelled"] is True
                assert (await client.status(victim))["state"] == "cancelled"

                listed = await client.jobs()
                assert {j["job"] for j in listed} >= {blocker, victim}

                result = await client.result(blocker)
                assert result["state"] == "done"
            await service.shutdown()

        asyncio.run(main())

    def test_watch_finished_job_yields_terminal_immediately(self):
        async def main():
            service, host, port = await started_service()
            async with ServiceClient(host, port) as client:
                job = (await client.submit(tiny("t"), wait=True))["job"]
                events = [e async for e in client.watch(job)]
                assert events[-1]["event"] == "done"
            await service.shutdown()

        asyncio.run(main())

    def test_error_replies(self):
        async def main():
            service, host, port = await started_service()
            async with ServiceClient(host, port) as client:
                with pytest.raises(ServiceError, match="unknown op"):
                    await client.request("frobnicate")
                with pytest.raises(ServiceError, match="unknown job"):
                    await client.status("job-999")
                with pytest.raises(ServiceError, match="descriptor"):
                    await client.request("submit", descriptor="nope")
                with pytest.raises(ServiceError, match="algorithm"):
                    await client.submit({"algorithm": "nope", "n": 2,
                                         "scripts": {"0": ["a"]}})
                # the connection survives every rejected request
                assert (await client.ping())["pong"] is True
            await service.shutdown()

        asyncio.run(main())

    def test_request_ids_echoed(self):
        async def main():
            service, host, port = await started_service()
            async with ServiceClient(host, port) as client:
                reply = await client.request("ping", id="req-42")
                assert reply["id"] == "req-42"
            await service.shutdown()

        asyncio.run(main())

    def test_malformed_frame_rejected_connection_survives(self):
        async def main():
            service, host, port = await started_service()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"this is not json\n")
            await writer.drain()
            line = await reader.readline()
            assert b'"ok":false' in line
            writer.write(b'{"op":"ping"}\n')
            await writer.drain()
            line = await reader.readline()
            assert b'"pong":true' in line
            writer.close()
            await writer.wait_closed()
            await service.shutdown()

        asyncio.run(main())

    def test_shutdown_refuses_new_submissions(self):
        async def main():
            service, host, port = await started_service()
            runner = asyncio.create_task(service.run_until_shutdown())
            async with ServiceClient(host, port) as client:
                await client.shutdown()
            await runner
            with pytest.raises(RuntimeError):
                service.manager.submit(JobDescriptor.from_json(tiny("z")))

        asyncio.run(main())

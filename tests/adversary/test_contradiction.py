"""Tests for the Lemma 9 construction and the Theorem 1 pipeline."""

import pytest

from repro.adversary import run_theorem_pipeline
from repro.agreement import FirstDeliveredClient, run_solo
from repro.broadcasts import (
    FirstKKsaBroadcast,
    KboAttemptBroadcast,
    TrivialKsaBroadcast,
)
from repro.specs import (
    FirstKBroadcastSpec,
    KboBroadcastSpec,
    SendToAllSpec,
)


def pipeline(k=2, algorithm=FirstKKsaBroadcast, spec=None, **kwargs):
    return run_theorem_pipeline(
        k,
        lambda pid, n: algorithm(pid, n),
        candidate_spec=spec,
        **kwargs,
    )


class TestSoloRuns:
    def test_first_delivered_client_decides_after_one_delivery(self):
        solo = run_solo(FirstDeliveredClient, 0, 3, proposal=0)
        assert solo.decision == 0
        assert solo.n_i == 1
        assert all(m.sender == 0 for m in solo.messages)

    def test_n_defaults_to_max_n_i(self):
        result = pipeline()
        assert result.n_value == max(
            1, *(s.n_i for s in result.solo_runs.values())
        )

    def test_n_override(self):
        result = pipeline(n_value=3)
        assert result.n_value == 3
        assert result.adversary.n_value == 3


@pytest.mark.parametrize("k", [2, 3, 4])
class TestContradiction:
    def test_exactly_k_plus_one_decisions_on_delta(self, k):
        result = pipeline(k=k)
        assert sorted(result.decisions) == list(range(k + 1))
        assert result.distinct_decisions == k + 1
        assert result.agreement_violated

    def test_delta_is_indistinguishable_from_solo_runs(self, k):
        result = pipeline(k=k)
        for i, solo in result.solo_runs.items():
            delta_contents = [
                m.content
                for m in result.delta.deliveries_of(i)
            ][: solo.n_i]
            solo_contents = [m.content for m in solo.messages]
            assert delta_contents == solo_contents


class TestHypothesisLocalization:
    def test_first_k_fails_compositionality(self):
        result = pipeline(spec=FirstKBroadcastSpec(2))
        assert "compositionality" in result.failing_hypothesis
        assert result.beta_verdict.admitted
        assert not result.gamma_verdict.admitted

    def test_kbo_fails_equivalence(self):
        result = pipeline(
            algorithm=KboAttemptBroadcast, spec=KboBroadcastSpec(2)
        )
        assert "equivalence" in result.failing_hypothesis
        assert result.delta_verdict.admitted

    def test_send_to_all_fails_equivalence(self):
        result = pipeline(
            algorithm=TrivialKsaBroadcast, spec=SendToAllSpec()
        )
        assert "equivalence" in result.failing_hypothesis

    def test_no_spec_supplied(self):
        result = pipeline(spec=None)
        assert result.failing_hypothesis == "no specification supplied"


class TestRenamingStructure:
    def test_renaming_covers_selected_messages_only(self):
        result = pipeline()
        selected = {
            uid
            for i in range(result.n)
            for uid in result.adversary.witness.chosen[i][
                : result.solo_runs[i].n_i
            ]
        }
        assert set(result.renaming.mapping) == selected

    def test_gamma_contains_only_witness_messages(self):
        result = pipeline(k=3)
        witness_uids = set(result.renaming.mapping)
        for message in result.gamma.broadcast_messages:
            assert message.uid in witness_uids

    def test_summary_renders(self):
        text = pipeline(spec=FirstKBroadcastSpec(2)).summary()
        assert "Theorem 1" in text
        assert "VIOLATED" in text

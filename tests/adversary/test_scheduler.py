"""Tests for Algorithm 1: the adversarial scheduler and Definition 4."""

import pytest

from repro.adversary import (
    SYNCH,
    AdversaryStalled,
    adversarial_scheduler,
    check_all_lemmas,
)
from repro.broadcasts import (
    FirstKKsaBroadcast,
    KboAttemptBroadcast,
    TrivialKsaBroadcast,
)
from repro.core import check_channels, check_ksa, verify_witness
from repro.runtime import BroadcastProcess, Send, Wait

ALGORITHMS = {
    "trivial": TrivialKsaBroadcast,
    "first-k": FirstKKsaBroadcast,
    "kbo": KboAttemptBroadcast,
}


def adversary(name="first-k", k=2, n_value=2, **kwargs):
    algorithm_class = ALGORITHMS[name]
    return adversarial_scheduler(
        k, n_value, lambda pid, n: algorithm_class(pid, n), **kwargs
    )


class TestParameterValidation:
    def test_k_must_exceed_one(self):
        with pytest.raises(ValueError, match="k > 1"):
            adversary(k=1)

    def test_n_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            adversary(n_value=0)


@pytest.mark.parametrize("name", list(ALGORITHMS))
@pytest.mark.parametrize("k,n_value", [(2, 1), (2, 3), (3, 2), (4, 2)])
class TestAdmissibility:
    def test_alpha_is_admissible(self, name, k, n_value):
        result = adversary(name, k, n_value)
        assert result.execution.check_well_formed() == []
        assert check_channels(result.execution).ok
        assert check_ksa(result.execution, k).ok

    def test_beta_is_n_solo(self, name, k, n_value):
        result = adversary(name, k, n_value)
        assert (
            verify_witness(
                result.beta, result.witness, list(range(k + 1))
            )
            == []
        )

    def test_all_lemmas_hold(self, name, k, n_value):
        reports = check_all_lemmas(adversary(name, k, n_value))
        failing = [str(r) for r in reports if not r.ok]
        assert failing == []


class TestWitnessStructure:
    def test_witness_has_n_messages_per_process(self):
        result = adversary("first-k", k=3, n_value=4)
        for p in range(4):
            assert len(result.witness.chosen[p]) == 4

    def test_witness_messages_carry_synch_content(self):
        result = adversary("trivial", k=2, n_value=2)
        for uids in result.witness.chosen.values():
            for uid in uids:
                message = result.execution.message_by_uid[uid]
                assert message.content == SYNCH

    def test_witness_messages_delivered_only_locally(self):
        result = adversary("trivial", k=2, n_value=2)
        sequences = result.beta.delivery_sequences
        for owner, uids in result.witness.chosen.items():
            for p, sequence in sequences.items():
                if p != owner:
                    assert all(
                        m.uid not in uids for m in sequence
                    )


class TestResetMechanics:
    def test_trivial_algorithm_never_resets(self):
        assert adversary("trivial", k=2, n_value=3).reset_marks == ()

    def test_shared_object_forces_exactly_one_reset(self):
        assert len(adversary("first-k", k=3, n_value=2).reset_marks) == 1

    def test_round_based_resets_scale_with_n(self):
        few = adversary("kbo", k=2, n_value=1)
        many = adversary("kbo", k=2, n_value=4)
        assert len(many.reset_marks) > len(few.reset_marks)

    def test_forced_decision_on_shared_object(self):
        result = adversary("first-k", k=2, n_value=1)
        per_object = result.decided["first"]
        assert per_object[2] == per_object[1]  # p_{k+1} copies p_k


class TestGammaExecutions:
    def test_gamma_contains_only_pi_and_anchor(self):
        result = adversary("first-k", k=3, n_value=2)
        anchor = result.k - 1
        for i in range(result.n):
            gamma = result.gamma(i)
            actors = {
                s.process for s in gamma if not s.is_crash()
            }
            assert actors <= {i, anchor}

    def test_gamma_steps_are_a_subsequence_of_alpha(self):
        result = adversary("kbo", k=2, n_value=2)
        alpha_steps = list(result.execution)
        for i in range(result.n):
            remaining = iter(alpha_steps)
            for step in result.gamma(i):
                if step.is_crash():
                    continue
                assert any(step == other for other in remaining), (
                    f"γ_{i} step {step} out of order"
                )

    def test_gamma_of_last_process_crashes_anchor(self):
        result = adversary("first-k", k=2, n_value=1)
        gamma = result.gamma(result.n - 1)
        anchor = result.k - 1
        assert anchor in gamma.crashed

    def test_gamma_is_well_formed(self):
        result = adversary("first-k", k=2, n_value=2)
        for i in range(result.n):
            assert result.gamma(i).check_well_formed() == []


class TestStallingCandidates:
    def test_waiting_for_others_is_diagnosed(self):
        class NeedsAck(BroadcastProcess):
            """Waits for an ack no one will send under the adversary."""

            def __init__(self, pid, n):
                super().__init__(pid, n)
                self.acks = 0

            def on_broadcast(self, message):
                yield from self.send_to_all(message)
                yield Wait(lambda: self.acks >= self.n - 1, "quorum")

            def on_receive(self, payload, sender):
                self.acks += 1
                return
                yield

        with pytest.raises(AdversaryStalled, match="termination"):
            adversarial_scheduler(
                2, 1, lambda pid, n: NeedsAck(pid, n)
            )

    def test_step_budget_guards_against_nontermination(self):
        class Chatty(BroadcastProcess):
            """Sends forever and never delivers."""

            def on_broadcast(self, message):
                while True:
                    yield Send((self.pid + 1) % self.n, message)

            def on_receive(self, payload, sender):
                return
                yield

        with pytest.raises(AdversaryStalled, match="terminate"):
            adversarial_scheduler(
                2, 1, lambda pid, n: Chatty(pid, n),
                max_steps_per_process=500,
            )


class TestContinuation:
    def test_continuation_mark_set_only_when_requested(self):
        assert adversary("first-k").continuation_mark is None
        extended = adversary("first-k", continue_after_flush=True)
        assert extended.continuation_mark is not None
        assert extended.continuation_mark <= len(extended.execution)

    def test_continuation_preserves_admissibility(self):
        result = adversary("kbo", k=2, n_value=2,
                           continue_after_flush=True)
        assert result.execution.check_well_formed() == []
        assert check_channels(result.execution).ok
        assert check_ksa(result.execution, 2).ok

    def test_continuation_still_n_solo(self):
        result = adversary("kbo", k=2, n_value=2,
                           continue_after_flush=True)
        assert (
            verify_witness(result.beta, result.witness, [0, 1, 2]) == []
        )

    def test_continuation_materializes_kbo_violation(self):
        from repro.core.order import kbo_violation_witness

        result = adversary("kbo", k=2, n_value=1,
                           continue_after_flush=True)
        assert kbo_violation_witness(result.beta, 2) is not None


class TestResultRendering:
    def test_str_mentions_parameters(self):
        text = str(adversary("first-k", k=2, n_value=3))
        assert "k=2" in text and "N=3" in text

"""Property-based tests: the adversary's guarantees over random inputs.

Hypothesis draws (k, N, target implementation) combinations and checks
that the invariants the paper proves — admissibility of α (Lemmas 1–8),
the N-solo property of β (Lemma 10), witness shape, determinism — hold
on every draw, not just the hand-picked grid.
"""

from hypothesis import given, settings, strategies as st

from repro.adversary import adversarial_scheduler, check_all_lemmas
from repro.agreement import FirstDeliveredClient, MultiRoundClient
from repro.adversary import run_theorem_pipeline
from repro.broadcasts import (
    FirstKKsaBroadcast,
    KboAttemptBroadcast,
    TrivialKsaBroadcast,
)
from repro.core import verify_witness

ALGORITHMS = [TrivialKsaBroadcast, FirstKKsaBroadcast, KboAttemptBroadcast]

parameters = st.tuples(
    st.integers(2, 5),           # k
    st.integers(1, 5),           # N
    st.sampled_from(ALGORITHMS),
)


@given(parameters)
@settings(max_examples=30, deadline=None)
def test_all_lemmas_hold_on_random_parameters(params):
    k, n_value, algorithm_class = params
    result = adversarial_scheduler(
        k, n_value, lambda pid, n: algorithm_class(pid, n)
    )
    assert all(report.ok for report in check_all_lemmas(result))


@given(parameters)
@settings(max_examples=30, deadline=None)
def test_witness_always_verifies(params):
    k, n_value, algorithm_class = params
    result = adversarial_scheduler(
        k, n_value, lambda pid, n: algorithm_class(pid, n)
    )
    assert (
        verify_witness(result.beta, result.witness, list(range(k + 1)))
        == []
    )
    assert all(
        len(uids) == n_value for uids in result.witness.chosen.values()
    )


@given(parameters)
@settings(max_examples=15, deadline=None)
def test_adversary_is_deterministic(params):
    k, n_value, algorithm_class = params
    first = adversarial_scheduler(
        k, n_value, lambda pid, n: algorithm_class(pid, n)
    )
    second = adversarial_scheduler(
        k, n_value, lambda pid, n: algorithm_class(pid, n)
    )
    assert first.execution == second.execution
    assert first.reset_marks == second.reset_marks


@given(
    st.integers(2, 4),
    st.sampled_from(ALGORITHMS),
    st.sampled_from([FirstDeliveredClient, MultiRoundClient]),
)
@settings(max_examples=20, deadline=None)
def test_pipeline_always_realizes_the_contradiction(
    k, algorithm_class, client_factory
):
    result = run_theorem_pipeline(
        k,
        lambda pid, n: algorithm_class(pid, n),
        client_factory=client_factory,
    )
    assert result.distinct_decisions == k + 1
    assert result.agreement_violated

"""Golden-trace regression test for the Figure 1 execution.

The adversarial scheduler is fully deterministic, so the execution behind
the Figure 1 reproduction (k = 3, N = 2, First-k target) is a stable
artifact.  The golden JSON trace pins it: any behavioral drift in the
scheduler, the step machine, the First-k implementation or the k-SA
bookkeeping shows up as a diff here before it shows up anywhere subtler.

Regenerate (after an *intentional* change) with::

    python - <<'PY'
    from repro.adversary import adversarial_scheduler
    from repro.broadcasts import FirstKKsaBroadcast
    from repro.core.serialize import dumps
    result = adversarial_scheduler(3, 2, lambda p, n: FirstKKsaBroadcast(p, n))
    open('tests/data/figure1_golden.json', 'w').write(
        dumps(result.execution, indent=1))
    PY
"""

from pathlib import Path

from repro.adversary import adversarial_scheduler
from repro.broadcasts import FirstKKsaBroadcast
from repro.core.serialize import dumps, loads

GOLDEN = Path(__file__).parent.parent / "data" / "figure1_golden.json"


def regenerate():
    return adversarial_scheduler(
        3, 2, lambda pid, n: FirstKKsaBroadcast(pid, n)
    )


class TestGoldenTrace:
    def test_execution_matches_golden(self):
        result = regenerate()
        golden = loads(GOLDEN.read_text())
        assert result.execution == golden, (
            "the Figure 1 execution changed — if intentional, regenerate "
            "the golden file (see module docstring)"
        )

    def test_serialized_form_is_stable(self):
        result = regenerate()
        assert dumps(result.execution, indent=1) == GOLDEN.read_text()

    def test_golden_structure_sanity(self):
        golden = loads(GOLDEN.read_text())
        assert golden.n == 4
        assert len(golden) == 109
        assert len(golden.broadcast_messages) == 9

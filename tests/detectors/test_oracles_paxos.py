"""Tests for the failure-detector oracles and Paxos over Ω."""

import pytest

from repro.agreement import PaxosProcess
from repro.agreement.paxos import Ballot
from repro.detectors import Clock, OmegaOracle, PerfectDetector
from repro.registers import ServiceSimulator
from repro.runtime import CrashSchedule
from repro.runtime.service import Invocation


class TestClock:
    def test_tick(self):
        clock = Clock()
        assert clock.now == 0
        clock.tick(42)
        assert clock.now == 42


class TestOmega:
    def make(self, crash=None, stabilize=100, n=4):
        clock = Clock()
        crash = crash or CrashSchedule.none()
        return clock, OmegaOracle(
            n, crash, clock, stabilize_at=stabilize, rotation_period=5
        )

    def test_stabilizes_to_least_correct(self):
        clock, omega = self.make(crash=CrashSchedule({0: 10}))
        clock.tick(100)
        assert omega.leader() == 1

    def test_rotates_before_stabilization(self):
        clock, omega = self.make()
        leaders = set()
        for now in range(0, 40, 5):
            clock.tick(now)
            leaders.add(omega.leader())
        assert len(leaders) > 1

    def test_never_elects_a_dead_process(self):
        clock, omega = self.make(crash=CrashSchedule({2: 0}))
        for now in range(0, 60, 3):
            clock.tick(now)
            assert omega.leader() != 2

    def test_stable_forever_after(self):
        clock, omega = self.make()
        outputs = set()
        for now in range(100, 200, 13):
            clock.tick(now)
            outputs.add(omega.leader())
        assert outputs == {0}


class TestPerfectDetector:
    def test_never_suspects_live_processes(self):
        clock = Clock()
        detector = PerfectDetector(
            3, CrashSchedule({2: 50}), clock, lag=10
        )
        clock.tick(30)
        assert detector.suspected() == frozenset()
        assert detector.trusted() == {0, 1, 2}

    def test_eventually_suspects_crashed(self):
        clock = Clock()
        detector = PerfectDetector(
            3, CrashSchedule({2: 50}, initially=frozenset({1})), clock,
            lag=10,
        )
        clock.tick(61)
        assert detector.suspected() == {1, 2}


class TestBallot:
    def test_total_order(self):
        assert Ballot(0, 3) < Ballot(1, 0)
        assert Ballot(1, 0) < Ballot(1, 2)


def paxos_run(seed, *, n=5, crash=None, stabilize=0,
              proposers=None, instance="c", stable_leader=None):
    crash = crash or CrashSchedule.none()
    clock = Clock()
    omega = OmegaOracle(
        n, crash, clock, stabilize_at=stabilize,
        stable_leader=stable_leader,
    )
    simulator = ServiceSimulator(
        n,
        lambda pid, size: PaxosProcess(pid, size, omega),
        seed=seed,
        clock=clock,
    )
    participants = proposers if proposers is not None else range(n)
    run = simulator.run(
        {
            p: [Invocation("propose", instance, f"v{p}")]
            for p in participants
        },
        crash_schedule=crash,
        max_steps=60_000,
    )
    decisions = {
        record.process: record.result
        for record in run.history.complete()
    }
    return run, decisions


class TestPaxos:
    @pytest.mark.parametrize("seed", range(5))
    def test_consensus_failure_free(self, seed):
        run, decisions = paxos_run(seed)
        assert run.quiescent and not run.blocked
        assert len(decisions) == 5
        assert len(set(decisions.values())) == 1
        assert set(decisions.values()) <= {f"v{p}" for p in range(5)}

    def test_survives_leader_crash(self):
        run, decisions = paxos_run(
            1, crash=CrashSchedule({0: 40}), stabilize=120
        )
        assert not run.blocked
        assert set(decisions) >= {1, 2, 3, 4}
        assert len(set(decisions.values())) == 1

    @pytest.mark.parametrize("seed", range(3))
    def test_safety_under_unstable_omega(self, seed):
        run, decisions = paxos_run(seed, stabilize=250)
        assert len(set(decisions.values())) <= 1

    def test_single_proposer_decides_own_value(self):
        # Ω must point at the lone proposer — ballots are leader-driven
        run, decisions = paxos_run(2, proposers=[3], stable_leader=3)
        assert decisions[3] == "v3"

    def test_non_leading_lone_proposer_waits(self):
        # with Ω stuck on a non-proposer, the lone proposer cannot make
        # progress — it parks on the leadership guard (no safety issue)
        run, decisions = paxos_run(2, proposers=[3], stable_leader=0)
        assert decisions == {}
        assert 3 in run.blocked
        assert "leadership" in run.blocked[3]

    def test_omega_rejects_faulty_stable_leader(self):
        clock = Clock()
        with pytest.raises(ValueError, match="faulty"):
            OmegaOracle(
                3, CrashSchedule({1: 5}), clock, stable_leader=1
            )

    def test_minority_crash_does_not_block(self):
        run, decisions = paxos_run(
            4, crash=CrashSchedule({4: 10, 3: 20})
        )
        assert not run.blocked
        assert set(decisions) >= {0, 1, 2}
        assert len(set(decisions.values())) == 1

    def test_independent_instances(self):
        crash = CrashSchedule.none()
        clock = Clock()
        omega = OmegaOracle(4, crash, clock)
        simulator = ServiceSimulator(
            4,
            lambda pid, size: PaxosProcess(pid, size, omega),
            seed=5,
            clock=clock,
        )
        run = simulator.run(
            {
                p: [
                    Invocation("propose", "a", f"a{p}"),
                    Invocation("propose", "b", f"b{p}"),
                ]
                for p in range(4)
            },
            max_steps=80_000,
        )
        per_instance: dict[str, set] = {"a": set(), "b": set()}
        for record in run.history.complete():
            per_instance[record.target].add(record.result)
        assert len(per_instance["a"]) == 1
        assert len(per_instance["b"]) == 1

    def test_unknown_operation_rejected(self):
        clock = Clock()
        omega = OmegaOracle(3, CrashSchedule.none(), clock)
        process = PaxosProcess(0, 3, omega)
        with pytest.raises(ValueError, match="unknown operation"):
            list(process.on_invoke(Invocation("read", "c")))

"""The application layer makes the abstraction hierarchy observable."""

import pytest

from repro.apps import (
    apply_command,
    apply_increment,
    counter_value,
    logs_prefix_related,
    orphaned_replies,
    replay_counter,
    replay_kv_store,
)
from repro.broadcasts import (
    CausalBroadcast,
    SendToAllBroadcast,
    TotalOrderBroadcast,
    UniformReliableBroadcast,
)
from repro.runtime import CrashSchedule, Gated, Simulator, TargetedDelayPolicy


def simulate(algorithm_class, scripts, *, n=3, seed=0, k=1, policy=None,
             crash_schedule=None):
    simulator = Simulator(
        n,
        lambda pid, size: algorithm_class(pid, size),
        k=k,
        seed=seed,
        scheduling_policy=policy,
    )
    return simulator.run(scripts, crash_schedule=crash_schedule)


KV_SCRIPTS = {
    0: [("put", "x", 1), ("inc", "y", 2)],
    1: [("put", "x", 7), ("del", "x")],
    2: [("inc", "y", 5)],
}


class TestKvStoreReducer:
    def test_put_inc_del(self):
        state = frozenset()
        state = apply_command(state, ("put", "x", 1))
        state = apply_command(state, ("inc", "y", 2))
        state = apply_command(state, ("inc", "y", 3))
        state = apply_command(state, ("del", "x"))
        assert dict(state) == {"y": 5}

    def test_unknown_command_rejected(self):
        with pytest.raises(ValueError):
            apply_command(frozenset(), ("swap", "x"))


class TestSmrOverTotalOrder:
    @pytest.mark.parametrize("seed", range(4))
    def test_replicas_converge(self, seed):
        result = simulate(TotalOrderBroadcast, KV_SCRIPTS, seed=seed)
        states = replay_kv_store(result)
        assert states.converged()
        assert logs_prefix_related(states)
        assert states.divergent_pairs() == []

    def test_convergence_with_crash(self):
        result = simulate(
            TotalOrderBroadcast,
            KV_SCRIPTS,
            seed=1,
            crash_schedule=CrashSchedule({2: 12}),
        )
        assert replay_kv_store(result).converged()


class TestSmrOverWeakBroadcast:
    def test_send_to_all_diverges_on_conflicts(self):
        diverged = False
        for seed in range(10):
            result = simulate(SendToAllBroadcast, KV_SCRIPTS, seed=seed)
            states = replay_kv_store(result)
            if not states.converged():
                diverged = True
                assert states.divergent_pairs()
                break
        assert diverged, (
            "conflicting puts should diverge under some schedule"
        )


class TestCounterCrdt:
    @pytest.mark.parametrize("seed", range(4))
    def test_converges_over_send_to_all(self, seed):
        scripts = {
            p: [("inc", p, amount) for amount in (1, 2)]
            for p in range(3)
        }
        result = simulate(SendToAllBroadcast, scripts, seed=seed)
        states = replay_counter(result)
        assert states.converged()
        final = states.states[0]
        assert counter_value(final) == 9  # 3 processes x (1 + 2)

    def test_commutativity_is_the_reason(self):
        state_a = apply_increment(
            apply_increment(frozenset(), ("inc", 0, 1)), ("inc", 1, 5)
        )
        state_b = apply_increment(
            apply_increment(frozenset(), ("inc", 1, 5)), ("inc", 0, 1)
        )
        assert state_a == state_b


class TestChat:
    CHAT = {
        0: [("msg", 0, "anyone up?", None)],
        1: [
            Gated(
                ("msg", 1, "yes — reading PODC papers", "anyone up?"),
                after=("msg", 0, "anyone up?", None),
            )
        ],
        2: [],
    }

    @pytest.mark.parametrize("seed", range(4))
    def test_no_orphans_over_causal_broadcast(self, seed):
        result = simulate(
            CausalBroadcast,
            self.CHAT,
            seed=seed,
            policy=TargetedDelayPolicy(victim=2, until_step=60),
        )
        assert orphaned_replies(result) == []

    def test_send_to_all_shows_orphans_under_partition(self):
        orphaned = False
        for seed in range(10):
            result = simulate(
                SendToAllBroadcast,
                self.CHAT,
                seed=seed,
                policy=TargetedDelayPolicy(victim=2, until_step=60),
            )
            if orphaned_replies(result):
                orphaned = True
                break
        assert orphaned

    def test_uniform_reliable_is_not_enough_either(self):
        orphaned = False
        for seed in range(10):
            result = simulate(
                UniformReliableBroadcast,
                self.CHAT,
                seed=seed,
                policy=TargetedDelayPolicy(victim=2, until_step=80),
            )
            if orphaned_replies(result):
                orphaned = True
                break
        assert orphaned

"""Integration tests: every broadcast algorithm against its specification.

Each algorithm is run on the free simulator across several seeds, with and
without crashes, and its recorded trace is checked against its intended
specification plus the channel axioms — the library's equivalent of a
conformance suite.
"""

import pytest

from repro.broadcasts import (
    CausalBroadcast,
    FifoBroadcast,
    FirstKKsaBroadcast,
    KboAttemptBroadcast,
    SendToAllBroadcast,
    TotalOrderBroadcast,
    TrivialKsaBroadcast,
    UniformReliableBroadcast,
)
from repro.core import check_channels
from repro.runtime import CrashSchedule, Simulator
from repro.specs import (
    CausalBroadcastSpec,
    FifoBroadcastSpec,
    FirstKBroadcastSpec,
    SendToAllSpec,
    TotalOrderBroadcastSpec,
    UniformReliableBroadcastSpec,
)

SEEDS = (0, 1, 2, 3)


def run(algorithm_class, *, n=4, seed=0, k=1, per_process=2,
        crash_schedule=None):
    simulator = Simulator(
        n, lambda pid, size: algorithm_class(pid, size), k=k, seed=seed
    )
    scripts = {
        p: [f"m{p}.{i}" for i in range(per_process)] for p in range(n)
    }
    return simulator.run(scripts, crash_schedule=crash_schedule)


CONFORMANCE = [
    (SendToAllBroadcast, SendToAllSpec(), 1),
    (UniformReliableBroadcast, UniformReliableBroadcastSpec(), 1),
    (FifoBroadcast, FifoBroadcastSpec(), 1),
    (CausalBroadcast, CausalBroadcastSpec(), 1),
    (TotalOrderBroadcast, TotalOrderBroadcastSpec(), 1),
    (TrivialKsaBroadcast, UniformReliableBroadcastSpec(), 2),
    (FirstKKsaBroadcast, FirstKBroadcastSpec(2), 2),
]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "algorithm_class,spec,k",
    CONFORMANCE,
    ids=[c[0].__name__ for c in CONFORMANCE],
)
def test_failure_free_conformance(algorithm_class, spec, k, seed):
    result = run(algorithm_class, seed=seed, k=k)
    assert result.quiescent, result.blocked
    assert check_channels(result.execution).ok
    verdict = spec.admits(result.execution.broadcast_projection())
    assert verdict.admitted, verdict.all_violations()[:3]


@pytest.mark.parametrize("seed", SEEDS[:2])
@pytest.mark.parametrize(
    "algorithm_class,spec,k",
    CONFORMANCE,
    ids=[c[0].__name__ for c in CONFORMANCE],
)
def test_crash_prone_conformance(algorithm_class, spec, k, seed):
    result = run(
        algorithm_class,
        seed=seed,
        k=k,
        crash_schedule=CrashSchedule({3: 15}),
    )
    assert check_channels(result.execution).ok
    verdict = spec.admits(result.execution.broadcast_projection())
    assert verdict.admitted, verdict.all_violations()[:3]


class TestUniformReliableSpecifics:
    def test_delivered_by_faulty_reaches_all_correct(self):
        # crash p0 right after it has had time to deliver its own message
        result = run(
            UniformReliableBroadcast,
            seed=7,
            crash_schedule=CrashSchedule({0: 30}),
        )
        delivered_by_faulty = {
            m.uid for m in result.deliveries(0)
        }
        for p in sorted(result.execution.correct):
            delivered = {m.uid for m in result.deliveries(p)}
            assert delivered_by_faulty <= delivered


class TestTotalOrderSpecifics:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_logs_are_prefix_related(self, seed):
        result = run(TotalOrderBroadcast, seed=seed)
        logs = [
            [m.uid for m in result.deliveries(p)] for p in range(4)
        ]
        reference = max(logs, key=len)
        for log in logs:
            assert log == reference[: len(log)]


class TestSendToAllIsWeak:
    def test_some_seed_violates_total_order(self):
        violated = False
        for seed in range(10):
            result = run(SendToAllBroadcast, seed=seed, per_process=3)
            verdict = TotalOrderBroadcastSpec().admits(
                result.execution.broadcast_projection(),
                assume_complete=False,
            )
            if not verdict.admitted:
                violated = True
                break
        assert violated, "send-to-all should not provide total order"


class TestFirstKSpecifics:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_first_deliveries_bounded_by_k(self, k):
        result = run(FirstKKsaBroadcast, seed=5, k=k)
        heads = {
            result.execution.first_delivered(p).uid for p in range(4)
        }
        assert len(heads) <= k


class TestKboAttemptSpecifics:
    def test_violates_kbo_under_some_schedule(self):
        from repro.specs import KboBroadcastSpec

        violated = False
        for seed in range(12):
            result = run(KboAttemptBroadcast, seed=seed, k=2, per_process=3)
            verdict = KboBroadcastSpec(2).admits(
                result.execution.broadcast_projection(),
                assume_complete=False,
            )
            if not verdict.admitted:
                violated = True
                break
        assert violated, (
            "the k-BO attempt should fail its ordering under some schedule "
            "(the paper's corollary)"
        )

"""Conformance tests for the SCD Broadcast implementation."""

import pytest

from repro.broadcasts import ScdBroadcast
from repro.core import check_channels
from repro.runtime import CrashSchedule, Simulator
from repro.specs import (
    KScdBroadcastSpec,
    ScdBroadcastSpec,
    UniformReliableBroadcastSpec,
)


def run(*, n=4, seed=0, per_process=3, crash_schedule=None):
    simulator = Simulator(
        n, lambda pid, size: ScdBroadcast(pid, size), k=1, seed=seed
    )
    scripts = {
        p: [f"m{p}.{i}" for i in range(per_process)] for p in range(n)
    }
    return simulator.run(scripts, crash_schedule=crash_schedule)


@pytest.mark.parametrize("seed", range(5))
def test_satisfies_ms_ordering(seed):
    result = run(seed=seed)
    assert result.quiescent
    beta = result.execution.broadcast_projection()
    assert ScdBroadcastSpec().admits(beta).admitted
    assert check_channels(result.execution).ok


@pytest.mark.parametrize("seed", range(3))
def test_satisfies_k_scd_for_all_k(seed):
    beta = run(seed=seed).execution.broadcast_projection()
    for k in (1, 2, 3):
        assert KScdBroadcastSpec(k).admits(beta).admitted


def test_also_uniform_reliable(seed=1):
    beta = run(seed=seed).execution.broadcast_projection()
    assert UniformReliableBroadcastSpec().admits(beta).admitted


def test_multi_message_sets_occur():
    sizes = set()
    for seed in range(20):
        beta = run(seed=seed).execution.broadcast_projection()
        for sets in beta.set_delivery_sequences.values():
            sizes.update(len(s) for s in sets)
    assert max(sizes) > 1, "batching should produce non-singleton sets"


def test_crash_prone_conformance():
    result = run(seed=2, crash_schedule=CrashSchedule({3: 20}))
    beta = result.execution.broadcast_projection()
    assert ScdBroadcastSpec().admits(beta).admitted
    assert check_channels(result.execution).ok


def test_set_sequences_are_prefix_consistent():
    """All processes deliver the same sequence of sets (round batches)."""
    result = run(seed=4)
    sequences = [
        tuple(
            tuple(m.uid for m in delivered_set)
            for delivered_set in result.execution
            .broadcast_projection()
            .set_delivery_sequences[p]
        )
        for p in range(4)
    ]
    reference = max(sequences, key=len)
    for sequence in sequences:
        assert sequence == reference[: len(sequence)]

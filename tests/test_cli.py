"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import COMMANDS, main


class TestCli:
    def test_figure1_with_arguments(self, capsys):
        assert main(["figure1", "2", "1", "trivial-ksa"]) == 0
        output = capsys.readouterr().out
        assert "Figure 1" in output
        assert "k=2" in output and "N=1" in output

    def test_costs_command(self, capsys):
        assert main(["costs"]) == 0
        assert "P4" in capsys.readouterr().out

    def test_boundaries_command(self, capsys):
        assert main(["boundaries"]) == 0
        assert "k = n" in capsys.readouterr().out

    def test_help(self, capsys):
        assert main(["--help"]) == 0
        output = capsys.readouterr().out
        assert "python -m repro" in output

    def test_unknown_command_fails(self, capsys):
        assert main(["frobnicate"]) == 1

    def test_all_commands_registered(self):
        assert set(COMMANDS) == {
            "figure1",
            "lemmas",
            "theorem",
            "symmetry",
            "registers",
            "boundaries",
            "costs",
        }

"""Unit tests for k-BO, k-Stepped, First-k and SA-tagged specifications."""

import pytest

from repro.specs import (
    FirstKBroadcastSpec,
    KboBroadcastSpec,
    KSteppedBroadcastSpec,
    SaTaggedBroadcastSpec,
    sa_content,
)
from repro.specs.witnesses import (
    first_k_agreed_execution,
    kstepped_paper_example,
    sa_typed_renaming,
    solo_first_execution,
)
from tests.conftest import ExecutionBuilder, complete_exchange


def rotating_deliveries(n: int):
    """n processes, n messages, delivery orders rotated per process."""
    b = ExecutionBuilder(n)
    labels = []
    for p in range(n):
        label = f"m{p}"
        b.broadcast(p, label)
        labels.append(label)
    for p in range(n):
        rotated = labels[p:] + labels[:p]
        b.deliver(p, *rotated)
    return b.build()


class TestKbo:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_total_order_satisfies_all_k(self, k):
        execution = complete_exchange(4)
        assert KboBroadcastSpec(k).admits(execution).admitted

    def test_rotating_violates_small_k(self):
        execution = rotating_deliveries(4)
        # four messages, every pair disagreeing → clique of 4
        assert not KboBroadcastSpec(2).admits(execution).admitted
        assert not KboBroadcastSpec(3).admits(execution).admitted
        assert KboBroadcastSpec(4).admits(execution).admitted

    def test_k1_equals_total_order(self):
        from repro.specs import TotalOrderBroadcastSpec

        for execution in (complete_exchange(3), rotating_deliveries(3)):
            assert (
                KboBroadcastSpec(1).admits(execution).admitted
                == TotalOrderBroadcastSpec().admits(execution).admitted
            )

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            KboBroadcastSpec(0)


class TestKStepped:
    def test_paper_example_admitted(self):
        execution, _ = kstepped_paper_example()
        assert KSteppedBroadcastSpec(1).admits(execution).admitted

    def test_paper_restriction_rejected(self):
        execution, subset = kstepped_paper_example()
        restricted = execution.restrict(subset)
        verdict = KSteppedBroadcastSpec(1).admits(restricted)
        assert not verdict.admitted
        assert any("round 0" in v for v in verdict.ordering)

    def test_per_round_bound(self):
        execution = rotating_deliveries(3)
        # round 0 = all three messages, three distinct firsts
        assert not KSteppedBroadcastSpec(2).admits(execution).admitted
        assert KSteppedBroadcastSpec(3).admits(execution).admitted

    def test_rounds_are_independent(self):
        b = ExecutionBuilder(2)
        b.broadcast(0, "a0")
        b.broadcast(1, "b0")
        b.broadcast(0, "a1")
        b.broadcast(1, "b1")
        # round 0 agrees on a0, round 1 agrees on a1
        b.deliver(0, "a0", "a1", "b0", "b1")
        b.deliver(1, "a0", "a1", "b0", "b1")
        assert KSteppedBroadcastSpec(1).admits(b.build()).admitted


class TestFirstK:
    def test_agreed_head_admitted(self):
        execution, _ = first_k_agreed_execution(4)
        assert FirstKBroadcastSpec(1).admits(execution).admitted

    def test_too_many_heads_rejected(self):
        execution = solo_first_execution(4)  # four distinct heads
        verdict = FirstKBroadcastSpec(3).admits(execution)
        assert not verdict.admitted
        assert any("delivered first" in v for v in verdict.ordering)

    def test_restriction_counterexample(self):
        execution, subset = first_k_agreed_execution(4)
        restricted = execution.restrict(subset)
        assert not FirstKBroadcastSpec(2).admits(restricted).admitted

    @pytest.mark.parametrize("k", [4, 5])
    def test_large_k_admits_solo_heads(self, k):
        assert FirstKBroadcastSpec(k).admits(
            solo_first_execution(4)
        ).admitted


class TestSaTagged:
    def test_plain_contents_vacuously_admitted(self):
        execution = solo_first_execution(4)
        assert SaTaggedBroadcastSpec(1).admits(execution).admitted

    def test_sa_typed_heads_bounded(self):
        b = ExecutionBuilder(3)
        for p in range(3):
            b.broadcast(p, f"m{p}", content=sa_content("obj", p))
        for p in range(3):
            rotated = [f"m{(p + i) % 3}" for i in range(3)]
            b.deliver(p, *rotated)
        verdict = SaTaggedBroadcastSpec(2).admits(b.build())
        assert not verdict.admitted
        assert any("obj" in v for v in verdict.ordering)

    def test_types_are_independent(self):
        b = ExecutionBuilder(2)
        b.broadcast(0, "x", content=sa_content("o1", 0))
        b.broadcast(1, "y", content=sa_content("o2", 1))
        b.deliver(0, "x", "y").deliver(1, "y", "x")
        assert SaTaggedBroadcastSpec(1).admits(b.build()).admitted

    def test_renaming_into_sa_typed_breaks(self):
        execution = solo_first_execution(4)
        renamed = execution.rename(sa_typed_renaming(execution))
        assert not SaTaggedBroadcastSpec(2).admits(renamed).admitted

    def test_sa_content_shape(self):
        assert sa_content("k", 3) == ("SA", "k", 3)

"""Unit tests for Mutual Broadcast and Pair Broadcast specifications."""

from repro.adversary import adversarial_scheduler
from repro.broadcasts import FirstKKsaBroadcast
from repro.specs import MutualBroadcastSpec, PairBroadcastSpec
from repro.specs.witnesses import solo_first_execution
from tests.conftest import ExecutionBuilder, complete_exchange


class TestMutual:
    def test_uniform_order_is_mutual(self):
        assert MutualBroadcastSpec().admits(complete_exchange(3)).admitted

    def test_own_first_on_both_sides_rejected(self):
        b = ExecutionBuilder(2)
        b.broadcast(0, "a")
        b.broadcast(1, "b")
        b.deliver(0, "a", "b").deliver(1, "b", "a")
        verdict = MutualBroadcastSpec().admits(b.build())
        assert not verdict.admitted
        assert any("not mutual" in v for v in verdict.ordering)

    def test_one_crossing_side_suffices(self):
        b = ExecutionBuilder(2)
        b.broadcast(0, "a")
        b.broadcast(1, "b")
        b.deliver(0, "b", "a")  # p0 sees p1's message first
        b.deliver(1, "b", "a")
        assert MutualBroadcastSpec().admits(b.build()).admitted

    def test_same_sender_pairs_unconstrained(self):
        b = ExecutionBuilder(2)
        b.broadcast(0, "a")
        b.broadcast(0, "b")
        b.deliver(0, "a", "b").deliver(1, "b", "a")
        assert MutualBroadcastSpec().admits(b.build()).admitted

    def test_undelivered_own_message_not_yet_a_violation(self):
        # safety reading: p0 has not delivered its own message yet, so
        # its half of the mutuality is still open
        b = ExecutionBuilder(2)
        b.broadcast(0, "a")
        b.broadcast(1, "b")
        b.deliver(1, "b")
        verdict = MutualBroadcastSpec().admits(
            b.build(), assume_complete=False
        )
        assert verdict.admitted

    def test_solo_first_execution_rejected(self):
        # the shape of the adversary's β: everyone sees its own first
        verdict = MutualBroadcastSpec().admits(
            solo_first_execution(3), assume_complete=False
        )
        assert not verdict.admitted

    def test_adversarial_beta_rejected_even_as_prefix(self):
        result = adversarial_scheduler(
            2, 1, lambda pid, n: FirstKKsaBroadcast(pid, n)
        )
        verdict = MutualBroadcastSpec().admits(
            result.beta, assume_complete=False
        )
        assert not verdict.admitted


class TestPair:
    def test_uniform_order_admitted(self):
        assert PairBroadcastSpec().admits(complete_exchange(3)).admitted

    def test_senders_disagreeing_on_their_pair_rejected(self):
        b = ExecutionBuilder(2)
        b.broadcast(0, "a")
        b.broadcast(1, "b")
        b.deliver(0, "a", "b").deliver(1, "b", "a")
        verdict = PairBroadcastSpec().admits(b.build())
        assert not verdict.admitted
        assert any("opposite orders" in v for v in verdict.ordering)

    def test_third_parties_may_disagree(self):
        # only the two *senders* are constrained
        b = ExecutionBuilder(3)
        b.broadcast(0, "a")
        b.broadcast(1, "b")
        b.deliver(0, "a", "b")
        b.deliver(1, "a", "b")  # senders agree
        b.deliver(2, "b", "a")  # p2 sees the opposite order: fine
        assert PairBroadcastSpec().admits(b.build()).admitted

    def test_completed_solo_execution_rejected(self):
        verdict = PairBroadcastSpec().admits(
            solo_first_execution(3), assume_complete=False
        )
        assert not verdict.admitted

    def test_completed_adversarial_run_rejected(self):
        result = adversarial_scheduler(
            2,
            1,
            lambda pid, n: FirstKKsaBroadcast(pid, n),
            continue_after_flush=True,
        )
        verdict = PairBroadcastSpec().admits(
            result.beta, assume_complete=False
        )
        assert not verdict.admitted

"""Metamorphic property tests over the specification catalogue.

For the abstractions the paper classifies as compositional and
content-neutral, hypothesis generates random broadcast-level executions
and verifies the defining closures directly:

* *compositionality* — if the execution is admitted (safety), so is its
  restriction to any random message subset;
* *content-neutrality* — the verdict is invariant under injective content
  renamings (in both directions: admitted stays admitted, rejected stays
  rejected, since renamings are invertible).

These complement the checker-based experiment S1 with closure evidence
over a much wilder execution family (random deliveries, partial
deliveries, duplicated contents).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Renaming
from repro.specs import (
    CausalBroadcastSpec,
    FifoBroadcastSpec,
    KboBroadcastSpec,
    MutualBroadcastSpec,
    PairBroadcastSpec,
    ScdBroadcastSpec,
    SendToAllSpec,
    TotalOrderBroadcastSpec,
)
from tests.core.test_execution_properties import (
    broadcast_executions,
    executions_with_subset,
)

SYMMETRIC_SPECS = [
    SendToAllSpec(),
    FifoBroadcastSpec(),
    CausalBroadcastSpec(),
    TotalOrderBroadcastSpec(),
    KboBroadcastSpec(2),
    MutualBroadcastSpec(),
    PairBroadcastSpec(),
    ScdBroadcastSpec(),
]

SPEC_IDS = [spec.name for spec in SYMMETRIC_SPECS]


@pytest.mark.parametrize("spec", SYMMETRIC_SPECS, ids=SPEC_IDS)
@given(case=executions_with_subset())
@settings(max_examples=40, deadline=None)
def test_safety_closed_under_restriction(spec, case):
    execution, subset = case
    if spec.admits(execution, assume_complete=False).admitted:
        restricted = execution.restrict(subset)
        verdict = spec.admits(restricted, assume_complete=False)
        assert verdict.admitted, (
            f"{spec.name} rejected a restriction: "
            f"{verdict.all_violations()[:2]}"
        )


@pytest.mark.parametrize("spec", SYMMETRIC_SPECS, ids=SPEC_IDS)
@given(execution=broadcast_executions())
@settings(max_examples=40, deadline=None)
def test_verdict_invariant_under_renaming(spec, execution):
    renaming = Renaming(
        {
            m.uid: ("fresh", index)
            for index, m in enumerate(execution.broadcast_messages)
        }
    )
    original = spec.admits(execution, assume_complete=False).admitted
    renamed = spec.admits(
        execution.rename(renaming), assume_complete=False
    ).admitted
    assert original == renamed

"""The hand-built worked examples must have exactly their claimed shape."""

from repro.core import check_base_properties
from repro.specs import FirstKBroadcastSpec, KSteppedBroadcastSpec
from repro.specs.witnesses import (
    first_k_agreed_execution,
    kstepped_paper_example,
    solo_first_execution,
)


class TestKSteppedExample:
    def test_delivery_orders_match_the_paper(self):
        execution, _ = kstepped_paper_example()
        p0 = [m.content for m in execution.deliveries_of(0)]
        p1 = [m.content for m in execution.deliveries_of(1)]
        assert p0 == ["m0", "m0'", "m1", "m1'"]
        assert p1 == ["m0", "m1", "m0'", "m1'"]

    def test_complete_and_well_formed(self):
        execution, _ = kstepped_paper_example()
        assert execution.check_well_formed() == []
        assert check_base_properties(execution).admitted

    def test_subset_is_the_papers(self):
        execution, subset = kstepped_paper_example()
        contents = {
            execution.message_by_uid[uid].content for uid in subset
        }
        assert contents == {"m0'", "m1"}


class TestFirstKExample:
    def test_single_head_before_restriction(self):
        execution, _ = first_k_agreed_execution(5)
        heads = {
            execution.first_delivered(p).uid for p in range(5)
        }
        assert len(heads) == 1

    def test_restriction_breaks_exactly_when_promised(self):
        n = 5  # use n = k + 2 with k = 3
        execution, subset = first_k_agreed_execution(n)
        restricted = execution.restrict(subset)
        assert not FirstKBroadcastSpec(n - 2).admits(restricted).admitted
        assert FirstKBroadcastSpec(n - 1).admits(restricted).admitted

    def test_complete(self):
        execution, _ = first_k_agreed_execution(4)
        assert check_base_properties(execution).admitted


class TestSoloFirst:
    def test_every_head_is_own_message(self):
        execution = solo_first_execution(4)
        for p in range(4):
            assert execution.first_delivered(p).sender == p

    def test_complete(self):
        assert check_base_properties(solo_first_execution(3)).admitted

"""Unit tests for FIFO, Causal and Total-Order specifications."""

import pytest

from repro.specs import (
    CausalBroadcastSpec,
    FifoBroadcastSpec,
    TotalOrderBroadcastSpec,
)
from tests.conftest import ExecutionBuilder, complete_exchange


class TestFifo:
    def test_in_order_admitted(self):
        b = ExecutionBuilder(2)
        b.broadcast(0, "a")
        b.broadcast(0, "b")
        b.deliver(0, "a", "b").deliver(1, "a", "b")
        assert FifoBroadcastSpec().admits(b.build()).admitted

    def test_inversion_rejected(self):
        b = ExecutionBuilder(2)
        b.broadcast(0, "a")
        b.broadcast(0, "b")
        b.deliver(0, "a", "b").deliver(1, "b", "a")
        verdict = FifoBroadcastSpec().admits(b.build())
        assert not verdict.admitted
        assert any("earlier" in v for v in verdict.ordering)

    def test_gap_is_a_safety_violation(self):
        b = ExecutionBuilder(2)
        b.broadcast(0, "a")
        b.broadcast(0, "b")
        b.deliver(0, "a", "b").deliver(1, "b")
        verdict = FifoBroadcastSpec().admits(b.build(), assume_complete=False)
        assert not verdict.safety_ok

    def test_cross_sender_orders_unconstrained(self):
        b = ExecutionBuilder(2)
        b.broadcast(0, "a")
        b.broadcast(1, "b")
        b.deliver(0, "a", "b").deliver(1, "b", "a")
        assert FifoBroadcastSpec().admits(b.build()).admitted


class TestCausal:
    def test_reply_before_cause_rejected(self):
        b = ExecutionBuilder(3)
        b.broadcast(0, "ask")
        b.deliver(0, "ask")
        b.deliver(1, "ask")
        b.broadcast(1, "reply")
        b.deliver(1, "reply")
        b.deliver(0, "reply")
        b.deliver(2, "reply", "ask")  # sees the reply first: violation
        verdict = CausalBroadcastSpec().admits(b.build())
        assert not verdict.admitted
        assert any("causal predecessor" in v for v in verdict.ordering)

    def test_causal_chain_respected_admitted(self):
        b = ExecutionBuilder(3)
        b.broadcast(0, "ask")
        b.deliver(0, "ask")
        b.deliver(1, "ask")
        b.broadcast(1, "reply")
        b.deliver(1, "reply")
        b.deliver(0, "reply")
        b.deliver(2, "ask", "reply")
        assert CausalBroadcastSpec().admits(b.build()).admitted

    def test_concurrent_messages_any_order(self):
        b = ExecutionBuilder(2)
        b.broadcast(0, "a")
        b.broadcast(1, "b")
        b.deliver(0, "a", "b").deliver(1, "b", "a")
        assert CausalBroadcastSpec().admits(b.build()).admitted

    def test_causal_implies_fifo(self):
        # same-sender inversion is also a causal violation
        b = ExecutionBuilder(2)
        b.broadcast(0, "a")
        b.broadcast(0, "b")
        b.deliver(0, "a", "b").deliver(1, "b", "a")
        assert not CausalBroadcastSpec().admits(b.build()).admitted


class TestTotalOrder:
    def test_uniform_order_admitted(self):
        assert TotalOrderBroadcastSpec().admits(
            complete_exchange(3, per_process=2)
        ).admitted

    def test_any_disagreement_rejected(self):
        b = ExecutionBuilder(2)
        b.broadcast(0, "a")
        b.broadcast(1, "b")
        b.deliver(0, "a", "b").deliver(1, "b", "a")
        verdict = TotalOrderBroadcastSpec().admits(b.build())
        assert not verdict.admitted
        assert any("different orders" in v for v in verdict.ordering)

    def test_disjoint_deliverers_are_fine(self):
        b = ExecutionBuilder(2)
        b.broadcast(0, "a")
        b.broadcast(1, "b")
        b.deliver(0, "a").deliver(1, "b")
        b.crash(0)
        b.crash(1)
        verdict = TotalOrderBroadcastSpec().admits(b.build())
        assert verdict.admitted

"""Unit tests for SCD / k-SCD and Generic Broadcast specifications."""

import pytest

from repro.core import Execution, MessageFactory, Step
from repro.core.actions import DeliverSetAction
from repro.specs import (
    GenericBroadcastSpec,
    KScdBroadcastSpec,
    ScdBroadcastSpec,
    command_content,
    commands_conflict,
    set_delivery_ranks,
)
from repro.specs.witnesses import (
    broadcast_steps,
    generic_conflict_renaming,
    solo_first_execution,
)
from tests.conftest import ExecutionBuilder, complete_exchange


def set_execution(n, orders):
    """Build an execution where process p delivers ``orders[p]``, a list
    of label-tuples (each tuple is one delivered set)."""
    factory = MessageFactory()
    messages = {}
    steps = []
    for p, sets in orders.items():
        for group in sets:
            for label in group:
                if label not in messages:
                    sender = int(label[1])
                    messages[label] = factory.new(sender, label)
    for label, message in messages.items():
        steps.extend(broadcast_steps(message.sender, message))
    for p, sets in orders.items():
        for group in sets:
            steps.append(
                Step(p, DeliverSetAction(tuple(messages[g] for g in group)))
            )
    return Execution.of(steps, n)


class TestSetDeliveryRanks:
    def test_members_of_one_set_share_a_rank(self):
        execution = set_execution(
            2,
            {0: [("m0", "m1")], 1: [("m0",), ("m1",)]},
        )
        ranks = set_delivery_ranks(execution)
        p0 = ranks[0]
        assert len(set(p0.values())) == 1
        p1 = ranks[1]
        assert len(set(p1.values())) == 2

    def test_single_deliveries_count_as_singleton_sets(self):
        execution = complete_exchange(2)
        ranks = set_delivery_ranks(execution)
        assert list(ranks[0].values()) == [0, 1]


class TestScdSpec:
    def test_identical_set_sequences_admitted(self):
        execution = set_execution(
            2,
            {0: [("m0", "m1")], 1: [("m0", "m1")]},
        )
        assert ScdBroadcastSpec().admits(execution).admitted

    def test_same_set_hides_the_order(self):
        # p0 sees {m0,m1} as one set; p1 sees m1 then m0: no *strict*
        # opposite orders, MS-Ordering holds
        execution = set_execution(
            2,
            {0: [("m0", "m1")], 1: [("m1",), ("m0",)]},
        )
        assert ScdBroadcastSpec().admits(execution).admitted

    def test_strictly_opposite_orders_rejected(self):
        execution = set_execution(
            2,
            {0: [("m0",), ("m1",)], 1: [("m1",), ("m0",)]},
        )
        verdict = ScdBroadcastSpec().admits(execution)
        assert not verdict.admitted
        assert any("MS-Ordering" in v for v in verdict.ordering)

    def test_name_is_scd_for_k1(self):
        assert ScdBroadcastSpec().name == "SCD Broadcast"


class TestKScdSpec:
    def test_k2_tolerates_one_disordered_pair(self):
        execution = set_execution(
            2,
            {0: [("m0",), ("m1",)], 1: [("m1",), ("m0",)]},
        )
        assert KScdBroadcastSpec(2).admits(execution).admitted

    def test_k2_rejects_a_disordered_triangle(self):
        execution = set_execution(
            3,
            {
                0: [("m0",), ("m1",), ("m2",)],
                1: [("m1",), ("m2",), ("m0",)],
                2: [("m2",), ("m0",), ("m1",)],
            },
        )
        verdict = KScdBroadcastSpec(2).admits(execution)
        assert not verdict.admitted
        assert any("pairwise" in v for v in verdict.ordering)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KScdBroadcastSpec(0)


class TestGenericHelpers:
    def test_conflict_rules(self):
        read_x = command_content("x", "r")
        write_x = command_content("x", "w")
        write_y = command_content("y", "w")
        assert not commands_conflict(read_x, read_x)
        assert commands_conflict(read_x, write_x)
        assert commands_conflict(write_x, write_x)
        assert not commands_conflict(write_x, write_y)
        assert not commands_conflict("plain", write_x)

    def test_bad_op_rejected(self):
        with pytest.raises(ValueError):
            command_content("x", "rw")


class TestGenericSpec:
    def build(self, c0, c1, same_order):
        b = ExecutionBuilder(2)
        b.broadcast(0, "a", content=c0)
        b.broadcast(1, "b", content=c1)
        b.deliver(0, "a", "b")
        if same_order:
            b.deliver(1, "a", "b")
        else:
            b.deliver(1, "b", "a")
        return b.build()

    def test_conflicting_disagreement_rejected(self):
        execution = self.build(
            command_content("x", "w"), command_content("x", "r"),
            same_order=False,
        )
        verdict = GenericBroadcastSpec().admits(execution)
        assert not verdict.admitted

    def test_commuting_disagreement_allowed(self):
        execution = self.build(
            command_content("x", "r"), command_content("x", "r"),
            same_order=False,
        )
        assert GenericBroadcastSpec().admits(execution).admitted

    def test_conflicting_agreement_admitted(self):
        execution = self.build(
            command_content("x", "w"), command_content("x", "w"),
            same_order=True,
        )
        assert GenericBroadcastSpec().admits(execution).admitted

    def test_non_command_messages_unconstrained(self):
        execution = self.build("plain-a", "plain-b", same_order=False)
        assert GenericBroadcastSpec().admits(execution).admitted

    def test_conflict_renaming_breaks_admissibility(self):
        execution = solo_first_execution(3)
        assert GenericBroadcastSpec().admits(execution).admitted
        renamed = execution.rename(generic_conflict_renaming(execution))
        assert not GenericBroadcastSpec().admits(renamed).admitted


class TestSetDeliveryCore:
    def test_projection_keeps_set_deliveries(self):
        execution = set_execution(2, {0: [("m0", "m1")]})
        beta = execution.broadcast_projection()
        assert any(s.is_deliver_set() for s in beta)

    def test_restriction_shrinks_sets_and_drops_empties(self):
        execution = set_execution(
            2, {0: [("m0", "m1")], 1: [("m0",), ("m1",)]}
        )
        keep = [m.uid for m in execution.broadcast_messages
                if m.content == "m0"]
        restricted = execution.restrict(keep)
        sets_p0 = restricted.set_delivery_sequences[0]
        assert [len(s) for s in sets_p0] == [1]
        assert len(restricted.deliveries_of(1)) == 1

    def test_rename_reaches_set_members(self):
        from repro.core import Renaming

        execution = set_execution(2, {0: [("m0", "m1")]})
        target = execution.broadcast_messages[0]
        renamed = execution.rename(Renaming({target.uid: "fresh"}))
        contents = {
            m.content
            for s in renamed.set_delivery_sequences[0]
            for m in s
        }
        assert "fresh" in contents

    def test_flat_sequences_flatten_sets_in_uid_order(self):
        execution = set_execution(2, {0: [("m1", "m0")]})
        flat = execution.deliveries_of(0)
        assert [m.content for m in flat] == ["m0", "m1"]

    def test_duplicate_inside_sets_flagged_by_base_checks(self):
        from repro.core import check_base_properties

        execution = set_execution(2, {0: [("m0",), ("m0",)]})
        verdict = check_base_properties(execution, assume_complete=False)
        assert any("twice" in v for v in verdict.no_duplication)

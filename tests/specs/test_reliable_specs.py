"""Unit tests for Send-To-All, Reliable and Uniform Reliable specs."""

from repro.specs import (
    ReliableBroadcastSpec,
    SendToAllSpec,
    UniformReliableBroadcastSpec,
)
from tests.conftest import ExecutionBuilder, complete_exchange


class TestSendToAll:
    def test_no_ordering_constraints(self):
        b = ExecutionBuilder(2)
        b.broadcast(0, "a")
        b.broadcast(1, "b")
        b.deliver(0, "a", "b").deliver(1, "b", "a")
        assert SendToAllSpec().admits(b.build()).admitted

    def test_base_properties_still_enforced(self):
        b = ExecutionBuilder(2)
        b.broadcast(0, "a")
        b.deliver(0, "a")
        b.deliver(0, "a")  # duplicate
        b.deliver(1, "a")
        assert not SendToAllSpec().admits(b.build()).admitted

    def test_faulty_sender_partial_delivery_admitted(self):
        b = ExecutionBuilder(3)
        b.invoke_only(0, "m")
        b.deliver(1, "m")
        b.crash(0)
        # p2 misses m: allowed by BC-Global-CS-Termination (faulty sender)
        assert SendToAllSpec().admits(b.build()).admitted


class TestReliable:
    def test_correct_delivery_forces_everywhere(self):
        b = ExecutionBuilder(3)
        b.invoke_only(0, "m")
        b.deliver(1, "m")  # correct p1 delivers; p2 misses
        b.crash(0)
        verdict = ReliableBroadcastSpec().admits(b.build())
        assert not verdict.admitted
        assert any("misses" in v for v in verdict.liveness)

    def test_faulty_only_delivery_is_allowed(self):
        b = ExecutionBuilder(3)
        b.invoke_only(0, "m")
        b.deliver(0, "m")  # only the (faulty) sender delivered
        b.crash(0)
        assert ReliableBroadcastSpec().admits(b.build()).admitted

    def test_complete_exchange_admitted(self):
        assert ReliableBroadcastSpec().admits(complete_exchange(3)).admitted


class TestUniformReliable:
    def test_faulty_delivery_also_forces_everywhere(self):
        b = ExecutionBuilder(3)
        b.invoke_only(0, "m")
        b.deliver(0, "m")  # faulty process delivered before crashing
        b.crash(0)
        verdict = UniformReliableBroadcastSpec().admits(b.build())
        assert not verdict.admitted
        assert any("misses" in v for v in verdict.liveness)

    def test_undelivered_faulty_broadcast_allowed(self):
        b = ExecutionBuilder(3)
        b.invoke_only(0, "m")
        b.crash(0)  # nobody delivered m at all
        assert UniformReliableBroadcastSpec().admits(b.build()).admitted

    def test_safety_mode_ignores_liveness(self):
        b = ExecutionBuilder(3)
        b.invoke_only(0, "m")
        b.deliver(0, "m")
        b.crash(0)
        verdict = UniformReliableBroadcastSpec().admits(
            b.build(), assume_complete=False
        )
        assert verdict.admitted

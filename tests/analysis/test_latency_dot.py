"""Tests for latency analytics and the DOT exporter."""

import pytest

from repro.analysis import (
    delivery_latencies,
    happened_before_dot,
    latency_stats,
)
from repro.broadcasts import SendToAllBroadcast, UniformReliableBroadcast
from repro.core import Execution
from repro.runtime import Simulator, TargetedDelayPolicy
from tests.conftest import ExecutionBuilder


def simulate(algorithm_class, *, n=3, seed=0, policy=None):
    simulator = Simulator(
        n,
        lambda pid, size: algorithm_class(pid, size),
        seed=seed,
        scheduling_policy=policy,
    )
    return simulator.run({p: [f"m{p}"] for p in range(n)})


class TestDeliveryLatencies:
    def test_hand_built_latencies(self):
        b = ExecutionBuilder(2)
        b.broadcast(0, "m")          # invoke at step 0, return at 1
        b.deliver(0, "m")            # step 2 -> latency 2
        b.deliver(1, "m")            # step 3 -> latency 3
        latencies = delivery_latencies(b.build())
        assert sorted(latencies.values()) == [2, 3]

    def test_every_delivery_measured(self):
        result = simulate(UniformReliableBroadcast)
        latencies = delivery_latencies(result.execution)
        deliveries = sum(
            1 for s in result.execution if s.is_deliver()
        )
        assert len(latencies) == deliveries

    def test_targeted_delay_inflates_the_victims_latency(self):
        def victim_latencies(result):
            return [
                value
                for (uid, process), value in delivery_latencies(
                    result.execution
                ).items()
                if process == 2
                and result.execution.message_by_uid[uid].sender != 2
            ]

        scripts = {p: [f"m{p}.{i}" for i in range(3)] for p in range(3)}
        simulator = Simulator(
            3, lambda pid, n: SendToAllBroadcast(pid, n), seed=1
        )
        fast = simulator.run(scripts)
        starved = Simulator(
            3,
            lambda pid, n: SendToAllBroadcast(pid, n),
            seed=1,
            scheduling_policy=TargetedDelayPolicy(
                victim=2, until_step=60
            ),
        ).run(scripts)
        assert min(victim_latencies(starved)) > min(
            victim_latencies(fast)
        )

    def test_empty_execution_has_no_stats(self):
        assert latency_stats(Execution.empty(2)) is None

    def test_stats_shape(self):
        stats = latency_stats(simulate(UniformReliableBroadcast).execution)
        assert stats.minimum <= stats.median <= stats.p90 <= stats.maximum
        assert stats.count > 0
        assert "deliveries" in str(stats)


class TestDotExport:
    def test_structure(self):
        result = simulate(SendToAllBroadcast, n=2)
        dot = happened_before_dot(result.execution)
        assert dot.startswith("digraph happened_before")
        assert "cluster_p0" in dot and "cluster_p1" in dot
        assert dot.rstrip().endswith("}")

    def test_one_node_per_step(self):
        result = simulate(SendToAllBroadcast, n=2)
        dot = happened_before_dot(result.execution)
        for index in range(len(result.execution)):
            assert f"s{index} [" in dot

    def test_message_edges_present(self):
        import re

        result = simulate(SendToAllBroadcast, n=2)
        dot = happened_before_dot(result.execution)
        receives = sum(1 for s in result.execution if s.is_receive())
        cross_edges = re.findall(r"^  s\d+ -> s\d+;$", dot, re.MULTILINE)
        assert len(cross_edges) == receives

    def test_quotes_escaped(self):
        b = ExecutionBuilder(1)
        b.broadcast(0, "m", content='say "hi"')
        dot = happened_before_dot(b.build())
        import re

        for match in re.findall(r'label="([^"]*)"', dot):
            assert '"' not in match

"""Tests for the analysis layer: causality, ordering stats, rendering."""

from hypothesis import given, settings, strategies as st

from repro.adversary import adversarial_scheduler
from repro.analysis import (
    VectorClock,
    ascii_table,
    concurrent_steps,
    happened_before_graph,
    max_disagreement_clique,
    ordering_stats,
    render_figure1,
    render_lanes,
)
from repro.broadcasts import FirstKKsaBroadcast
from repro.core import Execution, Step
from repro.core.actions import (
    PointToPointId,
    ReceiveAction,
    SendAction,
)
from tests.conftest import ExecutionBuilder, complete_exchange


clocks = st.builds(
    VectorClock, st.tuples(*[st.integers(0, 5)] * 3)
)


class TestVectorClock:
    def test_zero_and_tick(self):
        clock = VectorClock.zero(3).tick(1).tick(1)
        assert clock.entries == (0, 2, 0)

    def test_merge_is_componentwise_max(self):
        a = VectorClock((1, 5, 0))
        b = VectorClock((2, 1, 0))
        assert a.merge(b).entries == (2, 5, 0)

    def test_dimension_mismatch_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            VectorClock((1,)).merge(VectorClock((1, 2)))

    @given(clocks, clocks)
    @settings(max_examples=50)
    def test_merge_is_commutative_and_dominating(self, a, b):
        merged = a.merge(b)
        assert merged == b.merge(a)
        assert a <= merged and b <= merged

    @given(clocks, clocks)
    @settings(max_examples=50)
    def test_order_trichotomy(self, a, b):
        relations = [a < b, b < a, a.entries == b.entries,
                     a.concurrent_with(b)]
        assert sum(relations) == 1

    def test_str(self):
        assert str(VectorClock((1, 2))) == "⟨1,2⟩"


class TestHappenedBefore:
    def test_program_order_edges(self):
        execution = complete_exchange(2)
        graph = happened_before_graph(execution)
        steps = execution.steps
        for i in range(len(steps) - 1):
            for j in range(i + 1, len(steps)):
                if steps[i].process == steps[j].process:
                    import networkx as nx

                    assert nx.has_path(graph, i, j)
                    break

    def test_send_receive_edge(self):
        p2p = PointToPointId(0, 1, 0)
        execution = Execution.of(
            [Step(0, SendAction(p2p, "x")), Step(1, ReceiveAction(p2p, "x"))],
            2,
        )
        assert happened_before_graph(execution).has_edge(0, 1)

    def test_broadcast_deliver_edge(self):
        b = ExecutionBuilder(2)
        b.broadcast(0, "m")
        b.deliver(1, "m")
        graph = happened_before_graph(b.build())
        assert graph.has_edge(0, 2)

    def test_concurrent_steps_found(self):
        b = ExecutionBuilder(2)
        b.broadcast(0, "a")  # steps 0,1 at p0
        b.broadcast(1, "b")  # steps 2,3 at p1
        pairs = list(concurrent_steps(b.build()))
        assert (0, 2) in pairs

    def test_totally_ordered_chain_has_no_concurrency(self):
        b = ExecutionBuilder(1)
        b.broadcast(0, "a")
        b.deliver(0, "a")
        assert list(concurrent_steps(b.build())) == []


class TestOrderingStats:
    def test_perfect_agreement(self):
        stats = ordering_stats(complete_exchange(3))
        assert stats.agreement_ratio == 1.0
        assert stats.max_disagreement_clique == 1
        assert stats.satisfies_kbo(1)

    def test_rotated_disagreement(self):
        b = ExecutionBuilder(3)
        for p in range(3):
            b.broadcast(p, f"m{p}")
        labels = ["m0", "m1", "m2"]
        for p in range(3):
            b.deliver(p, *(labels[p:] + labels[:p]))
        stats = ordering_stats(b.build())
        assert stats.disagreeing_pairs == 3
        assert stats.max_disagreement_clique == 3
        assert not stats.satisfies_kbo(2)
        assert stats.satisfies_kbo(3)

    def test_empty_execution(self):
        stats = ordering_stats(Execution.empty(2))
        assert stats.messages == 0
        assert stats.agreement_ratio == 1.0
        assert max_disagreement_clique(Execution.empty(2)) == 0

    def test_str_contains_numbers(self):
        assert "messages" in str(ordering_stats(complete_exchange(2)))


class TestRendering:
    def test_figure1_contains_required_tokens(self):
        result = adversarial_scheduler(
            3, 2, lambda pid, n: FirstKKsaBroadcast(pid, n)
        )
        rendered = render_figure1(result)
        assert "Figure 1" in rendered
        assert "k=3" in rendered and "N=2" in rendered
        assert "⟦" in rendered  # grey boxes present
        assert "p4" in rendered  # paper numbering
        assert "□" in rendered  # propositions

    def test_grey_boxes_count_matches_witness(self):
        result = adversarial_scheduler(
            2, 2, lambda pid, n: FirstKKsaBroadcast(pid, n)
        )
        rendered = render_figure1(result)
        expected = sum(
            len(uids) for uids in result.witness.chosen.values()
        )
        assert rendered.count("⟦") == expected + 1  # +1: the legend line

    def test_render_lanes_all_processes(self):
        rendered = render_lanes(complete_exchange(3))
        for p in (1, 2, 3):
            assert f"p{p}:" in rendered

    def test_ascii_table_alignment(self):
        table = ascii_table(
            ("col", "other"), [("a", 1), ("longer-cell", 22)]
        )
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("col")
        assert "longer-cell" in lines[3]

"""Tests for the SVG Figure 1 renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.adversary import adversarial_scheduler
from repro.analysis.svg import render_figure1_svg
from repro.broadcasts import FirstKKsaBroadcast


@pytest.fixture(scope="module")
def result():
    return adversarial_scheduler(
        3, 2, lambda pid, n: FirstKKsaBroadcast(pid, n)
    )


@pytest.fixture(scope="module")
def svg(result):
    return render_figure1_svg(result)


NS = "{http://www.w3.org/2000/svg}"


class TestSvgRenderer:
    def test_is_well_formed_xml(self, svg):
        root = ET.fromstring(svg)
        assert root.tag == f"{NS}svg"

    def test_one_lane_per_process(self, result, svg):
        root = ET.fromstring(svg)
        lanes = [
            e for e in root.iter(f"{NS}line")
            if e.get("class") == "lane"
        ]
        assert len(lanes) == result.n

    def test_one_diamond_per_delivery(self, result, svg):
        deliveries = sum(
            1 for step in result.execution if step.is_deliver()
        )
        root = ET.fromstring(svg)
        diamonds = [
            e for e in root.iter(f"{NS}path")
            if e.get("class") == "deliver"
        ]
        assert len(diamonds) == deliveries

    def test_grey_boxes_match_witness(self, result, svg):
        expected = sum(
            len(uids) for uids in result.witness.chosen.values()
        )
        root = ET.fromstring(svg)
        boxes = [
            e for e in root.iter(f"{NS}rect")
            if e.get("class") == "greybox"
        ]
        assert len(boxes) == expected

    def test_one_square_per_proposition(self, result, svg):
        proposals = sum(
            1 for step in result.execution if step.is_propose()
        )
        root = ET.fromstring(svg)
        squares = [
            e for e in root.iter(f"{NS}rect")
            if e.get("class") == "propose"
        ]
        assert len(squares) == proposals

    def test_every_receive_has_an_arrow(self, result, svg):
        receives = sum(
            1 for step in result.execution if step.is_receive()
        )
        root = ET.fromstring(svg)
        arrows = [
            e for e in root.iter(f"{NS}line")
            if e.get("class") in ("msg", "selfmsg")
        ]
        assert len(arrows) == receives

    def test_title_mentions_parameters(self, svg):
        assert "k=3" in svg and "N=2" in svg

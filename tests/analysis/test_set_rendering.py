"""Set-delivery (SCD) executions render correctly in both renderers."""

import xml.etree.ElementTree as ET

import pytest

from repro.adversary import adversarial_scheduler
from repro.analysis import render_figure1, render_figure1_svg, render_lanes
from repro.broadcasts import ScdBroadcast

NS = "{http://www.w3.org/2000/svg}"


@pytest.fixture(scope="module")
def scd_result():
    return adversarial_scheduler(2, 2, lambda pid, n: ScdBroadcast(pid, n))


class TestSetDeliveryRendering:
    def test_lanes_show_set_tokens(self, scd_result):
        text = render_figure1(scd_result)
        assert "dv{" in text
        # no unknown-action marker (a bare "?") — the propose token
        # "□obj?value" legitimately contains one
        assert " ? " not in text

    def test_witness_members_boxed_inside_sets(self, scd_result):
        text = render_lanes(
            scd_result.execution,
            witness_uids={
                uid
                for uids in scd_result.witness.chosen.values()
                for uid in uids
            },
        )
        assert "⟦" in text

    def test_svg_well_formed_with_set_deliveries(self, scd_result):
        svg = render_figure1_svg(scd_result)
        root = ET.fromstring(svg)
        diamonds = [
            e for e in root.iter(f"{NS}path")
            if e.get("class") == "deliver"
        ]
        set_steps = sum(
            1
            for step in scd_result.execution
            if step.is_deliver_set() or step.is_deliver()
        )
        assert len(diamonds) == set_steps

    def test_svg_broadcast_arrows_reach_set_members(self, scd_result):
        svg = render_figure1_svg(scd_result)
        root = ET.fromstring(svg)
        arrows = [
            e for e in root.iter(f"{NS}line")
            if e.get("class") == "bcast"
        ]
        # every delivery of a message at a different position than its
        # invocation draws one dotted arrow
        expected = 0
        invoked = {}
        for index, step in enumerate(scd_result.execution):
            if step.is_invoke():
                invoked[step.action.message.uid] = index
            elif step.is_deliver():
                if invoked.get(step.action.message.uid) != index:
                    expected += 1
            elif step.is_deliver_set():
                for message in step.action.messages:
                    if invoked.get(message.uid) != index:
                        expected += 1
        assert len(arrows) == expected

"""Tests for cost profiling and the P4 experiment table."""

from repro.analysis import cost_profile
from repro.broadcasts import SendToAllBroadcast, UniformReliableBroadcast
from repro.core import Execution
from repro.experiments import costs
from repro.runtime import Simulator
from tests.conftest import complete_exchange


def simulate(algorithm_class, *, n=4, per_process=2, seed=0):
    simulator = Simulator(
        n, lambda pid, size: algorithm_class(pid, size), seed=seed
    )
    return simulator.run(
        {p: [f"m{p}.{i}" for i in range(per_process)] for p in range(n)}
    )


class TestCostProfile:
    def test_empty_execution(self):
        profile = cost_profile(Execution.empty(2))
        assert profile.broadcasts == 0
        assert profile.sends_per_broadcast == 0.0
        assert profile.delivery_ratio == 0.0

    def test_broadcast_level_counts(self):
        profile = cost_profile(complete_exchange(3))
        assert profile.broadcasts == 3
        assert profile.deliveries == 9
        assert profile.delivery_ratio == 3.0

    def test_send_to_all_is_linear(self):
        result = simulate(SendToAllBroadcast)
        profile = cost_profile(result.execution)
        assert profile.sends_per_broadcast == 4.0  # n sends per broadcast

    def test_forwarding_is_quadratic(self):
        result = simulate(UniformReliableBroadcast)
        profile = cost_profile(result.execution)
        assert profile.sends_per_broadcast == 16.0  # n² per broadcast

    def test_receives_bounded_by_sends(self):
        result = simulate(UniformReliableBroadcast)
        profile = cost_profile(result.execution)
        assert profile.receives <= profile.sends

    def test_str(self):
        text = str(cost_profile(complete_exchange(2)))
        assert "broadcasts" in text


class TestCostsExperiment:
    def test_table_has_all_algorithms(self):
        table = costs.rows(seeds=(0,))
        assert len(table) == 9
        names = [row[0] for row in table]
        assert "send-to-all" in names and "scd" in names

    def test_expected_asymptotics(self):
        table = {row[0]: row for row in costs.rows(seeds=(0,))}
        assert float(table["send-to-all"][4]) == 4.0
        assert float(table["uniform-reliable"][4]) == 16.0
        # one-shot first-k: a constant number of proposals overall
        assert float(table["first-k"][5]) < 1.0
        # round-based algorithms: about one proposal per process per round
        assert float(table["total-order"][5]) >= 2.0

    def test_render(self):
        assert "P4" in costs.run()

"""Tests for FloodSet consensus with a perfect failure detector."""

import pytest

from repro.agreement.floodset import FloodSetProcess
from repro.detectors import Clock, PerfectDetector
from repro.registers import ServiceSimulator
from repro.runtime import CrashSchedule
from repro.runtime.service import Invocation


def floodset_run(seed, *, n=4, crash=None, proposals=None):
    crash = crash or CrashSchedule.none()
    clock = Clock()
    detector = PerfectDetector(n, crash, clock, lag=0)
    simulator = ServiceSimulator(
        n,
        lambda pid, size: FloodSetProcess(pid, size, detector),
        seed=seed,
        clock=clock,
    )
    if proposals is None:
        proposals = {p: f"v{p}" for p in range(n)}
    outcome = simulator.run(
        {p: [Invocation("propose", "c", v)]
         for p, v in proposals.items()},
        crash_schedule=crash,
        max_steps=120_000,
    )
    decisions = {
        record.process: record.result
        for record in outcome.history.complete()
    }
    return outcome, decisions


class TestFloodSet:
    @pytest.mark.parametrize("seed", range(5))
    def test_consensus_failure_free(self, seed):
        outcome, decisions = floodset_run(seed)
        assert not outcome.blocked
        assert len(decisions) == 4
        assert len(set(decisions.values())) == 1

    def test_decides_minimum_known_value(self):
        _, decisions = floodset_run(
            1, proposals={0: "z", 1: "a", 2: "m", 3: "q"}
        )
        assert set(decisions.values()) == {"a"}

    def test_wait_free_with_n_minus_1_crashes(self):
        # the Ω+majority world cannot do this; P can
        outcome, decisions = floodset_run(
            1, crash=CrashSchedule({1: 10, 2: 25, 3: 45})
        )
        assert not outcome.blocked
        assert 0 in decisions

    @pytest.mark.parametrize("seed", range(3))
    def test_agreement_under_crashes(self, seed):
        outcome, decisions = floodset_run(
            seed, crash=CrashSchedule({3: 15})
        )
        assert len(set(decisions.values())) == 1
        assert set(decisions) >= {0, 1, 2}

    def test_validity(self):
        _, decisions = floodset_run(2)
        assert set(decisions.values()) <= {f"v{p}" for p in range(4)}

    def test_unknown_operation_rejected(self):
        clock = Clock()
        detector = PerfectDetector(3, CrashSchedule.none(), clock)
        process = FloodSetProcess(0, 3, detector)
        with pytest.raises(ValueError, match="unknown operation"):
            list(process.on_invoke(Invocation("read", "c")))

"""Tests for Ben-Or randomized binary consensus."""

import pytest

from repro.agreement.benor import BenOrProcess
from repro.registers import ServiceSimulator
from repro.runtime import CrashSchedule
from repro.runtime.service import Invocation


def benor_run(seed, *, n=5, proposals=None, crash=None, coin_seed=0,
              max_steps=150_000):
    crash = crash or CrashSchedule.none()
    if proposals is None:
        proposals = {p: p % 2 for p in range(n)}
    simulator = ServiceSimulator(
        n,
        lambda pid, size: BenOrProcess(pid, size, coin_seed=coin_seed),
        seed=seed,
    )
    outcome = simulator.run(
        {p: [Invocation("propose", "bit", v)]
         for p, v in proposals.items()},
        crash_schedule=crash,
        max_steps=max_steps,
    )
    decisions = {
        record.process: record.result
        for record in outcome.history.complete()
    }
    return outcome, decisions


class TestBenOr:
    @pytest.mark.parametrize("seed", range(6))
    def test_agreement_and_termination(self, seed):
        outcome, decisions = benor_run(seed)
        assert not outcome.blocked
        assert len(decisions) == 5
        assert len(set(decisions.values())) == 1
        assert set(decisions.values()) <= {0, 1}

    @pytest.mark.parametrize("bit", [0, 1])
    def test_validity_when_unanimous(self, bit):
        _, decisions = benor_run(
            2, proposals={p: bit for p in range(5)}
        )
        assert set(decisions.values()) == {bit}

    def test_tolerates_a_minority_of_crashes(self):
        outcome, decisions = benor_run(
            3, crash=CrashSchedule({4: 30, 3: 60})
        )
        assert not outcome.blocked
        assert set(decisions) >= {0, 1, 2}
        assert len(set(decisions.values())) == 1

    @pytest.mark.parametrize("coin_seed", [0, 1, 2])
    def test_safety_across_coin_outcomes(self, coin_seed):
        _, decisions = benor_run(4, coin_seed=coin_seed)
        assert len(set(decisions.values())) == 1

    def test_three_process_minimum_system(self):
        outcome, decisions = benor_run(
            5, n=3, proposals={0: 0, 1: 1, 2: 1}
        )
        assert len(decisions) == 3
        assert len(set(decisions.values())) == 1

    def test_non_binary_proposal_rejected(self):
        process = BenOrProcess(0, 3)
        with pytest.raises(ValueError, match="binary"):
            list(process.on_invoke(Invocation("propose", "bit", 7)))

    def test_unknown_operation_rejected(self):
        process = BenOrProcess(0, 3)
        with pytest.raises(ValueError, match="unknown operation"):
            list(process.on_invoke(Invocation("read", "bit", 0)))

    def test_tolerated_crash_bound(self):
        assert BenOrProcess(0, 5).t == 2
        assert BenOrProcess(0, 4).t == 1
        assert BenOrProcess(0, 3).t == 1

"""Tests for agreement-from-broadcast and the boundary reductions."""

import pytest

from repro.agreement import (
    FirstDeliveredClient,
    replay_clients,
    run_solo,
    solve_agreement_with_broadcast,
    solve_nsa_trivially,
)
from repro.agreement.from_broadcast import BroadcastClient
from repro.broadcasts import (
    FirstKKsaBroadcast,
    SendToAllBroadcast,
    TotalOrderBroadcast,
)
from repro.runtime import CrashSchedule
from repro.specs.witnesses import solo_first_execution


class TestConsensusFromTotalOrder:
    @pytest.mark.parametrize("seed", range(4))
    def test_single_decision_failure_free(self, seed):
        outcome = solve_agreement_with_broadcast(
            4,
            lambda pid, n: TotalOrderBroadcast(pid, n),
            {p: f"v{p}" for p in range(4)},
            k=1,
            seed=seed,
        )
        assert len(outcome.decisions) == 4
        assert outcome.satisfies_agreement(1)
        assert all(
            v in {f"v{p}" for p in range(4)}
            for v in outcome.distinct
        )

    def test_single_decision_with_crash(self):
        outcome = solve_agreement_with_broadcast(
            4,
            lambda pid, n: TotalOrderBroadcast(pid, n),
            {p: f"v{p}" for p in range(4)},
            k=1,
            seed=1,
            crash_schedule=CrashSchedule({3: 8}),
        )
        # every correct proposer decides, and on a single value
        correct = outcome.simulation.execution.correct
        assert set(outcome.decisions) >= correct
        assert outcome.satisfies_agreement(1)


class TestKsaFromFirstK:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_at_most_k_decisions(self, k):
        outcome = solve_agreement_with_broadcast(
            4,
            lambda pid, n: FirstKKsaBroadcast(pid, n),
            {p: p for p in range(4)},
            k=k,
            seed=3,
        )
        assert outcome.satisfies_agreement(k)

    def test_send_to_all_cannot_bound_disagreement(self):
        # with plain send-to-all, some seed yields > 2 distinct decisions
        seen = set()
        for seed in range(10):
            outcome = solve_agreement_with_broadcast(
                4,
                lambda pid, n: SendToAllBroadcast(pid, n),
                {p: p for p in range(4)},
                seed=seed,
            )
            seen.add(len(outcome.distinct))
        assert max(seen) > 2


class TestSoloRunErrors:
    def test_non_broadcasting_client_rejected(self):
        class Mute(BroadcastClient):
            def initial_broadcasts(self):
                return []

            def on_deliver(self, message):
                pass

        with pytest.raises(RuntimeError, match="Termination"):
            run_solo(Mute, 0, 3, proposal=0)

    def test_never_deciding_client_rejected(self):
        class Babbler(BroadcastClient):
            def initial_broadcasts(self):
                return ["a", "b"]

            def on_deliver(self, message):
                pass

        with pytest.raises(RuntimeError, match="Termination"):
            run_solo(Babbler, 0, 3, proposal=0)

    def test_invalid_decision_rejected(self):
        class Rogue(BroadcastClient):
            def initial_broadcasts(self):
                return ["a"]

            def on_deliver(self, message):
                self.decision = "not-the-proposal"

        with pytest.raises(RuntimeError, match="Validity"):
            run_solo(Rogue, 0, 3, proposal=0)


class TestReplayClients:
    def test_replay_on_solo_shape_decides_everywhere(self):
        execution = solo_first_execution(3)
        # rename messages into proposal-shaped contents
        from repro.core import Renaming

        renaming = Renaming(
            {
                m.uid: ("prop", m.sender, m.sender)
                for m in execution.broadcast_messages
            }
        )
        decisions = replay_clients(
            FirstDeliveredClient,
            execution.rename(renaming),
            {p: p for p in range(3)},
        )
        assert decisions == {0: 0, 1: 1, 2: 2}

    def test_non_proposal_deliveries_are_ignored(self):
        execution = solo_first_execution(3)  # contents are plain strings
        decisions = replay_clients(
            FirstDeliveredClient, execution, {p: p for p in range(3)}
        )
        assert decisions == {}


class TestTrivialNsa:
    def test_everyone_decides_own_value(self):
        proposals = {p: f"v{p}" for p in range(5)}
        assert solve_nsa_trivially(proposals) == proposals

    def test_distinct_bounded_by_n(self):
        decisions = solve_nsa_trivially({p: p for p in range(6)})
        assert len(set(decisions.values())) <= 6

"""Tests for iterated k-SA over the k-Stepped implementation (§3.2)."""

import pytest

from repro.agreement import round_decisions, solve_iterated_agreement
from repro.broadcasts import KSteppedKsaBroadcast
from repro.core import check_channels
from repro.specs import KSteppedBroadcastSpec


def solve(n=4, rounds=3, k=2, seed=0):
    return solve_iterated_agreement(
        n,
        lambda pid, size: KSteppedKsaBroadcast(pid, size),
        {p: [f"v{p}.{a}" for a in range(rounds)] for p in range(n)},
        k=k,
        seed=seed,
    )


class TestIteratedAgreement:
    @pytest.mark.parametrize("seed", range(4))
    def test_every_round_bounded_by_k(self, seed):
        outcome = solve(seed=seed)
        assert outcome.simulation.quiescent
        assert outcome.satisfies_agreement(2)
        assert set(outcome.decisions) == {0, 1, 2}

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_bound_tracks_k(self, k):
        outcome = solve(k=k, seed=1)
        assert outcome.satisfies_agreement(k)

    def test_validity_per_round(self):
        outcome = solve(seed=2)
        for round_index, values in outcome.decisions.items():
            proposals = {f"v{p}.{round_index}" for p in range(4)}
            assert set(values.values()) <= proposals

    def test_every_correct_process_decides_every_round(self):
        outcome = solve(seed=3)
        for values in outcome.decisions.values():
            assert set(values) == {0, 1, 2, 3}

    def test_lock_step_pattern_required(self):
        with pytest.raises(ValueError, match="lock-step"):
            solve_iterated_agreement(
                2,
                lambda pid, n: KSteppedKsaBroadcast(pid, n),
                {0: ["a"], 1: ["b", "c"]},
                k=1,
            )


class TestKSteppedImplementation:
    @pytest.mark.parametrize("seed", range(4))
    def test_satisfies_the_kstepped_spec(self, seed):
        outcome = solve(seed=seed)
        beta = outcome.simulation.execution.broadcast_projection()
        verdict = KSteppedBroadcastSpec(2).admits(
            beta, assume_complete=False
        )
        assert verdict.admitted, verdict.ordering[:2]
        assert check_channels(outcome.simulation.execution).ok

    def test_round_heads_come_from_the_round_objects(self):
        outcome = solve(seed=1)
        execution = outcome.simulation.execution
        decided_heads = {
            ksa: set(values.values())
            for ksa, values in execution.decisions.items()
        }
        for round_index, values in outcome.decisions.items():
            heads = decided_heads[f"step:{round_index}"]
            head_contents = {m.content for m in heads}
            assert set(values.values()) <= head_contents

    def test_round_decisions_reads_any_execution(self):
        outcome = solve(seed=0)
        beta = outcome.simulation.execution.broadcast_projection()
        recomputed = round_decisions(beta, 3)
        assert recomputed == dict(outcome.decisions)

"""Shared test helpers: compact builders for hand-made executions."""

from __future__ import annotations

from typing import Sequence

import pytest

from repro.core import Execution, Message, MessageFactory, Step
from repro.core.actions import (
    BroadcastInvoke,
    BroadcastReturn,
    CrashAction,
    DeliverAction,
)


class ExecutionBuilder:
    """Fluent construction of broadcast-level executions for tests."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.factory = MessageFactory()
        self.steps: list[Step] = []
        self.messages: dict[str, Message] = {}

    def broadcast(self, process: int, label: str, content=None) -> Message:
        """Record an invoke+return pair and remember the message by label."""
        message = self.factory.new(
            process, content if content is not None else label
        )
        self.messages[label] = message
        self.steps.append(Step(process, BroadcastInvoke(message)))
        self.steps.append(Step(process, BroadcastReturn(message)))
        return message

    def invoke_only(self, process: int, label: str, content=None) -> Message:
        """An invocation without its response (sender may crash)."""
        message = self.factory.new(
            process, content if content is not None else label
        )
        self.messages[label] = message
        self.steps.append(Step(process, BroadcastInvoke(message)))
        return message

    def deliver(self, process: int, *labels: str) -> "ExecutionBuilder":
        for label in labels:
            self.steps.append(
                Step(process, DeliverAction(self.messages[label]))
            )
        return self

    def crash(self, process: int) -> "ExecutionBuilder":
        self.steps.append(Step(process, CrashAction()))
        return self

    def build(self) -> Execution:
        return Execution.of(self.steps, self.n)


@pytest.fixture
def builder():
    """Factory fixture: ``builder(n)`` returns a fresh ExecutionBuilder."""
    return ExecutionBuilder


def complete_exchange(n: int, per_process: int = 1) -> Execution:
    """Everyone broadcasts and everyone delivers everything, same order."""
    b = ExecutionBuilder(n)
    labels = []
    for p in range(n):
        for i in range(per_process):
            label = f"m{p}.{i}"
            b.broadcast(p, label)
            labels.append(label)
    for p in range(n):
        b.deliver(p, *labels)
    return b.build()

"""Public-API stability: the names downstream users import must exist.

A curated manifest of the public surface; accidental removals or renames
fail here with a clear message before any downstream breakage.
"""

import importlib

import pytest

PUBLIC_API = {
    "repro.core": [
        "Execution", "Message", "MessageFactory", "MessageId", "Renaming",
        "Step", "BroadcastSpec", "SpecVerdict", "check_base_properties",
        "check_channels", "ChannelTracker", "check_ksa",
        "check_compositional",
        "check_content_neutral", "NSoloWitness", "find_witness",
        "is_n_solo", "verify_witness", "fresh_renaming",
        "WellFormednessError",
    ],
    "repro.core.serialize": ["dumps", "loads", "to_jsonable",
                             "from_jsonable"],
    "repro.specs": [
        "SendToAllSpec", "ReliableBroadcastSpec",
        "UniformReliableBroadcastSpec", "FifoBroadcastSpec",
        "CausalBroadcastSpec", "TotalOrderBroadcastSpec",
        "KboBroadcastSpec", "KSteppedBroadcastSpec",
        "FirstKBroadcastSpec", "SaTaggedBroadcastSpec",
        "MutualBroadcastSpec", "PairBroadcastSpec", "ScdBroadcastSpec",
        "KScdBroadcastSpec", "GenericBroadcastSpec", "sa_content",
        "command_content", "commands_conflict", "set_delivery_ranks",
    ],
    "repro.runtime": [
        "Simulator", "SimulationResult", "Gated", "CrashSchedule",
        "BroadcastProcess", "ProcessRuntime", "Network", "TraceRecorder",
        "KsaRegistry", "KsaObject", "FirstProposalsPolicy",
        "OwnValuePolicy", "ScriptedPolicy", "SchedulingPolicy",
        "UniformPolicy", "LockstepPolicy", "ChannelFifoPolicy",
        "TargetedDelayPolicy", "Send", "Propose", "Deliver",
        "DeliverSet", "Wait", "LocalNote", "explore_schedules",
        "spec_property", "channels_property", "combine_properties",
        "ExplorationResult", "Violation", "SimulationRun",
        "PropertyTracker",
    ],
    "repro.broadcasts": [
        "SendToAllBroadcast", "UniformReliableBroadcast", "FifoBroadcast",
        "CausalBroadcast", "TotalOrderBroadcast", "TrivialKsaBroadcast",
        "FirstKKsaBroadcast", "KboAttemptBroadcast", "ScdBroadcast",
        "KSteppedKsaBroadcast", "RoundAgreementBroadcast",
    ],
    "repro.agreement": [
        "solve_agreement_with_broadcast", "solve_nsa_trivially",
        "solve_iterated_agreement", "round_decisions",
        "BroadcastClient", "FirstDeliveredClient", "MultiRoundClient",
        "run_solo", "replay_clients", "PaxosProcess", "BenOrProcess",
        "FloodSetProcess",
        "Ballot", "SoloRun", "AgreementOutcome", "IteratedOutcome",
    ],
    "repro.adversary": [
        "adversarial_scheduler", "AdversaryResult", "AdversaryStalled",
        "check_all_lemmas", "LemmaReport", "run_theorem_pipeline",
        "TheoremPipelineResult", "SYNCH",
    ],
    "repro.detectors": ["Clock", "OmegaOracle", "PerfectDetector"],
    "repro.registers": [
        "AbdRegisterProcess", "RegularRegisterProcess", "Timestamp",
        "History", "OperationRecord", "check_linearizable",
        "LinearizabilityReport", "ServiceSimulator", "ServiceRun",
    ],
    "repro.apps": [
        "replay_replicas", "replay_kv_store", "replay_counter",
        "orphaned_replies", "logs_prefix_related", "counter_value",
        "apply_command", "apply_increment", "ReplicaStates",
    ],
    "repro.analysis": [
        "ordering_stats", "OrderingStats", "max_disagreement_clique",
        "VectorClock", "happened_before_graph", "happened_before_dot",
        "concurrent_steps", "render_figure1", "render_figure1_svg",
        "render_lanes", "ascii_table", "cost_profile", "CostProfile",
        "latency_stats", "delivery_latencies", "LatencyStats",
    ],
    "repro.experiments": [
        "figure1", "lemma10_grid", "theorem_pipeline", "symmetry_matrix",
        "register_power", "boundaries", "costs", "run_all",
    ],
}


@pytest.mark.parametrize("module_name", sorted(PUBLIC_API))
def test_module_exports(module_name):
    module = importlib.import_module(module_name)
    missing = [
        name for name in PUBLIC_API[module_name]
        if not hasattr(module, name)
    ]
    assert not missing, f"{module_name} lost public names: {missing}"


@pytest.mark.parametrize("module_name", sorted(PUBLIC_API))
def test_all_is_consistent(module_name):
    module = importlib.import_module(module_name)
    if not hasattr(module, "__all__"):
        pytest.skip("module has no __all__")
    for name in module.__all__:
        assert hasattr(module, name), (
            f"{module_name}.__all__ lists missing name {name}"
        )

"""Unit tests for operation histories and the linearizability checker."""

from repro.registers import History, check_linearizable


def record(history, process, op, target, arg, invoked, responded, result=None):
    entry = history.begin(process, op, target, arg, at=invoked)
    entry.responded_at = responded
    entry.result = result
    return entry


class TestHistory:
    def test_precedence(self):
        history = History()
        first = record(history, 0, "write", "R", 1, 0, 5, "ok")
        second = record(history, 1, "read", "R", None, 10, 15, 1)
        overlapping = record(history, 2, "read", "R", None, 3, 20, 1)
        assert first.precedes(second)
        assert not first.precedes(overlapping)
        assert not second.precedes(first)

    def test_pending_operations(self):
        history = History()
        entry = history.begin(0, "write", "R", 1, at=0)
        assert not entry.complete
        assert history.pending() == [entry]
        assert history.complete() == []

    def test_targets_and_subhistories(self):
        history = History()
        record(history, 0, "write", "R0", 1, 0, 1, "ok")
        record(history, 0, "write", "R1", 2, 2, 3, "ok")
        assert history.targets() == ["R0", "R1"]
        assert len(history.on_target("R0")) == 1

    def test_str_rendering(self):
        history = History()
        record(history, 0, "read", "R", None, 0, 4, 7)
        assert "p0.read" in str(history)
        assert "-> 7" in str(history)


class TestChecker:
    def test_sequential_legal_history(self):
        history = History()
        record(history, 0, "write", "R", 5, 0, 1, "ok")
        record(history, 1, "read", "R", None, 2, 3, 5)
        assert check_linearizable(history).ok

    def test_read_of_initial_value(self):
        history = History()
        record(history, 1, "read", "R", None, 0, 1, 0)
        record(history, 0, "write", "R", 5, 2, 3, "ok")
        assert check_linearizable(history, initial=0).ok

    def test_stale_read_after_write_rejected(self):
        history = History()
        record(history, 0, "write", "R", 5, 0, 1, "ok")
        record(history, 1, "read", "R", None, 2, 3, 0)  # missed the write
        assert not check_linearizable(history).ok

    def test_concurrent_write_may_or_may_not_be_seen(self):
        history = History()
        record(history, 0, "write", "R", 5, 0, 10, "ok")
        record(history, 1, "read", "R", None, 2, 3, 0)  # overlaps: 0 is fine
        assert check_linearizable(history).ok

    def test_new_old_inversion_rejected(self):
        history = History()
        record(history, 0, "write", "R", 1, 0, 100, "ok")  # long write
        record(history, 1, "read", "R", None, 10, 20, 1)   # sees it
        record(history, 2, "read", "R", None, 30, 40, 0)   # later misses it
        assert not check_linearizable(history).ok

    def test_pending_write_may_take_effect(self):
        history = History()
        history.begin(0, "write", "R", 9, at=0)  # never responds
        record(history, 1, "read", "R", None, 5, 6, 9)
        assert check_linearizable(history).ok

    def test_pending_write_may_be_dropped(self):
        history = History()
        history.begin(0, "write", "R", 9, at=0)
        record(history, 1, "read", "R", None, 5, 6, 0)
        assert check_linearizable(history).ok

    def test_registers_checked_independently(self):
        history = History()
        record(history, 0, "write", "R0", 1, 0, 1, "ok")
        record(history, 1, "read", "R0", None, 2, 3, 1)
        record(history, 0, "write", "R1", 2, 4, 5, "ok")
        record(history, 1, "read", "R1", None, 6, 7, 99)  # bad register
        report = check_linearizable(history)
        assert report.verdicts["R0"]
        assert not report.verdicts["R1"]
        assert not report.ok

    def test_witness_extends_precedence(self):
        history = History()
        write = record(history, 0, "write", "R", 1, 0, 1, "ok")
        read = record(history, 1, "read", "R", None, 2, 3, 1)
        report = check_linearizable(history)
        witness = report.witnesses["R"]
        assert witness.index(write.op_id) < witness.index(read.op_id)

    def test_multi_writer_interleaving(self):
        history = History()
        record(history, 0, "write", "R", "a", 0, 10, "ok")
        record(history, 1, "write", "R", "b", 0, 10, "ok")
        record(history, 2, "read", "R", None, 20, 21, "a")
        record(history, 3, "read", "R", None, 22, 23, "a")
        assert check_linearizable(history).ok

    def test_conflicting_final_reads_rejected(self):
        history = History()
        record(history, 0, "write", "R", "a", 0, 10, "ok")
        record(history, 1, "write", "R", "b", 0, 10, "ok")
        record(history, 2, "read", "R", None, 20, 21, "a")
        record(history, 3, "read", "R", None, 22, 23, "b")
        record(history, 2, "read", "R", None, 24, 25, "a")
        assert not check_linearizable(history).ok

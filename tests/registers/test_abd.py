"""Tests for the ABD register emulation and its write-back ablation."""

import pytest

from repro.core import check_channels
from repro.registers import (
    AbdRegisterProcess,
    History,
    RegularRegisterProcess,
    ServiceSimulator,
    check_linearizable,
)
from repro.runtime import CrashSchedule
from repro.runtime.process import Blocked, SendStep
from repro.runtime.service import Invocation, ResponseStep, ServiceRuntime


def mixed_scripts(n):
    return {
        0: [Invocation("write", "R0", 10), Invocation("read", "R1")],
        1: [Invocation("write", "R1", 20), Invocation("read", "R0")],
        2: [Invocation("read", "R0"), Invocation("write", "R0", 30)],
        3: [Invocation("read", "R1"), Invocation("write", "R1", 40)],
        4: [Invocation("read", "R0")],
    }


class TestAbdConformance:
    @pytest.mark.parametrize("seed", range(6))
    def test_linearizable_failure_free(self, seed):
        simulator = ServiceSimulator(
            5, lambda pid, n: AbdRegisterProcess(pid, n), seed=seed
        )
        run = simulator.run(mixed_scripts(5))
        assert run.quiescent
        assert len(run.history.pending()) == 0
        assert check_linearizable(run.history).ok
        assert check_channels(run.execution).ok

    @pytest.mark.parametrize("seed", range(3))
    def test_linearizable_with_minority_crashes(self, seed):
        simulator = ServiceSimulator(
            5, lambda pid, n: AbdRegisterProcess(pid, n), seed=seed
        )
        run = simulator.run(
            mixed_scripts(5),
            crash_schedule=CrashSchedule({4: 25, 3: 60}),
        )
        assert not run.blocked  # correct processes stay live
        assert check_linearizable(run.history).ok

    def test_blocks_without_a_majority(self):
        simulator = ServiceSimulator(
            4, lambda pid, n: AbdRegisterProcess(pid, n), seed=0
        )
        run = simulator.run(
            {0: [Invocation("write", "R", 1)]},
            crash_schedule=CrashSchedule.initial([1, 2]),
        )
        assert run.blocked == {0: "timestamp quorum for R"}
        assert run.history.pending()

    def test_initial_value_readable(self):
        simulator = ServiceSimulator(
            3, lambda pid, n: AbdRegisterProcess(pid, n, initial="ε"),
            seed=1,
        )
        run = simulator.run({0: [Invocation("read", "R")]})
        (record,) = run.history.complete()
        assert record.result == "ε"


class _ManualCluster:
    """Hand-driven ABD cluster with explicit message routing.

    Lets tests construct exact interleavings — deliveries happen only
    when the test says so — which is how the new/old inversion below is
    produced deterministically.
    """

    def __init__(self, n, algorithm_class):
        self.runtimes = [
            ServiceRuntime(algorithm_class(p, n)) for p in range(n)
        ]
        self.mailbox = []  # (p2p, payload) not yet delivered
        self.clock = 0
        self.history = History()
        self.open = {}

    def invoke(self, p, *invocation_args):
        invocation = Invocation(*invocation_args)
        self.runtimes[p].invoke(invocation)
        self.clock += 1
        self.open[p] = self.history.begin(
            p,
            invocation.operation,
            invocation.target,
            invocation.argument,
            at=self.clock,
        )

    def drain_local(self, p):
        """Run p's enabled steps; outgoing messages stay in the mailbox."""
        runtime = self.runtimes[p]
        while runtime.has_enabled_step():
            outcome = runtime.next_step()
            self.clock += 1
            if isinstance(outcome, SendStep):
                self.mailbox.append((outcome.p2p, outcome.payload))
            elif isinstance(outcome, ResponseStep):
                record = self.open.pop(p)
                record.responded_at = self.clock
                record.result = outcome.result

    def deliver_to(self, receivers, *, from_senders=None):
        """Deliver pending messages addressed to ``receivers`` and run
        their handlers (responses they trigger stay in the mailbox)."""
        progressed = True
        while progressed:
            progressed = False
            for item in list(self.mailbox):
                p2p, payload = item
                if p2p.receiver not in receivers:
                    continue
                if from_senders is not None and p2p.sender not in from_senders:
                    continue
                self.mailbox.remove(item)
                self.runtimes[p2p.receiver].inject_receive(p2p, payload)
                self.drain_local(p2p.receiver)
                progressed = True


class TestWriteBackAblation:
    """The deterministic new/old inversion of the regular register."""

    def _quorum_exchange(self, cluster, caller, quorum):
        """Deliver the caller's requests to ``quorum`` and route the
        replies back, repeating once if the operation has a second
        phase (the ABD write-back)."""
        for _phase in range(3):
            cluster.deliver_to(quorum, from_senders={caller})
            cluster.deliver_to({caller}, from_senders=quorum - {caller})
            cluster.drain_local(caller)
            if not cluster.runtimes[caller].busy:
                break

    def _run_inversion(self, algorithm_class) -> History:
        n = 5
        cluster = _ManualCluster(n, algorithm_class)
        writer, reader_new, reader_old, updated = 0, 1, 2, 4

        # p0 starts write(R, 1): timestamp quorum {p0, p1, p3}, then its
        # STORE messages reach ONLY replica p4 — the write stays pending
        # (one ack) and even the writer's own replica is stale (its
        # self-addressed STORE sits in the mailbox).
        cluster.invoke(writer, "write", "R", 1)
        cluster.drain_local(writer)
        cluster.deliver_to({writer, 1, 3}, from_senders={writer})
        cluster.deliver_to({writer}, from_senders={1, 3})
        cluster.drain_local(writer)  # timestamp chosen; STOREs emitted
        cluster.deliver_to({updated}, from_senders={writer})

        # p1 reads with quorum {p1, p3, p4}: p4 reports the new value.
        cluster.invoke(reader_new, "read", "R")
        cluster.drain_local(reader_new)
        self._quorum_exchange(cluster, reader_new, {reader_new, 3, updated})

        # p2 reads strictly afterwards with quorum {p2, p0, p3}: all
        # three replicas missed the writer's STORE.  Under full ABD,
        # p1's read wrote the new value back to p3, so the very same
        # quorum reports it and the inversion is impossible.
        cluster.invoke(reader_old, "read", "R")
        cluster.drain_local(reader_old)
        self._quorum_exchange(cluster, reader_old, {reader_old, writer, 3})
        return cluster.history

    def test_regular_register_shows_new_old_inversion(self):
        history = self._run_inversion(RegularRegisterProcess)
        reads = [r for r in history if r.operation == "read"]
        assert [r.result for r in reads] == [1, 0]
        assert not check_linearizable(history).ok

    def test_full_abd_immune_on_the_same_schedule(self):
        history = self._run_inversion(AbdRegisterProcess)
        reads = [r for r in history.complete() if r.operation == "read"]
        # the write-back forces the second read to see the new value
        assert all(r.result == 1 for r in reads)
        assert check_linearizable(history).ok

"""Executes docs/tutorial.md verbatim: the bring-your-own-abstraction path.

If this test breaks, the tutorial is lying — fix both together.
"""

from itertools import combinations

import pytest

from repro.adversary import run_theorem_pipeline
from repro.broadcasts import TotalOrderBroadcast
from repro.core import BroadcastSpec, Renaming, check_content_neutral
from repro.core.order import delivery_positions, pair_orders
from repro.runtime import CrashSchedule, Simulator
from repro.runtime.effects import Deliver


class ParityBroadcastSpec(BroadcastSpec):
    """Even-content messages are delivered in a single uniform order."""

    name = "Parity Broadcast"

    def ordering_violations(self, execution):
        positions = delivery_positions(execution)
        evens = [
            m for m in execution.broadcast_messages
            if isinstance(m.content, int) and m.content % 2 == 0
        ]
        return [
            f"even messages {a.uid} and {b.uid} delivered in "
            f"different orders"
            for a, b in combinations(evens, 2)
            if len(pair_orders(positions, a.uid, b.uid)) > 1
        ]


class ParityBroadcast(TotalOrderBroadcast):
    """Evens through the agreed rounds; odds delivered on sight."""

    object_prefix = "parity"

    def _learn(self, message):
        if isinstance(message.content, int) and message.content % 2 == 0:
            yield from super()._learn(message)
            return
        if message.uid in self._known:
            return
        self._known.add(message.uid)
        yield from self.send_to_all(message)
        self._delivered.add(message.uid)
        yield Deliver(message)


def simulate(seed=7, crash_schedule=None):
    simulator = Simulator(
        3, lambda pid, n: ParityBroadcast(pid, n), k=1, seed=seed
    )
    return simulator.run(
        {p: [2 * p, 2 * p + 1] for p in range(3)},
        crash_schedule=crash_schedule,
    )


class TestTutorial:
    @pytest.mark.parametrize("seed", range(5))
    def test_step3_conformance(self, seed):
        run = simulate(seed=seed)
        assert run.quiescent
        verdict = ParityBroadcastSpec().admits(
            run.execution.broadcast_projection()
        )
        assert verdict.admitted, verdict.ordering[:2]

    def test_step3_with_crashes(self):
        run = simulate(seed=3, crash_schedule=CrashSchedule({2: 15}))
        verdict = ParityBroadcastSpec().admits(
            run.execution.broadcast_projection()
        )
        assert verdict.admitted

    def test_step4_content_neutrality_fails(self):
        # find a seed whose trace has a disordered (odd) pair to relabel
        violated = False
        for seed in range(10):
            beta = simulate(seed=seed).execution.broadcast_projection()
            renaming = Renaming(
                {
                    m.uid: 2 * index
                    for index, m in enumerate(beta.broadcast_messages)
                }
            )
            result = check_content_neutral(
                ParityBroadcastSpec(),
                beta,
                renamings=[renaming],
                assume_complete=False,
            )
            if not result.holds:
                violated = True
                break
        assert violated, "no seed exhibited the content-sensitivity"

    def test_step5_theorem_pipeline(self):
        result = run_theorem_pipeline(
            2,
            lambda pid, n: ParityBroadcast(pid, n),
            candidate_spec=ParityBroadcastSpec(),
        )
        assert result.agreement_violated
        assert "equivalence" in result.failing_hypothesis

"""Differential tests of the state-deduplicating engine.

``engine="dedup"`` is the incremental engine plus a fingerprint
transposition cache; pruning must be *invisible* in the result — the
same terminal count, the same exhaustion verdict, and the identical
violation list (guides and rendered problems) as the incremental engine
on every configuration, in every stop mode, under budget caps, crash
schedules, and sharded execution.  What may (and must, on symmetric
configurations) differ is the work done: ``states_seen`` +
``states_deduped`` expansions instead of one expansion per prefix.
"""

import pytest

from repro.runtime import CrashSchedule, explore_schedules
from repro.runtime.explorer import (
    channels_property,
    combine_properties,
    spec_property,
)
from repro.specs import SendToAllSpec, UniformReliableBroadcastSpec

from .test_explorer_engines import s2a_simulator, total_order, urb_simulator


def urb_prop():
    return combine_properties(
        spec_property(UniformReliableBroadcastSpec()), channels_property()
    )


def s2a_prop():
    return combine_properties(
        spec_property(SendToAllSpec()), channels_property()
    )


CONFIGS = [
    pytest.param(urb_simulator, {0: ["a"]}, urb_prop, {}, id="urb"),
    pytest.param(
        s2a_simulator, {0: ["a"], 1: ["b"]}, s2a_prop, {}, id="s2a"
    ),
    pytest.param(
        s2a_simulator,
        {0: ["a"], 1: ["b"]},
        total_order,
        {},
        id="s2a-total-order",
    ),
    pytest.param(
        lambda: s2a_simulator(3),
        {0: ["a"], 1: ["b"]},
        total_order,
        {
            "crash_schedule": CrashSchedule(at_step={1: 3}),
            "max_schedules": 300,
        },
        id="s2a-crash",
    ),
]


def assert_same_outcome(dedup, baseline):
    """The pruned search reports the identical outcome."""
    assert dedup.terminal_schedules == baseline.terminal_schedules
    assert dedup.max_depth_seen == baseline.max_depth_seen
    assert dedup.exhausted == baseline.exhausted
    assert dedup.aborted == baseline.aborted
    assert [v.guide for v in dedup.violations] == [
        v.guide for v in baseline.violations
    ]
    assert [v.problems for v in dedup.violations] == [
        v.problems for v in baseline.violations
    ]


class TestDedupEquivalence:
    """dedup == incremental on results; cheaper on expansions."""

    @pytest.mark.parametrize("simulator, scripts, prop, kwargs", CONFIGS)
    def test_identical_outcome_on_every_config(
        self, simulator, scripts, prop, kwargs
    ):
        baseline = explore_schedules(simulator(), scripts, prop(), **kwargs)
        dedup = explore_schedules(
            simulator(), scripts, prop(), engine="dedup", **kwargs
        )
        assert_same_outcome(dedup, baseline)

    def test_symmetric_config_is_pruned_hard(self):
        baseline = explore_schedules(
            s2a_simulator(), {0: ["a"], 1: ["b"]}, total_order()
        )
        dedup = explore_schedules(
            s2a_simulator(), {0: ["a"], 1: ["b"]}, total_order(),
            engine="dedup",
        )
        # every expansion is either a fresh state or a pruned arrival
        assert dedup.schedules_explored == dedup.states_seen
        assert dedup.states_deduped > 0
        assert dedup.states_seen < baseline.schedules_explored
        # the non-dedup engine reports zeroed counters
        assert baseline.states_seen == 0
        assert baseline.states_deduped == 0

    def test_dedup_flag_equals_dedup_engine(self):
        by_engine = explore_schedules(
            s2a_simulator(), {0: ["a"], 1: ["b"]}, total_order(),
            engine="dedup",
        )
        by_flag = explore_schedules(
            s2a_simulator(), {0: ["a"], 1: ["b"]}, total_order(),
            dedup=True,
        )
        assert by_engine == by_flag

    def test_dedup_requires_the_incremental_engine(self):
        with pytest.raises(ValueError, match="incremental"):
            explore_schedules(
                urb_simulator(), {0: ["a"]}, channels_property(),
                engine="replay", dedup=True,
            )

    def test_runs_are_deterministic(self):
        first = explore_schedules(
            s2a_simulator(), {0: ["a"], 1: ["b"]}, total_order(),
            engine="dedup",
        )
        second = explore_schedules(
            s2a_simulator(), {0: ["a"], 1: ["b"]}, total_order(),
            engine="dedup",
        )
        assert first == second


class TestDedupStopModes:
    """Cache replay honours budget cuts and first-violation aborts."""

    def test_budget_cap_matches_incremental(self):
        baseline = explore_schedules(
            s2a_simulator(),
            {0: ["a"], 1: ["b"]},
            channels_property(assume_complete=False),
            max_schedules=25,
        )
        dedup = explore_schedules(
            s2a_simulator(),
            {0: ["a"], 1: ["b"]},
            channels_property(assume_complete=False),
            max_schedules=25,
            engine="dedup",
        )
        assert dedup.terminal_schedules == 25
        assert_same_outcome(dedup, baseline)

    @pytest.mark.parametrize("cap", [1, 7, 36, 79, 80])
    def test_every_budget_cut_point_agrees(self, cap):
        # caps landing inside replayed subtrees must cut the virtual
        # terminal sequence exactly where re-expansion would have
        baseline = explore_schedules(
            s2a_simulator(), {0: ["a"], 1: ["b"]}, total_order(),
            max_schedules=cap,
        )
        dedup = explore_schedules(
            s2a_simulator(), {0: ["a"], 1: ["b"]}, total_order(),
            max_schedules=cap, engine="dedup",
        )
        assert_same_outcome(dedup, baseline)

    def test_stop_at_first_violation_matches_incremental(self):
        baseline = explore_schedules(
            s2a_simulator(),
            {0: ["a"], 1: ["b"]},
            total_order(),
            stop_at_first_violation=True,
        )
        dedup = explore_schedules(
            s2a_simulator(),
            {0: ["a"], 1: ["b"]},
            total_order(),
            stop_at_first_violation=True,
            engine="dedup",
        )
        assert dedup.aborted and not dedup.exhausted
        assert_same_outcome(dedup, baseline)

    def test_max_depth_cut_matches_incremental(self):
        for depth in (2, 4, 6):
            baseline = explore_schedules(
                s2a_simulator(),
                {0: ["a"], 1: ["b"]},
                channels_property(assume_complete=False),
                max_depth=depth,
            )
            dedup = explore_schedules(
                s2a_simulator(),
                {0: ["a"], 1: ["b"]},
                channels_property(assume_complete=False),
                max_depth=depth,
                engine="dedup",
            )
            assert_same_outcome(dedup, baseline)


class TestDedupParallel:
    """Sharded dedup: per-shard caches, sequential-identical merge."""

    @pytest.mark.parametrize("workers", [2, 3])
    def test_parallel_dedup_matches_sequential(self, workers):
        sequential = explore_schedules(
            s2a_simulator(), {0: ["a"], 1: ["b"]}, total_order(),
            engine="dedup",
        )
        parallel = explore_schedules(
            s2a_simulator(), {0: ["a"], 1: ["b"]}, total_order(),
            engine="dedup", workers=workers,
        )
        assert parallel.workers == workers
        assert_same_outcome(parallel, sequential)
        assert parallel.states_deduped > 0

    def test_parallel_dedup_is_deterministic(self):
        first = explore_schedules(
            s2a_simulator(), {0: ["a"], 1: ["b"]}, total_order(),
            engine="dedup", workers=3,
        )
        second = explore_schedules(
            s2a_simulator(), {0: ["a"], 1: ["b"]}, total_order(),
            engine="dedup", workers=3,
        )
        assert first == second

    def test_parallel_dedup_matches_plain_incremental(self):
        baseline = explore_schedules(
            s2a_simulator(), {0: ["a"], 1: ["b"]}, total_order()
        )
        parallel = explore_schedules(
            s2a_simulator(), {0: ["a"], 1: ["b"]}, total_order(),
            engine="dedup", workers=2,
        )
        assert_same_outcome(parallel, baseline)

"""Tests for the exhaustive schedule explorer."""

import pytest

from repro.broadcasts import (
    CausalBroadcast,
    FirstKKsaBroadcast,
    SendToAllBroadcast,
    UniformReliableBroadcast,
)
from repro.runtime import Simulator
from repro.runtime.explorer import (
    channels_property,
    combine_properties,
    explore_schedules,
    spec_property,
)
from repro.specs import (
    CausalBroadcastSpec,
    FirstKBroadcastSpec,
    SendToAllSpec,
    TotalOrderBroadcastSpec,
    UniformReliableBroadcastSpec,
)


def explorer(algorithm_class, n, scripts, prop, *, k=1, **kwargs):
    simulator = Simulator(
        n, lambda pid, size: algorithm_class(pid, size), k=k
    )
    return explore_schedules(simulator, scripts, prop, **kwargs)


class TestExhaustiveVerification:
    def test_urb_single_broadcast_all_schedules(self):
        result = explorer(
            UniformReliableBroadcast,
            2,
            {0: ["a"]},
            combine_properties(
                spec_property(UniformReliableBroadcastSpec()),
                channels_property(),
            ),
        )
        assert result.exhausted
        assert result.ok
        assert result.terminal_schedules == 8

    def test_send_to_all_two_senders_all_schedules(self):
        result = explorer(
            SendToAllBroadcast,
            2,
            {0: ["a"], 1: ["b"]},
            combine_properties(
                spec_property(SendToAllSpec()), channels_property()
            ),
        )
        assert result.exhausted
        assert result.ok
        assert result.terminal_schedules == 80

    def test_schedule_counts_are_deterministic(self):
        first = explorer(
            SendToAllBroadcast, 2, {0: ["a"], 1: ["b"]},
            channels_property(),
        )
        second = explorer(
            SendToAllBroadcast, 2, {0: ["a"], 1: ["b"]},
            channels_property(),
        )
        assert first.terminal_schedules == second.terminal_schedules
        assert first.schedules_explored == second.schedules_explored


class TestViolationSearch:
    def test_send_to_all_fails_total_order_somewhere(self):
        result = explorer(
            SendToAllBroadcast,
            2,
            {0: ["a"], 1: ["b"]},
            spec_property(TotalOrderBroadcastSpec(),
                          assume_complete=False),
            stop_at_first_violation=True,
        )
        assert not result.ok
        violation = result.violations[0]
        assert "different orders" in violation.problems[0]

    def test_violating_guide_replays_to_the_violation(self):
        result = explorer(
            SendToAllBroadcast,
            2,
            {0: ["a"], 1: ["b"]},
            spec_property(TotalOrderBroadcastSpec(),
                          assume_complete=False),
            stop_at_first_violation=True,
        )
        guide = list(result.violations[0].guide)
        simulator = Simulator(
            2,
            lambda pid, n: SendToAllBroadcast(pid, n),
            atomic_local=True,
        )
        replay = simulator.run({0: ["a"], 1: ["b"]}, guide=guide)
        verdict = TotalOrderBroadcastSpec().admits(
            replay.execution.broadcast_projection(),
            assume_complete=False,
        )
        assert not verdict.admitted

    def test_causal_violation_found_for_send_to_all(self):
        result = explorer(
            SendToAllBroadcast,
            2,
            {0: ["cause"], 1: ["effect"]},
            spec_property(CausalBroadcastSpec(), assume_complete=False),
            stop_at_first_violation=True,
        )
        # with only two processes every delivery order is causal unless
        # p1 replies after delivering; two concurrent broadcasts cannot
        # violate causality — the explorer proves it exhaustively...
        if result.ok:
            assert result.exhausted
        # ...so force a chain with three processes and a budget cap:
        result = explorer(
            SendToAllBroadcast,
            3,
            {0: ["cause"], 1: ["effect"]},
            spec_property(CausalBroadcastSpec(), assume_complete=False),
            stop_at_first_violation=True,
            max_schedules=5000,
        )
        # the chain cause -> (delivered at p1) -> effect can reach p2
        # inverted in some schedule
        assert not result.ok or not result.exhausted

    def test_first_k_holds_on_all_schedules_small(self):
        result = explorer(
            FirstKKsaBroadcast,
            3,
            {p: [f"m{p}"] for p in range(3)},
            spec_property(FirstKBroadcastSpec(2), assume_complete=False),
            k=2,
            max_schedules=2000,
        )
        assert result.ok  # within the explored budget


class TestBudgets:
    def test_max_schedules_caps_the_search(self):
        result = explorer(
            UniformReliableBroadcast,
            2,
            {0: ["a"], 1: ["b"]},
            channels_property(assume_complete=False),
            max_schedules=25,
        )
        assert not result.exhausted
        assert result.terminal_schedules == 25

    def test_result_rendering(self):
        result = explorer(
            UniformReliableBroadcast, 2, {0: ["a"]},
            channels_property(),
        )
        text = str(result)
        assert "exhaustive" in text
        assert "terminal" in text

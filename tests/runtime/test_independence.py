"""Commutation differential tests for the recorded-footprint relation.

The sleep-set reduction prunes a branch whenever
:func:`repro.runtime.independence.independent` claims the event it takes
commutes with an already-explored sibling, so a wrong ``True`` silently
drops schedules.  These tests hold the relation to its contract — that
commutation is *fingerprint-exact* — by brute force: over every state of
small configurations (and random walks through larger ones), every pair
of enabled choices the relation claims independent is executed in both
orders from forked handles, and the reached fingerprints and enabled
choice-key sets must be identical.

The other direction (dependent verdicts) is allowed to be conservative,
but the relation must not be vacuous: the Send-To-All configurations
must yield claimed-independent pairs, otherwise sleep sets prune
nothing and the reduction is dead code.

The crash-aware differential (``TestCrashAwareCommutation``) is the
tentpole's proof obligation made executable: at *every* reachable
decision point of the crash-heavy configurations where a crash is still
pending (located via ``Footprint.pending_deadlines``), every pair the
crash-aware relation claims independent — including the pairs the
historical blanket refused — is executed in both orders and compared
fingerprint-exactly.
"""

import random

import pytest

from repro.broadcasts import SendToAllBroadcast, UniformReliableBroadcast
from repro.runtime import CrashSchedule, Simulator
from repro.runtime.independence import (
    Footprint,
    choice_key,
    classify,
    conservative_independent,
    independent,
    observed_footprint,
)


def s2a(n=3, **kwargs):
    return Simulator(
        n, lambda pid, n_: SendToAllBroadcast(pid, n_),
        atomic_local=True, **kwargs,
    )


def urb(n=2, **kwargs):
    return Simulator(
        n, lambda pid, n_: UniformReliableBroadcast(pid, n_),
        atomic_local=True, **kwargs,
    )


CONFIGS = [
    pytest.param(s2a(), {0: ["a"], 1: ["b"]}, None, 6, id="s2a-async"),
    pytest.param(
        s2a(sync_broadcasts=True), {0: ["a"], 1: ["b"]}, None, 6,
        id="s2a-sync",
    ),
    pytest.param(
        s2a(), {0: ["a"], 1: ["b"]}, CrashSchedule(at_step={1: 3}), 6,
        id="s2a-crash",
    ),
    pytest.param(urb(), {0: ["a"], 1: ["b"]}, None, 5, id="urb-async"),
]


def reachable_states(simulator, scripts, crash_schedule, max_depth):
    """Every distinct state up to ``max_depth`` decisions, as handles."""
    root = simulator.begin(scripts, crash_schedule=crash_schedule)
    root.choices()
    frontier = [(root, 0)]
    seen = {root.fingerprint()}
    states = []
    while frontier:
        handle, depth = frontier.pop()
        states.append(handle)
        if depth >= max_depth:
            continue
        for index in range(len(handle.choices())):
            child = handle.fork()
            child.advance(index)
            child.choices()
            digest = child.fingerprint()
            if digest not in seen:
                seen.add(digest)
                frontier.append((child, depth + 1))
    return states


def take_by_key(handle, key):
    """Advance ``handle`` by the choice with identity ``key``."""
    for index, choice in enumerate(handle.choices()):
        if choice_key(choice) == key:
            handle.advance(index)

            handle.choices()  # run the prelude so footprints finalize
            return
    raise AssertionError(f"choice {key} not enabled — commutation broken")


def assert_pair_commutes(handle, index_a, index_b):
    """Execute both orders of (a, b) and compare the reached states."""
    choices = handle.choices()
    key_a = choice_key(choices[index_a])
    key_b = choice_key(choices[index_b])

    first = handle.fork()
    first.advance(index_a)
    first.choices()
    take_by_key(first, key_b)

    second = handle.fork()
    second.advance(index_b)
    second.choices()
    take_by_key(second, key_a)

    assert first.fingerprint() == second.fingerprint(), (
        f"claimed-independent pair {key_a} / {key_b} does not commute"
    )
    keys_first = {choice_key(c) for c in first.choices()}
    keys_second = {choice_key(c) for c in second.choices()}
    assert keys_first == keys_second


class TestExhaustiveCommutation:
    """Every claimed-independent pair at every reachable state commutes."""

    @pytest.mark.parametrize(
        "simulator, scripts, crashes, depth", CONFIGS
    )
    def test_all_pairs(self, simulator, scripts, crashes, depth):
        claimed = 0
        for handle in reachable_states(simulator, scripts, crashes, depth):
            choices = handle.choices()
            footprints = [
                observed_footprint(handle, index)
                for index in range(len(choices))
            ]
            for i in range(len(choices)):
                for j in range(i + 1, len(choices)):
                    if independent(footprints[i], footprints[j]):
                        claimed += 1
                        assert_pair_commutes(handle, i, j)
        # recorded for the non-vacuity checks below
        self.__class__.last_claimed = claimed

    def test_relation_not_vacuous_on_s2a(self):
        """Send-To-All receptions to distinct receivers must commute."""
        claimed = 0
        for handle in reachable_states(s2a(), {0: ["a"], 1: ["b"]}, None, 6):
            choices = handle.choices()
            footprints = [
                observed_footprint(handle, index)
                for index in range(len(choices))
            ]
            claimed += sum(
                independent(footprints[i], footprints[j])
                for i in range(len(choices))
                for j in range(i + 1, len(choices))
            )
        assert claimed > 0, "no independent pairs: sleep sets are dead code"

    def test_urb_first_receptions_dependent(self):
        """A URB reception that forwards emits sends: never independent."""
        simulator = urb()
        handle = simulator.begin({0: ["a"]})
        handle.choices()
        # take the broadcast, leaving one copy per receiver enabled
        take_by_key(handle, ("bcast", 0))
        choices = handle.choices()
        by_receiver = {
            choice_key(choice)[2]: index
            for index, choice in enumerate(choices)
            if choice[0] == "recv"
        }
        assert set(by_receiver) == {0, 1}
        own = observed_footprint(handle, by_receiver[0])
        first = observed_footprint(handle, by_receiver[1])
        # p0 already knows its own message: the self-copy is a duplicate
        assert own is not None and not own.sent
        # p1 learns it here and forwards to all — recorded as emissions
        assert first is not None and first.sent
        assert not independent(own, first)


class TestRandomizedCommutation:
    """Random walks through a deeper tree, probing random enabled pairs."""

    @pytest.mark.parametrize(
        "simulator, scripts, crashes",
        [
            pytest.param(
                s2a(), {0: ["a"], 1: ["b"], 2: ["c"]}, None, id="s2a-n3"
            ),
            pytest.param(
                urb(), {0: ["a"], 1: ["b"]},
                CrashSchedule(at_step={0: 4}), id="urb-crash",
            ),
        ],
    )
    def test_random_walks(self, simulator, scripts, crashes):
        rng = random.Random(20240806)
        for _ in range(40):
            handle = simulator.begin(scripts, crash_schedule=crashes)
            handle.choices()
            for _ in range(rng.randint(0, 10)):
                choices = handle.choices()
                if not choices:
                    break
                if len(choices) >= 2:
                    i, j = rng.sample(range(len(choices)), 2)
                    a = observed_footprint(handle, i)
                    b = observed_footprint(handle, j)
                    if independent(a, b):
                        assert_pair_commutes(handle, min(i, j), max(i, j))
                handle.advance(rng.randrange(len(choices)))
                handle.choices()


CRASH_HEAVY_CONFIGS = [
    pytest.param(
        s2a(), {0: ["a"], 1: ["b"]}, CrashSchedule(at_step={2: 4}), 8,
        id="s2a-crash-late",
    ),
    pytest.param(
        s2a(), {0: ["a"], 1: ["b"]}, CrashSchedule(at_step={1: 4}), 8,
        id="s2a-crash-mid",
    ),
    # n=3 with a non-broadcasting victim: with only two processes the
    # crash-aware proof has no disjoint pair avoiding the victim, so a
    # two-process config cannot witness the refinement
    pytest.param(
        urb(n=3), {0: ["a"]}, CrashSchedule(at_step={2: 6}), 5,
        id="urb-crash",
    ),
]


class TestCrashAwareCommutation:
    """Both orders at every pending-crash decision point, exhaustively."""

    @pytest.mark.parametrize(
        "simulator, scripts, crashes, depth", CRASH_HEAVY_CONFIGS
    )
    def test_every_pending_crash_decision_point(
        self, simulator, scripts, crashes, depth
    ):
        pending_points = 0
        crash_proofs = 0
        for handle in reachable_states(simulator, scripts, crashes, depth):
            choices = handle.choices()
            if not choices:
                continue
            footprints = [
                observed_footprint(handle, index)
                for index in range(len(choices))
            ]
            live = [f for f in footprints if f is not None and f.pending]
            if not live:
                continue  # the schedule drained: blanket and aware agree
            pending_points += 1
            for footprint in live:
                # the deadlines locate the pending injections exactly
                assert set(dict(footprint.pending_deadlines)) == set(
                    footprint.pending
                )
                for victim, deadline in footprint.pending_deadlines:
                    assert crashes.at_step[victim] == deadline
                # the imminent set is exactly the deadline==next-count
                # slice of the pending schedule (the probe committed at
                # handle.steps + 1, so "next" is handle.steps + 2)
                assert footprint.imminent == frozenset(
                    victim
                    for victim, deadline in footprint.pending_deadlines
                    if deadline == handle.steps + 2
                )
                assert footprint.imminent <= footprint.pending
            for i in range(len(choices)):
                for j in range(i + 1, len(choices)):
                    a, b = footprints[i], footprints[j]
                    verdict, source = classify(a, b)
                    assert verdict == independent(a, b)
                    if not verdict:
                        continue
                    if source == "crash_proof":
                        crash_proofs += 1
                        # the blanket would have kept this branch
                        assert not conservative_independent(a, b)
                    assert_pair_commutes(handle, i, j)
        assert pending_points > 0, "no pending-crash decision points probed"
        assert crash_proofs > 0, (
            "crash-aware proof never fired: the refinement is dead code"
        )


class TestClassify:
    """Verdict sources and the blanket/aware strictness ordering."""

    def test_sources(self):
        free_a = Footprint("recv", frozenset({0}))
        free_b = Footprint("recv", frozenset({1}))
        assert classify(free_a, free_b) == (True, "dynamic")

        pend_a = Footprint("recv", frozenset({0}), pending=frozenset({2}))
        pend_b = Footprint("recv", frozenset({1}), pending=frozenset({2}))
        assert classify(pend_a, pend_b) == (True, "crash_proof")

        # touching a victim whose deadline is *distant* is fine: the
        # injection fires after both events in either order
        distant = Footprint("recv", frozenset({2}), pending=frozenset({2}))
        assert classify(distant, pend_b) == (True, "crash_proof")

        # touching a victim due at the very next decision count is not:
        # the injection lands inside the swapped pair's window
        victim = Footprint(
            "recv",
            frozenset({2}),
            pending=frozenset({2}),
            imminent=frozenset({2}),
        )
        assert classify(victim, pend_b) == (False, "conservative")
        assert classify(None, free_a) == (False, "conservative")

        # a crash that fired between the pair lands at the same count
        # in both orders — fine as long as neither event touched the
        # victim it killed
        straddle = Footprint(
            "recv", frozenset({0}), crashed=True,
            crashed_pids=frozenset({2}),
        )
        assert classify(straddle, pend_b) == (True, "crash_proof")
        toucher = Footprint("recv", frozenset({1, 2}))
        assert classify(straddle, toucher) == (False, "conservative")

    def test_conservative_implies_independent(self):
        # the blanket only ever *declines more*: anything it accepts,
        # the crash-aware relation accepts with source "dynamic"
        samples = [
            Footprint("recv", frozenset({0})),
            Footprint("recv", frozenset({1})),
            Footprint("recv", frozenset({0}), pending=frozenset({2})),
            Footprint("recv", frozenset({1}), pending=frozenset({2})),
            Footprint("recv", frozenset({2}), pending=frozenset({2})),
            Footprint("bcast", frozenset({0}), oracle=True),
            Footprint("recv", frozenset({0}), crashed=True),
            None,
        ]
        for a in samples:
            for b in samples:
                if conservative_independent(a, b):
                    assert classify(a, b) == (True, "dynamic")

    def test_strictly_more_permissive_under_pending(self):
        pend_a = Footprint("recv", frozenset({0}), pending=frozenset({2}))
        pend_b = Footprint("recv", frozenset({1}), pending=frozenset({2}))
        assert independent(pend_a, pend_b)
        assert not conservative_independent(pend_a, pend_b)


class TestPendingDeadlines:
    """``Footprint.pending_deadlines`` mirrors the live crash schedule."""

    def test_recorded_for_alive_victims(self):
        crashes = CrashSchedule(at_step={1: 3, 2: 5})
        handle = s2a(n=3).begin({0: ["a"]}, crash_schedule=crashes)
        handle.choices()
        handle.advance(0)
        handle.choices()
        footprint = handle.last_footprint
        assert footprint is not None
        assert footprint.pending == frozenset({1, 2})
        assert footprint.pending_deadlines == ((1, 3), (2, 5))

    def test_dropped_once_the_victim_dies(self):
        crashes = CrashSchedule(at_step={1: 1})
        handle = s2a(n=2).begin({0: ["a"]}, crash_schedule=crashes)
        handle.choices()
        handle.advance(0)
        handle.choices()  # this prelude injects the crash
        crashed = handle.last_footprint
        assert crashed is not None and crashed.crashed
        assert crashed.pending == frozenset()
        assert crashed.pending_deadlines == ()


class TestFootprintShape:
    """The recorded footprints carry what the docstrings promise."""

    def test_crash_marks_inflight_footprint(self):
        simulator = s2a(n=2)
        crashes = CrashSchedule(at_step={1: 1})
        handle = simulator.begin({0: ["a"]}, crash_schedule=crashes)
        handle.choices()
        handle.advance(0)  # the decision whose successor prelude crashes p1
        handle.choices()
        footprint = handle.last_footprint
        assert footprint is not None and footprint.crashed

    def test_terminal_probe_raises_a_clear_error(self):
        # Regression: probing a quiescent run used to fall through to
        # advance(), whose out-of-range index error hid the real cause.
        simulator = s2a(n=2)
        handle = simulator.begin({0: ["a"]})
        while handle.choices():
            handle.advance(0)
        with pytest.raises(ValueError, match="terminal run"):
            observed_footprint(handle, 0)
        # the probe runs on a fork: the original handle is untouched
        assert handle.choices() == []

    def test_probe_enumerates_choices_once(self, monkeypatch):
        # Regression: the probe used to enumerate twice (terminal guard
        # on the fork + prelude finalization).  The guard now runs on
        # the already-cached parent and the fork inherits that cache,
        # so only the post-event prelude enumerates fresh state.
        from repro.runtime.simulator import SimulationRun

        simulator = s2a(n=3)
        crashes = CrashSchedule(at_step={1: 3})
        handle = simulator.begin(
            {0: ["a"], 1: ["b"]}, crash_schedule=crashes
        )
        before = list(handle.choices())  # cache the parent enumeration

        calls = {"fresh": 0}
        real = SimulationRun._enabled_choices

        def counting(self):
            calls["fresh"] += 1
            return real(self)

        monkeypatch.setattr(SimulationRun, "_enabled_choices", counting)
        footprint = observed_footprint(handle, 0)
        assert footprint is not None
        assert calls["fresh"] == 1, (
            f"probe enumerated {calls['fresh']} times, expected 1"
        )
        # the probe ran on a fork: the parent still serves its cache
        assert handle.choices() == before
        assert calls["fresh"] == 1

    def test_probe_footprint_matches_direct_advance(self):
        # Regression companion: collapsing the double enumeration must
        # not change footprint contents — the probe observes exactly
        # what advancing a fork directly records, crash prelude and all.
        crashes = CrashSchedule(at_step={1: 3})
        for handle in reachable_states(
            s2a(), {0: ["a"], 1: ["b"]}, crashes, 5
        ):
            for index in range(len(handle.choices())):
                direct = handle.fork()
                direct.advance(index)
                direct.choices()
                assert observed_footprint(handle, index) == (
                    direct.last_footprint
                )

    def test_choice_keys_stable_across_siblings(self):
        simulator = s2a(n=3)
        handle = simulator.begin({0: ["a"], 1: ["b"]})
        choices = handle.choices()
        keys = {choice_key(c) for c in choices}
        # taking one branch re-indexes the rest but keeps their keys
        taken = choice_key(choices[0])
        handle.advance(0)
        handle.choices()
        after = {choice_key(c) for c in handle.choices()}
        assert (keys - {taken}) <= after

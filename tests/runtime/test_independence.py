"""Commutation differential tests for the recorded-footprint relation.

The sleep-set reduction prunes a branch whenever
:func:`repro.runtime.independence.independent` claims the event it takes
commutes with an already-explored sibling, so a wrong ``True`` silently
drops schedules.  These tests hold the relation to its contract — that
commutation is *fingerprint-exact* — by brute force: over every state of
small configurations (and random walks through larger ones), every pair
of enabled choices the relation claims independent is executed in both
orders from forked handles, and the reached fingerprints and enabled
choice-key sets must be identical.

The other direction (dependent verdicts) is allowed to be conservative,
but the relation must not be vacuous: the Send-To-All configurations
must yield claimed-independent pairs, otherwise sleep sets prune
nothing and the reduction is dead code.
"""

import random

import pytest

from repro.broadcasts import SendToAllBroadcast, UniformReliableBroadcast
from repro.runtime import CrashSchedule, Simulator
from repro.runtime.independence import (
    choice_key,
    independent,
    observed_footprint,
)


def s2a(n=3, **kwargs):
    return Simulator(
        n, lambda pid, n_: SendToAllBroadcast(pid, n_),
        atomic_local=True, **kwargs,
    )


def urb(n=2, **kwargs):
    return Simulator(
        n, lambda pid, n_: UniformReliableBroadcast(pid, n_),
        atomic_local=True, **kwargs,
    )


CONFIGS = [
    pytest.param(s2a(), {0: ["a"], 1: ["b"]}, None, 6, id="s2a-async"),
    pytest.param(
        s2a(sync_broadcasts=True), {0: ["a"], 1: ["b"]}, None, 6,
        id="s2a-sync",
    ),
    pytest.param(
        s2a(), {0: ["a"], 1: ["b"]}, CrashSchedule(at_step={1: 3}), 6,
        id="s2a-crash",
    ),
    pytest.param(urb(), {0: ["a"], 1: ["b"]}, None, 5, id="urb-async"),
]


def reachable_states(simulator, scripts, crash_schedule, max_depth):
    """Every distinct state up to ``max_depth`` decisions, as handles."""
    root = simulator.begin(scripts, crash_schedule=crash_schedule)
    root.choices()
    frontier = [(root, 0)]
    seen = {root.fingerprint()}
    states = []
    while frontier:
        handle, depth = frontier.pop()
        states.append(handle)
        if depth >= max_depth:
            continue
        for index in range(len(handle.choices())):
            child = handle.fork()
            child.advance(index)
            child.choices()
            digest = child.fingerprint()
            if digest not in seen:
                seen.add(digest)
                frontier.append((child, depth + 1))
    return states


def take_by_key(handle, key):
    """Advance ``handle`` by the choice with identity ``key``."""
    for index, choice in enumerate(handle.choices()):
        if choice_key(choice) == key:
            handle.advance(index)

            handle.choices()  # run the prelude so footprints finalize
            return
    raise AssertionError(f"choice {key} not enabled — commutation broken")


def assert_pair_commutes(handle, index_a, index_b):
    """Execute both orders of (a, b) and compare the reached states."""
    choices = handle.choices()
    key_a = choice_key(choices[index_a])
    key_b = choice_key(choices[index_b])

    first = handle.fork()
    first.advance(index_a)
    first.choices()
    take_by_key(first, key_b)

    second = handle.fork()
    second.advance(index_b)
    second.choices()
    take_by_key(second, key_a)

    assert first.fingerprint() == second.fingerprint(), (
        f"claimed-independent pair {key_a} / {key_b} does not commute"
    )
    keys_first = {choice_key(c) for c in first.choices()}
    keys_second = {choice_key(c) for c in second.choices()}
    assert keys_first == keys_second


class TestExhaustiveCommutation:
    """Every claimed-independent pair at every reachable state commutes."""

    @pytest.mark.parametrize(
        "simulator, scripts, crashes, depth", CONFIGS
    )
    def test_all_pairs(self, simulator, scripts, crashes, depth):
        claimed = 0
        for handle in reachable_states(simulator, scripts, crashes, depth):
            choices = handle.choices()
            footprints = [
                observed_footprint(handle, index)
                for index in range(len(choices))
            ]
            for i in range(len(choices)):
                for j in range(i + 1, len(choices)):
                    if independent(footprints[i], footprints[j]):
                        claimed += 1
                        assert_pair_commutes(handle, i, j)
        # recorded for the non-vacuity checks below
        self.__class__.last_claimed = claimed

    def test_relation_not_vacuous_on_s2a(self):
        """Send-To-All receptions to distinct receivers must commute."""
        claimed = 0
        for handle in reachable_states(s2a(), {0: ["a"], 1: ["b"]}, None, 6):
            choices = handle.choices()
            footprints = [
                observed_footprint(handle, index)
                for index in range(len(choices))
            ]
            claimed += sum(
                independent(footprints[i], footprints[j])
                for i in range(len(choices))
                for j in range(i + 1, len(choices))
            )
        assert claimed > 0, "no independent pairs: sleep sets are dead code"

    def test_urb_first_receptions_dependent(self):
        """A URB reception that forwards emits sends: never independent."""
        simulator = urb()
        handle = simulator.begin({0: ["a"]})
        handle.choices()
        # take the broadcast, leaving one copy per receiver enabled
        take_by_key(handle, ("bcast", 0))
        choices = handle.choices()
        by_receiver = {
            choice_key(choice)[2]: index
            for index, choice in enumerate(choices)
            if choice[0] == "recv"
        }
        assert set(by_receiver) == {0, 1}
        own = observed_footprint(handle, by_receiver[0])
        first = observed_footprint(handle, by_receiver[1])
        # p0 already knows its own message: the self-copy is a duplicate
        assert own is not None and not own.sent
        # p1 learns it here and forwards to all — recorded as emissions
        assert first is not None and first.sent
        assert not independent(own, first)


class TestRandomizedCommutation:
    """Random walks through a deeper tree, probing random enabled pairs."""

    @pytest.mark.parametrize(
        "simulator, scripts, crashes",
        [
            pytest.param(
                s2a(), {0: ["a"], 1: ["b"], 2: ["c"]}, None, id="s2a-n3"
            ),
            pytest.param(
                urb(), {0: ["a"], 1: ["b"]},
                CrashSchedule(at_step={0: 4}), id="urb-crash",
            ),
        ],
    )
    def test_random_walks(self, simulator, scripts, crashes):
        rng = random.Random(20240806)
        for _ in range(40):
            handle = simulator.begin(scripts, crash_schedule=crashes)
            handle.choices()
            for _ in range(rng.randint(0, 10)):
                choices = handle.choices()
                if not choices:
                    break
                if len(choices) >= 2:
                    i, j = rng.sample(range(len(choices)), 2)
                    a = observed_footprint(handle, i)
                    b = observed_footprint(handle, j)
                    if independent(a, b):
                        assert_pair_commutes(handle, min(i, j), max(i, j))
                handle.advance(rng.randrange(len(choices)))
                handle.choices()


class TestFootprintShape:
    """The recorded footprints carry what the docstrings promise."""

    def test_crash_marks_inflight_footprint(self):
        simulator = s2a(n=2)
        crashes = CrashSchedule(at_step={1: 1})
        handle = simulator.begin({0: ["a"]}, crash_schedule=crashes)
        handle.choices()
        handle.advance(0)  # the decision whose successor prelude crashes p1
        handle.choices()
        footprint = handle.last_footprint
        assert footprint is not None and footprint.crashed

    def test_terminal_probe_raises_a_clear_error(self):
        # Regression: probing a quiescent run used to fall through to
        # advance(), whose out-of-range index error hid the real cause.
        simulator = s2a(n=2)
        handle = simulator.begin({0: ["a"]})
        while handle.choices():
            handle.advance(0)
        with pytest.raises(ValueError, match="terminal run"):
            observed_footprint(handle, 0)
        # the probe runs on a fork: the original handle is untouched
        assert handle.choices() == []

    def test_choice_keys_stable_across_siblings(self):
        simulator = s2a(n=3)
        handle = simulator.begin({0: ["a"], 1: ["b"]})
        choices = handle.choices()
        keys = {choice_key(c) for c in choices}
        # taking one branch re-indexes the rest but keeps their keys
        taken = choice_key(choices[0])
        handle.advance(0)
        handle.choices()
        after = {choice_key(c) for c in handle.choices()}
        assert (keys - {taken}) <= after

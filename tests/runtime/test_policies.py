"""Tests for the scheduling policies shaping simulator asynchrony."""

import pytest

from repro.broadcasts import (
    CausalBroadcast,
    KboAttemptBroadcast,
    ScdBroadcast,
    SendToAllBroadcast,
)
from repro.core import check_channels
from repro.runtime import (
    ChannelFifoPolicy,
    LockstepPolicy,
    Simulator,
    TargetedDelayPolicy,
    UniformPolicy,
)
from repro.specs import (
    CausalBroadcastSpec,
    KboBroadcastSpec,
    TotalOrderBroadcastSpec,
)


def run(algorithm_class, policy, *, n=4, seed=0, k=1, per_process=3):
    simulator = Simulator(
        n,
        lambda pid, size: algorithm_class(pid, size),
        k=k,
        seed=seed,
        scheduling_policy=policy,
    )
    scripts = {
        p: [f"m{p}.{i}" for i in range(per_process)] for p in range(n)
    }
    return simulator.run(scripts)


class TestLockstep:
    def test_deterministic_across_seeds(self):
        first = run(SendToAllBroadcast, LockstepPolicy(), seed=1)
        second = run(SendToAllBroadcast, LockstepPolicy(), seed=99)
        assert first.execution == second.execution

    @pytest.mark.parametrize("seed", range(3))
    def test_kbo_attempt_satisfies_kbo_under_lockstep(self, seed):
        result = run(KboAttemptBroadcast, LockstepPolicy(), seed=seed, k=2)
        assert result.quiescent
        verdict = KboBroadcastSpec(2).admits(
            result.execution.broadcast_projection(),
            assume_complete=False,
        )
        assert verdict.admitted

    def test_lockstep_send_to_all_is_totally_ordered(self):
        result = run(SendToAllBroadcast, LockstepPolicy())
        verdict = TotalOrderBroadcastSpec().admits(
            result.execution.broadcast_projection(),
            assume_complete=False,
        )
        assert verdict.admitted


class TestTargetedDelay:
    def test_starves_until_deadline_then_releases(self):
        policy = TargetedDelayPolicy(victim=2, until_step=50)
        result = run(SendToAllBroadcast, policy, n=3, seed=0)
        assert result.quiescent  # embargo lifts, liveness preserved
        assert check_channels(result.execution).ok
        # the victim's first reception happens only after the deadline
        first_recv = next(
            index
            for index, step in enumerate(result.execution)
            if step.process == 2 and step.is_receive()
        )
        assert first_recv >= 40

    def test_manufactures_causal_anomaly_for_send_to_all(self):
        violated = False
        for seed in range(10):
            policy = TargetedDelayPolicy(victim=2, until_step=60)
            simulator = Simulator(
                3,
                lambda pid, n: SendToAllBroadcast(pid, n),
                seed=seed,
                scheduling_policy=policy,
            )
            result = simulator.run({0: ["cause"], 1: ["effect"], 2: []})
            verdict = CausalBroadcastSpec().admits(
                result.execution.broadcast_projection(),
                assume_complete=False,
            )
            if not verdict.admitted:
                violated = True
                break
        assert violated

    def test_causal_broadcast_immune_to_the_same_policy(self):
        for seed in range(5):
            policy = TargetedDelayPolicy(victim=2, until_step=60)
            simulator = Simulator(
                3,
                lambda pid, n: CausalBroadcast(pid, n),
                seed=seed,
                scheduling_policy=policy,
            )
            result = simulator.run({0: ["cause"], 1: ["effect"], 2: []})
            assert result.quiescent
            verdict = CausalBroadcastSpec().admits(
                result.execution.broadcast_projection()
            )
            assert verdict.admitted


class TestChannelFifo:
    def test_per_channel_receptions_are_fifo(self):
        result = run(SendToAllBroadcast, ChannelFifoPolicy(), seed=3)
        assert result.quiescent
        seen: dict[tuple[int, int], int] = {}
        for step in result.execution:
            if step.is_receive():
                p2p = step.action.p2p
                channel = (p2p.sender, p2p.receiver)
                assert seen.get(channel, -1) < p2p.seq
                seen[channel] = p2p.seq

    def test_quiescent_and_axioms_hold(self):
        result = run(ScdBroadcast, ChannelFifoPolicy(), seed=5)
        assert result.quiescent
        assert check_channels(result.execution).ok


class TestUniformDefault:
    def test_explicit_uniform_equals_default(self):
        explicit = run(SendToAllBroadcast, UniformPolicy(), seed=7)
        default = Simulator(
            4, lambda pid, n: SendToAllBroadcast(pid, n), seed=7
        ).run({p: [f"m{p}.{i}" for i in range(3)] for p in range(4)})
        assert explicit.execution == default.execution

"""Unit tests for the trace recorder and crash schedules."""

from repro.core import MessageFactory
from repro.core.actions import PointToPointId
from repro.runtime import CrashSchedule, TraceRecorder


class TestTraceRecorder:
    def test_each_kind_recorded(self):
        trace = TraceRecorder(2)
        factory = MessageFactory()
        message = factory.new(0, "c")
        p2p = PointToPointId(0, 1, 0)
        trace.broadcast_invoke(0, message)
        trace.send(0, p2p, "payload")
        trace.receive(1, p2p, "payload")
        trace.deliver(1, message)
        trace.propose(1, "obj", "v")
        trace.decide(1, "obj", "v")
        trace.broadcast_return(0, message)
        trace.local(0, "note")
        trace.crash(1)
        execution = trace.execution()
        assert len(execution) == 9
        assert execution.check_well_formed() == []
        assert execution.crashed == {1}

    def test_mark_is_a_stable_position(self):
        trace = TraceRecorder(1)
        assert trace.mark() == 0
        trace.local(0)
        mark = trace.mark()
        trace.local(0)
        assert mark == 1
        assert len(trace.execution().prefix(mark)) == 1

    def test_execution_is_a_snapshot(self):
        trace = TraceRecorder(1)
        trace.local(0)
        snapshot = trace.execution()
        trace.local(0)
        assert len(snapshot) == 1
        assert len(trace.execution()) == 2

    def test_last(self):
        trace = TraceRecorder(1)
        assert trace.last is None
        step = trace.local(0, "x")
        assert trace.last is step


class TestCrashSchedule:
    def test_none_schedule(self):
        schedule = CrashSchedule.none()
        assert schedule.faulty() == frozenset()
        assert not schedule.due(0, 100)

    def test_initial_crashes(self):
        schedule = CrashSchedule.initial([1, 2])
        assert schedule.initially == {1, 2}
        assert schedule.faulty() == {1, 2}

    def test_due_at_and_after_deadline(self):
        schedule = CrashSchedule({0: 5})
        assert not schedule.due(0, 4)
        assert schedule.due(0, 5)
        assert schedule.due(0, 6)
        assert not schedule.due(1, 100)

    def test_faulty_combines_both_forms(self):
        schedule = CrashSchedule({0: 5}, initially=frozenset({3}))
        assert schedule.faulty() == {0, 3}

"""The oracle decision policy shapes agreement outcomes in the simulator.

The k-SA objects are axiomatic: any decision pattern within their three
properties is legal, and *which* legal pattern the environment picks is
adversarial freedom (Algorithm 1's whole leverage).  These tests show
the same freedom through the free simulator's pluggable policies: with
consensus oracles (k = 1) the First-k broadcast has a single first
delivery; with k-SA oracles the policies realize anywhere up to the k
distinct first deliveries the specification permits.
"""

import pytest

from repro.broadcasts import FirstKKsaBroadcast
from repro.core.order import first_delivered_set
from repro.runtime import (
    FirstProposalsPolicy,
    OwnValuePolicy,
    ScriptedPolicy,
    Simulator,
)
from repro.specs import FirstKBroadcastSpec


def heads_of(policy, *, k=2, n=4, seed=0):
    simulator = Simulator(
        n,
        lambda pid, size: FirstKKsaBroadcast(pid, size),
        k=k,
        ksa_policy=policy,
        seed=seed,
    )
    result = simulator.run({p: [f"m{p}"] for p in range(n)})
    return first_delivered_set(result.execution.broadcast_projection())


class TestPolicyShapesOutcomes:
    @pytest.mark.parametrize("seed", range(3))
    def test_consensus_oracle_gives_single_head(self, seed):
        assert len(heads_of(FirstProposalsPolicy(), k=1, seed=seed)) == 1

    @pytest.mark.parametrize("k", [2, 3])
    def test_own_value_policy_realizes_k_heads(self, k):
        assert len(heads_of(OwnValuePolicy(), k=k, seed=1)) == k

    @pytest.mark.parametrize("k", [2, 3])
    @pytest.mark.parametrize("seed", range(3))
    def test_heads_always_bounded_by_k(self, k, seed):
        for policy in (FirstProposalsPolicy(), OwnValuePolicy(),
                       ScriptedPolicy({})):
            assert len(heads_of(policy, k=k, seed=seed)) <= k

    @pytest.mark.parametrize("k", [2, 3])
    def test_spec_holds_under_every_policy(self, k):
        for policy in (FirstProposalsPolicy(), OwnValuePolicy()):
            simulator = Simulator(
                4,
                lambda pid, size: FirstKKsaBroadcast(pid, size),
                k=k,
                ksa_policy=policy,
                seed=2,
            )
            result = simulator.run({p: [f"m{p}"] for p in range(4)})
            verdict = FirstKBroadcastSpec(k).admits(
                result.execution.broadcast_projection()
            )
            assert verdict.admitted

    def test_empty_script_falls_back_to_own_value(self):
        scripted = heads_of(ScriptedPolicy({}), k=2, seed=1)
        own = heads_of(OwnValuePolicy(), k=2, seed=1)
        assert scripted == own

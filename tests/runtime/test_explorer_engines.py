"""Differential tests of the exploration engines.

The incremental engine (resumable run handles, fork-at-branch) and the
historical replay engine (guided re-runs from scratch) must explore the
exact same schedule tree: same node and terminal counts, same violations
with the same reproduction guides.  The parallel front-end must merge
per-shard outcomes back into exactly the sequential result.  And every
violation guide must round-trip through ``Simulator.run(..., guide=...)``
to the same execution and the same violations.
"""

import pytest

from repro.broadcasts import SendToAllBroadcast, UniformReliableBroadcast
from repro.runtime import CrashSchedule, Simulator
from repro.runtime.explorer import (
    channels_property,
    combine_properties,
    explore_schedules,
    spec_property,
)
from repro.specs import (
    SendToAllSpec,
    TotalOrderBroadcastSpec,
    UniformReliableBroadcastSpec,
)


def urb_simulator(**kwargs):
    return Simulator(
        2, lambda pid, n: UniformReliableBroadcast(pid, n), **kwargs
    )


def s2a_simulator(n=2, **kwargs):
    return Simulator(
        n, lambda pid, n_: SendToAllBroadcast(pid, n_), **kwargs
    )


def total_order():
    return spec_property(TotalOrderBroadcastSpec(), assume_complete=False)


class TestEngineEquivalence:
    """incremental and replay visit the identical tree."""

    CONFIGS = [
        (
            urb_simulator(),
            {0: ["a"]},
            combine_properties(
                spec_property(UniformReliableBroadcastSpec()),
                channels_property(),
            ),
        ),
        (
            s2a_simulator(),
            {0: ["a"], 1: ["b"]},
            combine_properties(
                spec_property(SendToAllSpec()), channels_property()
            ),
        ),
        (s2a_simulator(), {0: ["a"], 1: ["b"]}, total_order()),
    ]

    @pytest.mark.parametrize("simulator, scripts, prop", CONFIGS)
    def test_same_tree_same_violations(self, simulator, scripts, prop):
        incremental = explore_schedules(simulator, scripts, prop)
        replay = explore_schedules(simulator, scripts, prop, engine="replay")
        assert incremental.terminal_schedules == replay.terminal_schedules
        assert incremental.schedules_explored == replay.schedules_explored
        assert incremental.max_depth_seen == replay.max_depth_seen
        assert incremental.exhausted and replay.exhausted
        assert [v.guide for v in incremental.violations] == [
            v.guide for v in replay.violations
        ]
        assert [v.problems for v in incremental.violations] == [
            v.problems for v in replay.violations
        ]

    def test_agree_under_budget_cap(self):
        for engine in ("incremental", "replay"):
            result = explore_schedules(
                s2a_simulator(),
                {0: ["a"], 1: ["b"]},
                channels_property(assume_complete=False),
                max_schedules=25,
                engine=engine,
            )
            assert result.terminal_schedules == 25
            assert not result.exhausted
            assert not result.aborted

    def test_agree_under_crash_schedule(self):
        crashes = CrashSchedule(at_step={1: 3})
        kwargs = dict(crash_schedule=crashes, max_schedules=300)
        incremental = explore_schedules(
            s2a_simulator(3), {0: ["a"], 1: ["b"]}, total_order(), **kwargs
        )
        replay = explore_schedules(
            s2a_simulator(3),
            {0: ["a"], 1: ["b"]},
            total_order(),
            engine="replay",
            **kwargs,
        )
        assert incremental.terminal_schedules == replay.terminal_schedules
        assert incremental.violations, "config expected to violate"
        assert [v.guide for v in incremental.violations] == [
            v.guide for v in replay.violations
        ]

    def test_incremental_replays_far_fewer_events(self):
        """The point of the rebuild: >= 3x fewer re-executed events."""
        prop = channels_property()
        incremental = explore_schedules(
            s2a_simulator(), {0: ["a"], 1: ["b"]}, prop
        )
        replay = explore_schedules(
            s2a_simulator(), {0: ["a"], 1: ["b"]}, prop, engine="replay"
        )
        assert incremental.events_replayed * 3 <= replay.events_replayed

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            explore_schedules(
                urb_simulator(), {0: ["a"]}, channels_property(),
                engine="quantum",
            )


class TestStopModes:
    """`stop_at_first_violation` aborts: not exhausted, flagged aborted."""

    @pytest.mark.parametrize("engine", ["incremental", "replay"])
    def test_stop_mode_reports_aborted_not_exhausted(self, engine):
        result = explore_schedules(
            s2a_simulator(),
            {0: ["a"], 1: ["b"]},
            total_order(),
            stop_at_first_violation=True,
            engine=engine,
        )
        assert len(result.violations) == 1
        assert result.aborted
        assert not result.exhausted
        assert "aborted" in str(result)

    @pytest.mark.parametrize("engine", ["incremental", "replay"])
    def test_full_mode_collects_all_violations(self, engine):
        result = explore_schedules(
            s2a_simulator(), {0: ["a"], 1: ["b"]}, total_order(),
            engine=engine,
        )
        assert len(result.violations) == 36
        assert not result.aborted
        assert result.exhausted
        assert "exhaustive" in str(result)

    @pytest.mark.parametrize("engine", ["incremental", "replay"])
    def test_both_modes_find_the_same_first_violation(self, engine):
        stopped = explore_schedules(
            s2a_simulator(),
            {0: ["a"], 1: ["b"]},
            total_order(),
            stop_at_first_violation=True,
            engine=engine,
        )
        full = explore_schedules(
            s2a_simulator(), {0: ["a"], 1: ["b"]}, total_order(),
            engine=engine,
        )
        assert stopped.violations[0] == full.violations[0]

    def test_clean_exhaustive_run_is_not_aborted(self):
        result = explore_schedules(
            urb_simulator(),
            {0: ["a"]},
            channels_property(),
            stop_at_first_violation=True,
        )
        assert result.ok
        assert result.exhausted
        assert not result.aborted


class TestParallelExploration:
    """Sharded exploration merges back to the sequential result."""

    @pytest.mark.parametrize("workers", [2, 3])
    def test_parallel_matches_sequential(self, workers):
        sequential = explore_schedules(
            s2a_simulator(), {0: ["a"], 1: ["b"]}, total_order()
        )
        parallel = explore_schedules(
            s2a_simulator(), {0: ["a"], 1: ["b"]}, total_order(),
            workers=workers,
        )
        assert parallel.workers == workers
        assert parallel.terminal_schedules == sequential.terminal_schedules
        assert parallel.schedules_explored == sequential.schedules_explored
        assert parallel.exhausted == sequential.exhausted
        assert parallel.violations == sequential.violations

    def test_parallel_runs_are_deterministic(self):
        first = explore_schedules(
            s2a_simulator(), {0: ["a"], 1: ["b"]}, total_order(), workers=3
        )
        second = explore_schedules(
            s2a_simulator(), {0: ["a"], 1: ["b"]}, total_order(), workers=3
        )
        assert first == second

    def test_parallel_budget_cap_matches_sequential_terminals(self):
        sequential = explore_schedules(
            s2a_simulator(),
            {0: ["a"], 1: ["b"]},
            channels_property(assume_complete=False),
            max_schedules=25,
        )
        parallel = explore_schedules(
            s2a_simulator(),
            {0: ["a"], 1: ["b"]},
            channels_property(assume_complete=False),
            max_schedules=25,
            workers=2,
        )
        assert parallel.terminal_schedules == 25
        assert not parallel.exhausted
        assert parallel.violations == sequential.violations

    def test_parallel_stop_mode_finds_first_violation(self):
        sequential = explore_schedules(
            s2a_simulator(),
            {0: ["a"], 1: ["b"]},
            total_order(),
            stop_at_first_violation=True,
        )
        parallel = explore_schedules(
            s2a_simulator(),
            {0: ["a"], 1: ["b"]},
            total_order(),
            stop_at_first_violation=True,
            workers=2,
        )
        assert parallel.aborted
        assert not parallel.exhausted
        assert parallel.violations[0] == sequential.violations[0]

    def test_parallel_requires_incremental_engine(self):
        with pytest.raises(ValueError, match="incremental"):
            explore_schedules(
                urb_simulator(), {0: ["a"]}, channels_property(),
                engine="replay", workers=2,
            )

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            explore_schedules(
                urb_simulator(), {0: ["a"]}, channels_property(), workers=0
            )


class TestViolationRoundTrip:
    """Every Violation.guide replays to the identical violating run."""

    @staticmethod
    def round_trip(make_simulator, scripts, prop, *, crash_schedule=None,
                   max_schedules=100_000, limit=12):
        result = explore_schedules(
            make_simulator(),
            scripts,
            prop,
            crash_schedule=crash_schedule,
            max_schedules=max_schedules,
        )
        assert result.violations, "round-trip needs a violating config"
        replayer = make_simulator()
        replayer.atomic_local = True  # the explorer's sound reduction
        for violation in result.violations[:limit]:
            guide = list(violation.guide)
            replay = replayer.run(
                scripts, crash_schedule=crash_schedule, guide=guide
            )
            again = replayer.run(
                scripts, crash_schedule=crash_schedule, guide=guide
            )
            # the guide pins the schedule completely: replays agree
            # step for step, and end quiescent (it was a terminal)
            assert replay.execution.steps == again.execution.steps
            assert replay.quiescent
            assert replay.pending_choices == 0
            # the replayed run violates in exactly the recorded way
            assert tuple(prop(replay)) == violation.problems

    @pytest.mark.parametrize("sync_broadcasts", [False, True])
    def test_round_trip_sync_and_async(self, sync_broadcasts):
        self.round_trip(
            lambda: s2a_simulator(sync_broadcasts=sync_broadcasts),
            {0: ["a"], 1: ["b"]},
            total_order(),
        )

    def test_round_trip_with_crash_schedule(self):
        self.round_trip(
            lambda: s2a_simulator(3),
            {0: ["a"], 1: ["b"]},
            total_order(),
            crash_schedule=CrashSchedule(at_step={1: 3}),
            max_schedules=300,
        )


class TestGuideValidation:
    """Out-of-range guide entries fail loudly instead of aliasing."""

    def test_out_of_range_guide_entry_raises(self):
        simulator = s2a_simulator(atomic_local=True)
        with pytest.raises(ValueError, match="does not belong"):
            simulator.run({0: ["a"], 1: ["b"]}, guide=[99])

    def test_out_of_range_entry_mid_guide_raises(self):
        simulator = s2a_simulator(atomic_local=True)
        probe = simulator.run({0: ["a"], 1: ["b"]}, guide=[0])
        assert probe.pending_choices > 0
        with pytest.raises(ValueError, match="does not belong"):
            simulator.run(
                {0: ["a"], 1: ["b"]},
                guide=[0, probe.pending_choices],
            )

    def test_in_range_guide_still_replays(self):
        simulator = s2a_simulator(atomic_local=True)
        result = simulator.run({0: ["a"], 1: ["b"]}, guide=[0, 0, 0])
        assert result.steps_taken == 3

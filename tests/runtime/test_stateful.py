"""Stateful property testing of the per-process step machine.

A hypothesis rule-based machine drives one ProcessRuntime through
arbitrary interleavings of broadcast starts, foreign-message injections
and local steps, and checks the machine's structural invariants after
every rule — the kind of protocol-state coverage scripted tests miss.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
import hypothesis.strategies as st

from repro.core import MessageFactory
from repro.core.actions import PointToPointId
from repro.runtime import ProcessRuntime
from repro.broadcasts import UniformReliableBroadcast
from repro.runtime.process import (
    Blocked,
    DeliverStep,
    Idle,
    ProposeStep,
    ReturnStep,
    SendStep,
)


class RuntimeMachine(RuleBasedStateMachine):
    """Drive p0 of a 3-process URB instance through arbitrary events."""

    @initialize()
    def setup(self):
        self.runtime = ProcessRuntime(UniformReliableBroadcast(0, 3))
        self.foreign_factory = MessageFactory()
        self.foreign_seq = 0
        self.started = 0
        self.returned = 0
        self.sent_p2ps = set()

    @precondition(lambda self: not self.runtime.busy)
    @rule(content=st.integers(0, 5))
    def start_broadcast(self, content):
        message = self.runtime.start_broadcast(content)
        assert message.sender == 0
        self.started += 1

    @rule(sender=st.sampled_from([1, 2]))
    def inject_foreign_message(self, sender):
        payload = self.foreign_factory.new(sender, f"f{self.foreign_seq}")
        p2p = PointToPointId(sender, 0, self.foreign_seq)
        self.foreign_seq += 1
        self.runtime.inject_receive(p2p, payload)

    @precondition(lambda self: self.runtime.has_enabled_step())
    @rule()
    def take_step(self):
        outcome = self.runtime.next_step()
        # Idle/Blocked may still surface when the apparent work was an
        # exhausted handler (the drivers treat it as a no-op pick); the
        # URB algorithm never proposes, so ProposeStep must not appear.
        assert not isinstance(outcome, ProposeStep)
        if isinstance(outcome, (Blocked, Idle)):
            return
        if isinstance(outcome, ReturnStep):
            self.returned += 1
        elif isinstance(outcome, SendStep):
            assert outcome.p2p not in self.sent_p2ps
            self.sent_p2ps.add(outcome.p2p)
            if outcome.p2p.receiver == 0:
                self.runtime.inject_receive(
                    outcome.p2p, outcome.payload
                )

    @invariant()
    def no_duplicate_deliveries(self):
        uids = [m.uid for m in self.runtime.delivered]
        assert len(uids) == len(set(uids))

    @invariant()
    def returns_never_exceed_starts(self):
        assert self.returned <= self.started
        assert len(self.runtime.returned_uids) == self.returned

    @invariant()
    def busy_iff_unreturned_invocation(self):
        assert self.runtime.busy == (self.started > self.returned)

    @invariant()
    def own_deliveries_only_for_started_broadcasts(self):
        own = [m for m in self.runtime.delivered if m.sender == 0]
        assert len(own) <= self.started


TestRuntimeMachine = RuntimeMachine.TestCase
TestRuntimeMachine.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)

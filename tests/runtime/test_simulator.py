"""Integration tests for the free simulator: determinism, axioms, crashes."""

import pytest

from repro.broadcasts import (
    CausalBroadcast,
    SendToAllBroadcast,
    UniformReliableBroadcast,
)
from repro.core import check_channels
from repro.runtime import (
    BroadcastProcess,
    CrashSchedule,
    Send,
    Simulator,
    Wait,
)


def simulate(algorithm_class, n=3, seed=0, per_process=2, **kwargs):
    simulator = Simulator(
        n, lambda pid, size: algorithm_class(pid, size), seed=seed
    )
    scripts = {
        p: [f"m{p}.{i}" for i in range(per_process)] for p in range(n)
    }
    return simulator.run(scripts, **kwargs)


class TestDeterminism:
    def test_same_seed_same_execution(self):
        first = simulate(CausalBroadcast, seed=5)
        second = simulate(CausalBroadcast, seed=5)
        assert first.execution == second.execution

    def test_different_seeds_usually_differ(self):
        first = simulate(CausalBroadcast, seed=5)
        second = simulate(CausalBroadcast, seed=6)
        assert first.execution != second.execution


class TestChannelAxioms:
    @pytest.mark.parametrize("seed", range(5))
    def test_quiescent_runs_satisfy_sr_properties(self, seed):
        result = simulate(UniformReliableBroadcast, seed=seed)
        assert result.quiescent
        assert check_channels(result.execution).ok

    def test_all_scripted_messages_delivered_everywhere(self):
        result = simulate(SendToAllBroadcast, n=4, seed=3)
        for p in range(4):
            assert len(result.deliveries(p)) == 8


class TestCrashes:
    def test_initially_crashed_process_takes_no_step(self):
        simulator = Simulator(
            3, lambda pid, n: SendToAllBroadcast(pid, n), seed=0
        )
        result = simulator.run(
            {p: ["x"] for p in range(3)},
            crash_schedule=CrashSchedule.initial([2]),
        )
        assert all(
            s.is_crash() for s in result.execution.steps_of(2)
        )
        assert result.execution.crashed == {2}

    def test_mid_run_crash_stops_the_process(self):
        simulator = Simulator(
            3, lambda pid, n: SendToAllBroadcast(pid, n), seed=1
        )
        result = simulator.run(
            {p: ["a", "b"] for p in range(3)},
            crash_schedule=CrashSchedule({1: 10}),
        )
        steps = result.execution.steps_of(1)
        assert steps[-1].is_crash()
        assert result.execution.crashed == {1}

    def test_messages_to_crashed_process_may_be_dropped(self):
        simulator = Simulator(
            2, lambda pid, n: SendToAllBroadcast(pid, n), seed=2
        )
        result = simulator.run(
            {0: ["x"], 1: []},
            crash_schedule=CrashSchedule.initial([1]),
        )
        assert result.quiescent
        # SR-Termination only constrains correct receivers
        assert check_channels(result.execution).ok


class TestBlockedDetection:
    def test_forever_waiting_algorithm_reported(self):
        class Stuck(BroadcastProcess):
            def on_broadcast(self, message):
                yield Wait(lambda: False, "never")

            def on_receive(self, payload, sender):
                return
                yield

        simulator = Simulator(2, lambda pid, n: Stuck(pid, n), seed=0)
        result = simulator.run({0: ["x"]})
        assert not result.quiescent or result.blocked
        assert 0 in result.blocked
        assert "never" in result.blocked[0]


class TestSyncBroadcastMode:
    def test_next_broadcast_waits_for_self_delivery(self):
        simulator = Simulator(
            2,
            lambda pid, n: UniformReliableBroadcast(pid, n),
            seed=4,
            sync_broadcasts=True,
        )
        result = simulator.run({0: ["a", "b"], 1: []})
        deliveries = [
            m.content for m in result.deliveries(0) if m.sender == 0
        ]
        assert deliveries == ["a", "b"]

    def test_step_budget_respected(self):
        result = simulate(UniformReliableBroadcast, max_steps=10)
        assert result.steps_taken <= 10
        assert not result.quiescent


class TestGatedScripts:
    def test_gated_broadcast_waits_for_its_parent(self):
        from repro.runtime import Gated

        for seed in range(5):
            simulator = Simulator(
                2, lambda pid, n: UniformReliableBroadcast(pid, n),
                seed=seed,
            )
            result = simulator.run(
                {
                    0: ["parent"],
                    1: [Gated("child", after="parent")],
                }
            )
            assert result.quiescent
            # at the *broadcaster*, the parent delivery precedes the
            # child's invocation — a genuine causal dependency
            events = [
                ("deliver", s.action.message.content)
                if s.is_deliver()
                else ("invoke", s.action.message.content)
                for s in result.execution.steps_of(1)
                if s.is_deliver() or s.is_invoke()
            ]
            assert events.index(("deliver", "parent")) < events.index(
                ("invoke", "child")
            )

    def test_ungateable_entry_is_never_broadcast(self):
        from repro.runtime import Gated

        simulator = Simulator(
            2, lambda pid, n: UniformReliableBroadcast(pid, n), seed=0
        )
        result = simulator.run(
            {1: [Gated("orphan", after="never-sent")]}
        )
        assert result.quiescent
        assert result.execution.broadcast_messages == ()


class TestSimulationResultApi:
    def test_delivered_contents(self):
        result = simulate(SendToAllBroadcast, n=2, seed=0, per_process=1)
        contents = result.delivered_contents(0)
        assert set(contents) == {"m0.0", "m1.0"}


def atomic_s2a(n=2, **kwargs):
    return Simulator(
        n, lambda pid, n_: SendToAllBroadcast(pid, n_),
        atomic_local=True, **kwargs
    )


class TestResultPrelude:
    """Regression: result() must report through the scheduling prelude.

    ``choices()`` performs a per-decision prelude — due-crash injection
    and, under ``atomic_local``, the local-computation drain — before
    enumerating events.  ``result()`` used to recompute the enabled set
    *without* that prelude, so a snapshot taken right after ``advance()``
    could claim quiescence while drained local steps would have put
    messages in flight.
    """

    def test_result_right_after_advance_sees_through_the_drain(self):
        run = atomic_s2a().begin({0: ["a"]})
        run.advance(0)  # p0 broadcasts; its sends sit in undrained locals
        result = run.result()
        # the drain puts the sends in flight: receptions are enabled
        assert not result.quiescent
        assert result.steps_taken == 1

    def test_result_reports_a_crash_due_at_this_step(self):
        crashes = CrashSchedule(at_step={1: 1})
        run = atomic_s2a().begin(
            {0: ["a"], 1: ["b"]}, crash_schedule=crashes
        )
        run.advance(0)
        result = run.result()
        assert 1 in result.execution.crashed

    def test_result_does_not_mutate_the_handle(self):
        run = atomic_s2a().begin({0: ["a"]})
        run.advance(0)
        before = run.fingerprint()
        run.result()
        assert run.fingerprint() == before
        assert 1 in run.alive  # prelude ran on a probe, not the handle
        # the handle still schedules normally afterwards
        assert run.choices()

    def test_quiescent_result_right_after_the_final_advance(self):
        run = atomic_s2a().begin({0: ["a"], 1: ["b"]})
        while run.fork().choices():
            run.advance(0)
        # the prelude has not run on the handle since the last advance
        result = run.result()
        assert result.quiescent


class TestRunBudgets:
    """max_steps and guide exhaustion report accurate partial results."""

    def test_max_steps_budget_reports_non_quiescent(self):
        result = atomic_s2a().run({0: ["a"], 1: ["b"]}, max_steps=3)
        assert result.steps_taken == 3
        assert not result.quiescent

    def test_max_steps_one_is_not_mistaken_for_quiescence(self):
        # the budget cuts right after the broadcast decision, before the
        # drain — exactly the state the result() regression misreported
        result = atomic_s2a().run({0: ["a"]}, max_steps=1)
        assert result.steps_taken == 1
        assert not result.quiescent

    def test_generous_budget_is_not_reported_as_a_cut(self):
        result = atomic_s2a().run({0: ["a"], 1: ["b"]}, max_steps=10_000)
        assert result.quiescent
        assert result.steps_taken < 10_000

    def test_guide_exhaustion_reports_accurate_pending_choices(self):
        simulator = atomic_s2a()
        probe = simulator.run({0: ["a"], 1: ["b"]}, guide=[0])
        cross = atomic_s2a().begin({0: ["a"], 1: ["b"]})
        cross.advance(0)
        assert probe.steps_taken == 1
        assert probe.pending_choices == len(cross.choices()) > 0

    def test_empty_guide_reports_root_pending_choices(self):
        simulator = atomic_s2a()
        probe = simulator.run({0: ["a"], 1: ["b"]}, guide=[])
        root = atomic_s2a().begin({0: ["a"], 1: ["b"]})
        assert probe.steps_taken == 0
        assert probe.pending_choices == len(root.choices()) > 0

    def test_complete_guide_reports_zero_pending_choices(self):
        explorer_guide = []
        walker = atomic_s2a().begin({0: ["a"], 1: ["b"]})
        while walker.choices():
            explorer_guide.append(0)
            walker.advance(0)
        result = atomic_s2a().run(
            {0: ["a"], 1: ["b"]}, guide=explorer_guide
        )
        assert result.quiescent
        assert result.pending_choices == 0

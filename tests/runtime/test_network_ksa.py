"""Unit tests for the network pool and the k-SA oracle objects."""

import pytest

from repro.core.actions import PointToPointId
from repro.runtime import (
    FirstProposalsPolicy,
    KsaObject,
    KsaRegistry,
    Network,
    OwnValuePolicy,
    ScriptedPolicy,
)


class TestNetwork:
    def test_send_then_receive(self):
        network = Network()
        p2p = PointToPointId(0, 1, 0)
        network.send(p2p, "x")
        assert len(network) == 1
        item = network.receive(p2p)
        assert item.payload == "x"
        assert len(network) == 0

    def test_duplicate_send_rejected(self):
        network = Network()
        p2p = PointToPointId(0, 1, 0)
        network.send(p2p, "x")
        with pytest.raises(ValueError, match="duplicate"):
            network.send(p2p, "y")

    def test_receive_unknown_rejected(self):
        with pytest.raises(ValueError, match="not in flight"):
            Network().receive(PointToPointId(0, 1, 0))

    def test_deliverable_filtering(self):
        network = Network()
        network.send(PointToPointId(0, 1, 0), "a")
        network.send(PointToPointId(0, 2, 0), "b")
        to_p1 = network.deliverable({1})
        assert [i.payload for i in to_p1] == ["a"]
        assert len(network.deliverable()) == 2

    def test_pending_queries(self):
        network = Network()
        network.send(PointToPointId(0, 1, 0), "a")
        network.send(PointToPointId(2, 1, 0), "b")
        assert len(network.pending_to(1)) == 2
        assert [i.payload for i in network.pending_between(2, 1)] == ["b"]


class TestPolicies:
    def test_first_proposals_win(self):
        ksa = KsaObject("o", 2, FirstProposalsPolicy())
        assert ksa.propose(0, "a") == "a"
        assert ksa.propose(1, "b") == "b"
        assert ksa.propose(2, "c") == "a"  # third distinct forced back

    def test_own_value_policy_adopts_latest(self):
        ksa = KsaObject("o", 2, OwnValuePolicy())
        ksa.propose(0, "a")
        ksa.propose(1, "b")
        assert ksa.propose(2, "c") == "b"

    def test_repeated_value_always_allowed(self):
        ksa = KsaObject("o", 1, FirstProposalsPolicy())
        assert ksa.propose(0, "a") == "a"
        assert ksa.propose(1, "a") == "a"

    def test_scripted_policy(self):
        policy = ScriptedPolicy({("o", 1): "a"})
        ksa = KsaObject("o", 2, policy)
        ksa.propose(0, "a")
        assert ksa.propose(1, "b") == "a"  # scripted override

    def test_scripted_fallback(self):
        ksa = KsaObject("o", 2, ScriptedPolicy({}))
        assert ksa.propose(0, "x") == "x"


class TestKsaObjectSafety:
    def test_one_shot_enforced(self):
        ksa = KsaObject("o", 2, OwnValuePolicy())
        ksa.propose(0, "a")
        with pytest.raises(ValueError, match="one-shot"):
            ksa.propose(0, "b")

    def test_validity_enforced_against_bad_policy(self):
        class Liar(FirstProposalsPolicy):
            def decide(self, *args):
                return "never-proposed"

        ksa = KsaObject("o", 2, Liar())
        with pytest.raises(ValueError, match="never proposed"):
            ksa.propose(0, "a")

    def test_agreement_enforced_against_bad_policy(self):
        class Chaotic(FirstProposalsPolicy):
            def decide(self, ksa, proposer, value, decided, k):
                return value  # always own, ignoring k

        ksa = KsaObject("o", 1, Chaotic())
        ksa.propose(0, "a")
        with pytest.raises(ValueError, match="agreement"):
            ksa.propose(1, "b")


class TestRegistry:
    def test_objects_created_on_demand(self):
        registry = KsaRegistry(2)
        assert registry.propose("obj", 0, "v") == "v"
        assert "obj" in registry.objects
        assert registry.get("obj") is registry.get("obj")

    def test_registry_k_propagates(self):
        registry = KsaRegistry(3)
        assert registry.get("x").k == 3

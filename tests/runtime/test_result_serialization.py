"""JSON round-trips for exploration artifacts + progress-error handling.

The verification service ships :class:`ExplorationResult`,
:class:`Violation`, and :class:`ProgressSnapshot` over the wire and
into the memo store, so serialization must be lossless — digests,
per-depth counters, and violation guides all survive the round trip.

The second half covers the progress-callback contract: a callback that
raises must not abort the search mid-subtree.  The error is recorded on
the result and exploration continues to the exact same outcome a
callback-free run produces.
"""

import json

import pytest

from repro.broadcasts import SendToAllBroadcast
from repro.runtime import Simulator
from repro.runtime.explorer import (
    ExplorationResult,
    ProgressSnapshot,
    Violation,
    explore_schedules,
    spec_property,
)
from repro.specs import TotalOrderBroadcastSpec


def s2a(n=2, **kwargs):
    return Simulator(n, lambda pid, n_: SendToAllBroadcast(pid, n_), **kwargs)


def violating_exploration(**kwargs):
    """send-to-all against total order: produces real violations."""
    return explore_schedules(
        s2a(),
        {0: ["x"], 1: ["y"]},
        spec_property(TotalOrderBroadcastSpec(), assume_complete=False),
        **kwargs,
    )


class TestViolationRoundTrip:
    def test_round_trip_without_permutation(self):
        violation = Violation(
            guide=(0, 2, 1), problems=("p1", "p2"), permutation=None
        )
        data = json.loads(json.dumps(violation.to_json()))
        assert Violation.from_json(data) == violation

    def test_round_trip_with_permutation(self):
        violation = Violation(
            guide=(1, 0), problems=("q",), permutation=(1, 0, 2)
        )
        data = json.loads(json.dumps(violation.to_json()))
        restored = Violation.from_json(data)
        assert restored == violation
        assert restored.permutation == (1, 0, 2)

    def test_real_violations_round_trip(self):
        result = violating_exploration(engine="dedup")
        assert result.violations
        for violation in result.violations:
            data = json.loads(json.dumps(violation.to_json()))
            assert Violation.from_json(data) == violation


class TestExplorationResultRoundTrip:
    @pytest.mark.parametrize("engine", ["incremental", "dedup"])
    def test_lossless(self, engine):
        result = violating_exploration(
            engine=engine, sleep_sets=(engine == "dedup")
        )
        data = json.loads(json.dumps(result.to_json()))
        restored = ExplorationResult.from_json(data)
        assert restored == result
        # per-depth counters come back with int keys
        assert restored.expansions_by_depth == result.expansions_by_depth
        assert restored.dedup_hits_by_depth == result.dedup_hits_by_depth
        assert restored.violations_digest() == result.violations_digest()

    def test_progress_errors_survive(self):
        result = violating_exploration(engine="dedup")
        result.progress_errors.append("ValueError: boom")
        restored = ExplorationResult.from_json(
            json.loads(json.dumps(result.to_json()))
        )
        assert restored.progress_errors == ["ValueError: boom"]

    def test_from_json_tolerates_missing_progress_errors(self):
        # payloads memoized before the field existed still load
        data = violating_exploration(engine="dedup").to_json()
        del data["progress_errors"]
        assert ExplorationResult.from_json(data).progress_errors == []

    def test_violations_digest_ignores_guide_ordering(self):
        result = violating_exploration(engine="dedup")
        permuted = ExplorationResult.from_json(result.to_json())
        permuted.violations.reverse()
        assert permuted.violations_digest() == result.violations_digest()


class TestSchemaVersioning:
    """Payload schema: tolerant of the past, loud about the future."""

    def test_schema_one_payload_without_new_fields_loads(self):
        # what a pre-versioning service memoized: no schema stamp, no
        # interrupted flag, none of the later counter fields
        data = violating_exploration(engine="dedup").to_json()
        del data["schema"]
        del data["interrupted"]
        del data["workers"]
        del data["states_deduped"]
        restored = ExplorationResult.from_json(data)
        assert restored.interrupted is False
        assert restored.workers == 1
        assert restored.states_deduped == 0

    def test_newer_schema_rejected_with_clear_error(self):
        data = violating_exploration(engine="dedup").to_json()
        data["schema"] = 99
        with pytest.raises(ValueError, match="schema 99"):
            ExplorationResult.from_json(data)

    def test_missing_core_field_names_the_field(self):
        data = violating_exploration(engine="dedup").to_json()
        del data["terminal_schedules"]
        with pytest.raises(ValueError, match="terminal_schedules"):
            ExplorationResult.from_json(data)

    def test_snapshot_newer_schema_rejected(self):
        snapshots = []
        violating_exploration(
            engine="dedup", progress=snapshots.append, progress_every=5
        )
        data = snapshots[0].to_json()
        data["schema"] = 99
        with pytest.raises(ValueError, match="schema 99"):
            ProgressSnapshot.from_json(data)

    def test_snapshot_missing_core_field_names_the_field(self):
        snapshots = []
        violating_exploration(
            engine="dedup", progress=snapshots.append, progress_every=5
        )
        data = snapshots[0].to_json()
        del data["expansions"]
        with pytest.raises(ValueError, match="expansions"):
            ProgressSnapshot.from_json(data)


class TestProgressSnapshotRoundTrip:
    def test_live_snapshots_round_trip(self):
        snapshots = []
        violating_exploration(
            engine="dedup",
            progress=snapshots.append,
            progress_every=5,
        )
        assert snapshots
        for snapshot in snapshots:
            data = json.loads(json.dumps(snapshot.to_json()))
            restored = ProgressSnapshot.from_json(data)
            assert restored == snapshot
            assert restored.expansions_by_depth == dict(
                snapshot.expansions_by_depth
            )


class TestProgressCallbackErrors:
    """A raising ``progress=`` callback must not perturb the search."""

    @pytest.mark.parametrize("engine", ["incremental", "dedup"])
    def test_raising_callback_recorded_not_fatal(self, engine):
        clean = violating_exploration(engine=engine)

        def explode(snapshot):
            raise ValueError("boom")

        noisy = violating_exploration(
            engine=engine, progress=explode, progress_every=5
        )
        assert noisy.progress_errors == ["ValueError: boom"]
        # identical exploration outcome, error report aside
        clean_json = clean.to_json()
        noisy_json = noisy.to_json()
        del clean_json["progress_errors"], noisy_json["progress_errors"]
        assert noisy_json == clean_json

    def test_callback_disabled_after_first_error(self):
        calls = []

        def explode(snapshot):
            calls.append(snapshot)
            raise ValueError("boom")

        result = violating_exploration(
            engine="dedup", progress=explode, progress_every=2
        )
        assert len(calls) == 1
        assert len(result.progress_errors) == 1

    def test_healthy_callback_still_streams(self):
        snapshots = []
        result = violating_exploration(
            engine="dedup", progress=snapshots.append, progress_every=2
        )
        assert len(snapshots) > 1
        assert result.progress_errors == []

"""Static refinements under exploration: proven commutation + sanitizer.

Two consumers of the effect-summary analyzer meet the explorer here.
``static_independence`` refines the sleep-set relation with the
proven-commutation table on crash schedules — the differential tests
require the refinement to preserve every distinct terminal observation
and every violation while executing *strictly fewer* events than the
blanket (``crash_aware=False``) reduction, and the crash-aware dynamic
relation to do at least as well on its own.  ``validate_footprints`` turns each recorded
footprint into a containment assertion against the static summary — the
acceptance runs require zero violations across sync/async/crash
configurations of every exercised algorithm.
"""

import pytest

from repro.broadcasts import SendToAllBroadcast, UniformReliableBroadcast
from repro.runtime import CrashSchedule, Simulator
from repro.runtime.explorer import explore_schedules
from repro.statics.independence import StaticIndependence


def s2a(n=3, **kwargs):
    return Simulator(n, lambda pid, n_: SendToAllBroadcast(pid, n_), **kwargs)


def urb(n=2, **kwargs):
    return Simulator(
        n, lambda pid, n_: UniformReliableBroadcast(pid, n_), **kwargs
    )


def observing_property(observations):
    def prop(result):
        observations.add(
            tuple(
                tuple(m.uid for m in result.deliveries(p))
                for p in sorted(result.runtimes)
            )
        )
        return ()

    return prop


def observations_of(simulator, scripts, **kwargs):
    seen = set()
    result = explore_schedules(
        simulator, scripts, observing_property(seen), **kwargs
    )
    return seen, result


CRASH_CONFIGS = [
    pytest.param(
        s2a, {0: ["a"], 1: ["b"]}, CrashSchedule(at_step={2: 4}),
        id="s2a-crash-late",
    ),
    pytest.param(
        s2a, {0: ["a"], 1: ["b"]}, CrashSchedule(at_step={1: 4}),
        id="s2a-crash-mid",
    ),
    pytest.param(
        urb, {0: ["a"]}, CrashSchedule(at_step={0: 4}), id="urb-crash"
    ),
]


class TestStaticSleepPreservesSemantics:
    """The refined reduction keeps observations and violations intact."""

    @pytest.mark.parametrize("factory, scripts, crashes", CRASH_CONFIGS)
    @pytest.mark.parametrize("engine", ["incremental", "dedup"])
    def test_observation_sets_equal(self, factory, scripts, crashes, engine):
        plain, _ = observations_of(
            factory(), scripts, crash_schedule=crashes,
            engine=engine, max_depth=8,
        )
        static, _ = observations_of(
            factory(), scripts, crash_schedule=crashes,
            engine=engine, max_depth=8,
            sleep_sets=True, static_independence=True,
        )
        assert static == plain

    @pytest.mark.parametrize("factory, scripts, crashes", CRASH_CONFIGS)
    def test_depth_cuts_preserved(self, factory, scripts, crashes):
        for depth in (4, 6):
            plain, _ = observations_of(
                factory(), scripts, crash_schedule=crashes,
                engine="dedup", max_depth=depth,
            )
            static, _ = observations_of(
                factory(), scripts, crash_schedule=crashes,
                engine="dedup", max_depth=depth,
                sleep_sets=True, static_independence=True,
            )
            assert static == plain

    def test_violations_preserved_exactly(self):
        """A violating crash configuration reports the same problems."""
        from repro.runtime.explorer import spec_property
        from repro.specs import TotalOrderBroadcastSpec

        def digest(result):
            return sorted({v.problems for v in result.violations})

        prop = spec_property(TotalOrderBroadcastSpec(), assume_complete=False)
        crashes = CrashSchedule(at_step={2: 4})
        plain = explore_schedules(
            s2a(), {0: ["x"], 1: ["y"]}, prop,
            crash_schedule=crashes, engine="dedup", max_depth=8,
        )
        dynamic = explore_schedules(
            s2a(), {0: ["x"], 1: ["y"]}, prop,
            crash_schedule=crashes, engine="dedup", max_depth=8,
            sleep_sets=True,
        )
        static = explore_schedules(
            s2a(), {0: ["x"], 1: ["y"]}, prop,
            crash_schedule=crashes, engine="dedup", max_depth=8,
            sleep_sets=True, static_independence=True,
        )
        assert plain.violations, "configuration expected to violate"
        assert digest(static) == digest(dynamic) == digest(plain)


class TestCrashAwareStrictlyReduces:
    """On crash schedules the crash-aware proof must out-prune the blanket."""

    def test_strictly_fewer_events_and_terminals(self):
        scripts = {0: ["a"], 1: ["b"]}
        crashes = CrashSchedule(at_step={2: 4})
        blanket_seen, blanket = observations_of(
            s2a(), scripts, crash_schedule=crashes,
            engine="dedup", max_depth=8, sleep_sets=True,
            crash_aware=False,
        )
        aware_seen, aware = observations_of(
            s2a(), scripts, crash_schedule=crashes,
            engine="dedup", max_depth=8, sleep_sets=True,
        )
        assert aware_seen == blanket_seen
        assert aware.events_executed < blanket.events_executed
        assert aware.terminal_schedules < blanket.terminal_schedules
        # the win came from discharged pending crashes, and it shows
        assert aware.independence_stats.get("crash_proof", 0) > 0

    def test_static_table_matches_crash_aware_pruning(self):
        # the crash-aware dynamic relation subsumes the static table,
        # so stacking the table on top must preserve semantics and
        # never lose the crash-aware win over the blanket
        scripts = {0: ["a"], 1: ["b"]}
        crashes = CrashSchedule(at_step={2: 4})
        blanket_seen, blanket = observations_of(
            s2a(), scripts, crash_schedule=crashes,
            engine="dedup", max_depth=8, sleep_sets=True,
            crash_aware=False,
        )
        static_seen, static = observations_of(
            s2a(), scripts, crash_schedule=crashes,
            engine="dedup", max_depth=8,
            sleep_sets=True, static_independence=True,
        )
        assert static_seen == blanket_seen
        assert static.events_executed < blanket.events_executed
        assert static.terminal_schedules < blanket.terminal_schedules

    def test_static_table_still_refines_the_blanket(self):
        # with crash_aware=False the table is the only crash-pending
        # refiner — the original strict-reduction claim, preserved as
        # the before/after benchmark baseline semantics
        scripts = {0: ["a"], 1: ["b"]}
        crashes = CrashSchedule(at_step={2: 4})
        blanket_seen, blanket = observations_of(
            s2a(), scripts, crash_schedule=crashes,
            engine="dedup", max_depth=8, sleep_sets=True,
            crash_aware=False,
        )
        static_seen, static = observations_of(
            s2a(), scripts, crash_schedule=crashes,
            engine="dedup", max_depth=8,
            sleep_sets=True, static_independence=True,
            crash_aware=False,
        )
        assert static_seen == blanket_seen
        assert static.events_executed < blanket.events_executed
        assert static.terminal_schedules < blanket.terminal_schedules
        assert static.independence_stats.get("static_table", 0) > 0

    def test_parallel_engine_matches_single_worker(self):
        # a closure-based observer cannot report back from worker
        # processes, so the parallel differential compares the engines'
        # own counters and the violations of a violating property
        from repro.runtime.explorer import spec_property
        from repro.specs import TotalOrderBroadcastSpec

        prop = spec_property(TotalOrderBroadcastSpec(), assume_complete=False)
        scripts = {0: ["x"], 1: ["y"]}
        crashes = CrashSchedule(at_step={2: 4})
        single = explore_schedules(
            s2a(), scripts, prop, crash_schedule=crashes,
            engine="incremental", max_depth=8,
            sleep_sets=True, static_independence=True,
        )
        parallel = explore_schedules(
            s2a(), scripts, prop, crash_schedule=crashes,
            engine="incremental", max_depth=8, workers=2,
            sleep_sets=True, static_independence=True,
        )
        assert parallel.exhausted and single.exhausted
        assert parallel.terminal_schedules == single.terminal_schedules
        assert {v.problems for v in parallel.violations} == {
            v.problems for v in single.violations
        }


class TestStaticIndependenceArgument:
    """How explore_schedules resolves the static_independence argument."""

    def test_requires_sleep_sets(self):
        with pytest.raises(ValueError, match="sleep_sets"):
            explore_schedules(
                s2a(), {0: ["a"]}, lambda result: (),
                static_independence=True,
            )

    def test_true_fails_loudly_for_unanalyzable_algorithms(self):
        # a dynamically synthesized class has no source to analyze;
        # asking for the refinement explicitly must not silently
        # degrade to the dynamic relation
        synthesized = type(
            "Synth", (SendToAllBroadcast,), {"__module__": "<dynamic>"}
        )
        simulator = Simulator(2, lambda pid, n: synthesized(pid, n))
        with pytest.raises(ValueError, match="static"):
            explore_schedules(
                simulator, {0: ["a"]}, lambda result: (),
                sleep_sets=True, static_independence=True,
            )

    def test_prebuilt_table_is_accepted(self):
        table = StaticIndependence.from_algorithm(SendToAllBroadcast)
        seen, result = observations_of(
            s2a(), {0: ["a"], 1: ["b"]},
            crash_schedule=CrashSchedule(at_step={2: 4}),
            engine="dedup", max_depth=8,
            sleep_sets=True, static_independence=table,
        )
        assert result.exhausted
        plain_seen, _ = observations_of(
            s2a(), {0: ["a"], 1: ["b"]},
            crash_schedule=CrashSchedule(at_step={2: 4}),
            engine="dedup", max_depth=8,
        )
        assert seen == plain_seen


class TestFootprintSanitizer:
    """validate_footprints: dynamic footprints contained in static ones."""

    @pytest.mark.parametrize(
        "factory, scripts, crashes, kwargs",
        [
            pytest.param(
                s2a, {0: ["a"], 1: ["b"]}, None, {}, id="s2a-async"
            ),
            pytest.param(
                s2a, {0: ["a"], 1: ["b"]}, None,
                {"sync_broadcasts": True}, id="s2a-sync",
            ),
            pytest.param(
                s2a, {0: ["a"], 1: ["b"]}, CrashSchedule(at_step={1: 3}),
                {}, id="s2a-crash",
            ),
            pytest.param(urb, {0: ["a"]}, None, {}, id="urb-async"),
            pytest.param(
                urb, {0: ["a"]}, CrashSchedule(at_step={0: 4}), {},
                id="urb-crash",
            ),
        ],
    )
    def test_exploration_clean_under_validation(
        self, factory, scripts, crashes, kwargs
    ):
        # FootprintViolationError would propagate out of the explorer;
        # a normal exhaustive result is the zero-violations assertion
        seen, result = observations_of(
            factory(validate_footprints=True, **kwargs), scripts,
            crash_schedule=crashes, engine="dedup", max_depth=8,
        )
        assert result.exhausted
        plain_seen, _ = observations_of(
            factory(**kwargs), scripts,
            crash_schedule=crashes, engine="dedup", max_depth=8,
        )
        assert seen == plain_seen

    def test_validation_survives_explorer_rebuild(self):
        # explore_schedules rebuilds the simulator (atomic_local etc.);
        # the flag must survive the rebuild — checked by observing the
        # sanitizer summary got attached to the rebuilt instance
        simulator = s2a(validate_footprints=True)
        _, result = observations_of(
            simulator, {0: ["a"]}, engine="dedup", max_depth=6,
        )
        assert result.exhausted

    def test_violation_raises(self):
        """A handler whose dynamic effects escape its summary is caught."""
        import dataclasses

        from repro.runtime.simulator import FootprintViolationError
        from repro.statics import summarize_algorithm

        # forge a summary claiming on_broadcast never sends: the first
        # broadcast's recorded emission must trip the containment check
        forged = summarize_algorithm(SendToAllBroadcast)
        handlers = dict(forged.handlers)
        handlers["on_broadcast"] = dataclasses.replace(
            handlers["on_broadcast"], sends=frozenset()
        )
        simulator = Simulator(
            2, lambda pid, n: SendToAllBroadcast(pid, n),
            atomic_local=True, validate_footprints=True,
        )
        simulator._footprint_summary = dataclasses.replace(
            forged, handlers=tuple(handlers.items())
        )
        simulator._footprint_summary_ready = True
        handle = simulator.begin({0: ["a"]})
        handle.choices()
        with pytest.raises(FootprintViolationError):
            handle.advance(0)
            handle.choices()

"""Unit tests of the canonical state-fingerprint layer.

The dedup engine treats two runs as interchangeable exactly when their
fingerprints agree, so the digest must be (a) stable across interpreter
runs, (b) invariant under the orderings it canonicalizes away (set and
dict iteration order), and (c) sensitive to everything it keeps (pool
insertion order, journals, registry state, depth).
"""

import subprocess
import sys

from repro.broadcasts import SendToAllBroadcast
from repro.core.message import Message, MessageId
from repro.runtime import Simulator, stable_digest


def s2a_simulator(n=2, **kwargs):
    return Simulator(
        n, lambda pid, n_: SendToAllBroadcast(pid, n_), **kwargs
    )


def started_run(n=2, scripts=None):
    simulator = s2a_simulator(n, atomic_local=True)
    return simulator.begin(scripts or {0: ["a"], 1: ["b"]})


def settled_fingerprint(run):
    """Fingerprint at a decision point, per the documented contract.

    ``choices()`` applies the per-decision prelude (due crashes, the
    ``atomic_local`` drain) so states are compared after it, exactly as
    the dedup engine does.
    """
    run.choices()
    return run.fingerprint()


class TestStableDigest:
    """The encoding primitive underneath every fingerprint() method."""

    def test_deterministic_within_a_run(self):
        value = ("x", 3, {2: "b", 1: "a"}, frozenset({5, 6}))
        assert stable_digest(value) == stable_digest(value)

    def test_stable_across_interpreter_runs(self):
        # hash() randomization must not leak in: a fresh interpreter
        # (fresh PYTHONHASHSEED) computes the identical digest.
        code = (
            "from repro.runtime import stable_digest;"
            "print(stable_digest("
            "('x', 3, {2: 'b', 1: 'a'}, frozenset({5, 6}))))"
        )
        fresh = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        assert fresh == stable_digest(
            ("x", 3, {2: "b", 1: "a"}, frozenset({5, 6}))
        )

    def test_unordered_containers_are_canonicalized(self):
        assert stable_digest({3, 1, 2}) == stable_digest({1, 2, 3})
        assert stable_digest({"a": 1, "b": 2}) == stable_digest(
            {"b": 2, "a": 1}
        )

    def test_sequences_keep_their_order(self):
        assert stable_digest([1, 2]) != stable_digest([2, 1])

    def test_length_prefix_blocks_concatenation_aliasing(self):
        assert stable_digest(("ab",)) != stable_digest(("a", "b"))
        assert stable_digest("12") != stable_digest(12)

    def test_dataclasses_encode_structurally(self):
        first = Message(MessageId(0, 0), "a")
        assert stable_digest(first) == stable_digest(
            Message(MessageId(0, 0), "a")
        )
        assert stable_digest(first) != stable_digest(
            Message(MessageId(0, 1), "a")
        )
        assert stable_digest(first) != stable_digest(
            Message(MessageId(0, 0), "b")
        )


class TestRunFingerprint:
    """SimulationRun.fingerprint pins exactly the forkable state."""

    def test_identical_prefixes_agree(self):
        first, second = started_run(), started_run()
        for _ in range(3):
            first.advance(0)
            second.advance(0)
        assert first.fingerprint() == second.fingerprint()

    def test_fork_preserves_the_fingerprint(self):
        run = started_run()
        run.advance(0)
        assert run.fork().fingerprint() == run.fingerprint()

    def test_diverging_choices_disagree(self):
        first, second = started_run(), started_run()
        assert len(first.choices()) >= 2
        first.advance(0)
        second.advance(1)
        assert first.fingerprint() != second.fingerprint()

    def test_converging_interleavings_agree(self):
        # Two independent receptions commute: taking them in either
        # order reaches the same global state — the convergence the
        # dedup engine exists to collapse.  Find a commuting pair by
        # probing the actual choice tree rather than hardcoding indices.
        base = started_run()
        while True:
            choices = base.choices()
            assert choices, "no commuting pair found before quiescence"
            found = None
            for i in range(len(choices)):
                for j in range(i + 1, len(choices)):
                    one, other = base.fork(), base.fork()
                    one.advance(i)
                    one.advance(
                        next(
                            x
                            for x, c in enumerate(one.choices())
                            if c == choices[j]
                        )
                    )
                    other.advance(j)
                    other.advance(
                        next(
                            x
                            for x, c in enumerate(other.choices())
                            if c == choices[i]
                        )
                    )
                    if settled_fingerprint(one) == settled_fingerprint(
                        other
                    ):
                        found = (one, other)
                        break
                if found:
                    break
            if found:
                one, other = found
                # the traces differ even though the states agree
                assert (
                    one.trace.execution().steps
                    != other.trace.execution().steps
                )
                return
            base.advance(0)

    def test_depth_is_part_of_the_fingerprint(self):
        # Crash schedules are indexed by decision count, so a state is
        # only interchangeable with another at the same depth.
        run = started_run()
        before = run.fingerprint()
        run.advance(0)
        assert run.fingerprint() != before

"""Unit tests of the canonical state-fingerprint layer.

The dedup engine treats two runs as interchangeable exactly when their
fingerprints agree, so the digest must be (a) stable across interpreter
runs, (b) invariant under the orderings it canonicalizes away (set and
dict iteration order), and (c) sensitive to everything it keeps (pool
insertion order, journals, registry state, depth).
"""

import subprocess
import sys

import pytest

from repro.broadcasts import SendToAllBroadcast
from repro.core.message import Message, MessageId
from repro.runtime import (
    PidCanonicalizer,
    Simulator,
    orbit_digest,
    stable_digest,
)


def s2a_simulator(n=2, **kwargs):
    return Simulator(
        n, lambda pid, n_: SendToAllBroadcast(pid, n_), **kwargs
    )


def started_run(n=2, scripts=None):
    simulator = s2a_simulator(n, atomic_local=True)
    return simulator.begin(scripts or {0: ["a"], 1: ["b"]})


def settled_fingerprint(run):
    """Fingerprint at a decision point, per the documented contract.

    ``choices()`` applies the per-decision prelude (due crashes, the
    ``atomic_local`` drain) so states are compared after it, exactly as
    the dedup engine does.
    """
    run.choices()
    return run.fingerprint()


class TestStableDigest:
    """The encoding primitive underneath every fingerprint() method."""

    def test_deterministic_within_a_run(self):
        value = ("x", 3, {2: "b", 1: "a"}, frozenset({5, 6}))
        assert stable_digest(value) == stable_digest(value)

    def test_stable_across_interpreter_runs(self):
        # hash() randomization must not leak in: a fresh interpreter
        # (fresh PYTHONHASHSEED) computes the identical digest.
        code = (
            "from repro.runtime import stable_digest;"
            "print(stable_digest("
            "('x', 3, {2: 'b', 1: 'a'}, frozenset({5, 6}))))"
        )
        fresh = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        assert fresh == stable_digest(
            ("x", 3, {2: "b", 1: "a"}, frozenset({5, 6}))
        )

    def test_unordered_containers_are_canonicalized(self):
        assert stable_digest({3, 1, 2}) == stable_digest({1, 2, 3})
        assert stable_digest({"a": 1, "b": 2}) == stable_digest(
            {"b": 2, "a": 1}
        )

    def test_sequences_keep_their_order(self):
        assert stable_digest([1, 2]) != stable_digest([2, 1])

    def test_length_prefix_blocks_concatenation_aliasing(self):
        assert stable_digest(("ab",)) != stable_digest(("a", "b"))
        assert stable_digest("12") != stable_digest(12)

    def test_dataclasses_encode_structurally(self):
        first = Message(MessageId(0, 0), "a")
        assert stable_digest(first) == stable_digest(
            Message(MessageId(0, 0), "a")
        )
        assert stable_digest(first) != stable_digest(
            Message(MessageId(0, 1), "a")
        )
        assert stable_digest(first) != stable_digest(
            Message(MessageId(0, 0), "b")
        )


class TestRunFingerprint:
    """SimulationRun.fingerprint pins exactly the forkable state."""

    def test_identical_prefixes_agree(self):
        first, second = started_run(), started_run()
        for _ in range(3):
            first.advance(0)
            second.advance(0)
        assert first.fingerprint() == second.fingerprint()

    def test_fork_preserves_the_fingerprint(self):
        run = started_run()
        run.advance(0)
        assert run.fork().fingerprint() == run.fingerprint()

    def test_diverging_choices_disagree(self):
        first, second = started_run(), started_run()
        assert len(first.choices()) >= 2
        first.advance(0)
        second.advance(1)
        assert first.fingerprint() != second.fingerprint()

    def test_converging_interleavings_agree(self):
        # Two independent receptions commute: taking them in either
        # order reaches the same global state — the convergence the
        # dedup engine exists to collapse.  Find a commuting pair by
        # probing the actual choice tree rather than hardcoding indices.
        base = started_run()
        while True:
            choices = base.choices()
            assert choices, "no commuting pair found before quiescence"
            found = None
            for i in range(len(choices)):
                for j in range(i + 1, len(choices)):
                    one, other = base.fork(), base.fork()
                    one.advance(i)
                    one.advance(
                        next(
                            x
                            for x, c in enumerate(one.choices())
                            if c == choices[j]
                        )
                    )
                    other.advance(j)
                    other.advance(
                        next(
                            x
                            for x, c in enumerate(other.choices())
                            if c == choices[i]
                        )
                    )
                    if settled_fingerprint(one) == settled_fingerprint(
                        other
                    ):
                        found = (one, other)
                        break
                if found:
                    break
            if found:
                one, other = found
                # the traces differ even though the states agree
                assert (
                    one.trace.execution().steps
                    != other.trace.execution().steps
                )
                return
            base.advance(0)

    def test_depth_is_part_of_the_fingerprint(self):
        # Crash schedules are indexed by decision count, so a state is
        # only interchangeable with another at the same depth.
        run = started_run()
        before = run.fingerprint()
        run.advance(0)
        assert run.fingerprint() != before


class TestTagAliasing:
    """Structurally distinct values must never share an encoding.

    Regression tests for the tag-aliasing bug where tuples and lists
    shared the ``b"("`` tag, so ``["a"]`` and ``("a",)`` collided by
    construction — directly contradicting the docstring's "structurally
    distinct values never collide" and silently merging dedup-cache
    states that differ only in a list-vs-tuple script entry.
    """

    def test_list_and_tuple_do_not_collide(self):
        assert stable_digest(["a"]) != stable_digest(("a",))
        assert stable_digest([]) != stable_digest(())
        assert stable_digest([1, 2]) != stable_digest((1, 2))

    def test_nested_aliasing_blocked(self):
        assert stable_digest({"k": ["a"]}) != stable_digest({"k": ("a",)})
        assert stable_digest((["x"],)) != stable_digest((("x",),))
        assert stable_digest([("a",)]) != stable_digest((["a"],))

    def test_equal_structures_still_agree(self):
        assert stable_digest(["a", 1]) == stable_digest(["a", 1])
        assert stable_digest((["a"], ("b",))) == stable_digest(
            (["a"], ("b",))
        )

    def test_set_elements_sort_by_encoding_not_value(self):
        # mixed-type sets canonicalize by sorting element *encodings*
        # (self-delimiting byte strings) — no cross-type comparisons
        assert stable_digest({1, "a", (2,)}) == stable_digest(
            {(2,), 1, "a"}
        )
        assert stable_digest({("a", 1), ("b", 2)}) == stable_digest(
            {("b", 2), ("a", 1)}
        )


class TestPidCanonicalizerSingleUse:
    """A canonicalizer encodes exactly one state; reuse must raise."""

    def test_second_top_level_encode_raises(self):
        canon = PidCanonicalizer((0, 1))
        canon.value(("x", "y"))
        canon.seal()
        with pytest.raises(RuntimeError, match="single-use"):
            canon.value(("x", "y"))
        with pytest.raises(RuntimeError, match="single-use"):
            canon.token("z")

    def test_reuse_would_make_encodings_history_dependent(self):
        """The miscollapse the seal prevents, demonstrated.

        Token numbers are first-appearance ordinals, so on a fresh
        instance they are a pure function of the encoded state.  A
        reused instance carries the previous state's token table: the
        same state then encodes differently depending on what was
        encoded before it (and states that merely share content
        ordinals with the instance's history become indistinguishable
        from differently-valued ones) — the digest stops being a
        function of the state, and the orbit cache splits or merges on
        encoding history instead of state identity.
        """
        state = ("y", "z")
        fresh = PidCanonicalizer((0, 1)).value(state)
        # simulate the forbidden reuse: encode another state first on
        # the same (unsealed) instance, then the state under test
        reused = PidCanonicalizer((0, 1))
        reused.value(("x",))  # history: "x" takes token 0
        assert reused.value(state) != fresh
        # with enforcement, the dedup layer can never observe this:
        # canonical_state_digest seals its canonicalizer per call, so
        # back-to-back digests of one run are reproducible
        run = started_run()
        run.choices()
        assert run.canonical_state_digest((0, 1)) == (
            run.canonical_state_digest((0, 1))
        )

    def test_pid_mapping_survives_sealing(self):
        # pid() reads the permutation, not the token table: still legal
        canon = PidCanonicalizer((1, 0))
        canon.value("x")
        canon.seal()
        assert canon.pid(0) == 1


class TestOrbitDigest:
    """Canonical labelling: one digest per orbit, few encodings."""

    @staticmethod
    def _encode_for(states):
        """An encode() over explicit per-pid leaf values."""

        def encode(perm):
            relabeled = [None] * len(states)
            for pid, value in enumerate(states):
                relabeled[perm[pid]] = value
            # injective content renaming: first-appearance tokens over
            # the relabeled order, like PidCanonicalizer
            tokens: dict = {}
            image = []
            for value in relabeled:
                tokens.setdefault(value, len(tokens))
                image.append(tokens[value])
            return stable_digest(tuple(image))

        return encode

    def test_separating_profiles_cost_one_encoding(self):
        # distinct invariants per pid → a single residual candidate
        digest, perm, encodings = orbit_digest(
            [(0, 1, 2)], 3, lambda p: ("deg", p), self._encode_for("abc")
        )
        assert encodings == 1
        assert sorted(perm) == [0, 1, 2]

    def test_equal_profiles_search_the_residual_group(self):
        digest, perm, encodings = orbit_digest(
            [(0, 1)], 3, lambda p: "same", self._encode_for("ab")
        )
        assert encodings == 2  # 2! candidates within the cell

    def test_orbit_related_states_share_the_digest(self):
        # "ab" and "ba" are images of each other under the 0<->1 swap
        # (plus the injective renaming); equal-profile pids force the
        # residual search, which lands both on the same canonical key
        profile = lambda p: "same"
        one = orbit_digest([(0, 1)], 2, profile, self._encode_for("ab"))
        other = orbit_digest([(0, 1)], 2, profile, self._encode_for("ba"))
        assert one[0] == other[0]

    def test_profiles_gate_candidates_equivariantly(self):
        # give each pid its value as profile: the relabeled states
        # carry the profiles with them, so the two states still meet
        profile_ab = lambda p: "ab"[p]
        profile_ba = lambda p: "ba"[p]
        one = orbit_digest([(0, 1)], 2, profile_ab, self._encode_for("ab"))
        other = orbit_digest([(0, 1)], 2, profile_ba, self._encode_for("ba"))
        assert one[0] == other[0]
        assert one[2] == other[2] == 1  # profiles separate: 1 encoding

    def test_no_groups_is_the_identity_encoding(self):
        encode = self._encode_for("ab")
        digest, perm, encodings = orbit_digest([], 2, lambda p: p, encode)
        assert digest == encode((0, 1))
        assert perm == (0, 1)
        assert encodings == 1

    def test_run_orbit_key_merges_swapped_scripts(self):
        # integration: two initial states related by the 0<->1 swap
        # (scripts exchanged, contents renamed) share the orbit key
        one = started_run(scripts={0: ["a"], 1: ["b"]})
        other = started_run(scripts={0: ["b"], 1: ["a"]})
        one.choices(), other.choices()
        groups = ((0, 1),)
        key_one = one.orbit_key(groups)
        key_other = other.orbit_key(groups)
        assert key_one[0] == key_other[0]
        # the digest is the canonical encoding under the witness perm
        assert key_one[0] == one.canonical_state_digest(key_one[1])

    def test_run_orbit_key_distinguishes_genuinely_different_states(self):
        one = started_run(scripts={0: ["a"], 1: ["b"]})
        other = started_run(scripts={0: ["a", "b"], 1: ["c"]})
        one.choices(), other.choices()
        groups = ((0, 1),)
        assert one.orbit_key(groups)[0] != other.orbit_key(groups)[0]

"""Checkpoint/resume: interruption loses no work and changes no result.

The contract under test: kill an exploration at *any* node entry, and
resuming from its checkpoint produces a result construction-identical
to an uninterrupted run — same terminals, same violations (digest and
guides), same counters, same per-depth maps — on every engine variant
(plain incremental, dedup, sleep sets, symmetry, their composition, and
the sharded parallel front-end).  Only the event-replay economics may
differ: a resume re-pays schedule prefixes exactly as parallel shards
do, so ``events_executed``/``events_replayed`` are exempt.

The small n=2 configurations are cut at *every* cancellation boundary
(every node entry is a poll point); the depth-8 n=3 showcase is cut at
a stride, keeping the suite fast while still crossing checkpoint
boundaries deep in the tree.
"""

import os

import pytest

from repro.broadcasts import SendToAllBroadcast
from repro.runtime import CrashSchedule, Simulator
from repro.runtime.checkpoint import (
    CheckpointError,
    read_checkpoint,
    write_checkpoint,
)
from repro.runtime.explorer import (
    channels_property,
    combine_properties,
    explore_schedules,
    spec_property,
)
from repro.specs import SendToAllSpec, TotalOrderBroadcastSpec


def s2a_simulator(n=2):
    return Simulator(n, lambda pid, n_: SendToAllBroadcast(pid, n_))


def violating_property():
    return spec_property(
        TotalOrderBroadcastSpec(), assume_complete=False
    )


def clean_property():
    return combine_properties(
        spec_property(SendToAllSpec()), channels_property()
    )


class Countdown:
    """A cancel token that fires on the Nth ``is_set`` poll."""

    def __init__(self, fire_after: int) -> None:
        self.remaining = fire_after

    def is_set(self) -> bool:
        self.remaining -= 1
        return self.remaining < 0


class PollCounter:
    """A cancel token that never fires but counts poll points."""

    def __init__(self) -> None:
        self.count = 0

    def is_set(self) -> bool:
        self.count += 1
        return False


#: Every engine-variant kwarg set the identity contract covers.
VARIANTS = {
    "plain": {},
    "dedup": {"engine": "dedup"},
    "sleep": {"sleep_sets": True},
    "dedup-sleep": {"engine": "dedup", "sleep_sets": True},
    "composed": {
        "engine": "dedup",
        "sleep_sets": True,
        "symmetry": "rename",
        "static_independence": True,
    },
}

#: Fields that must survive an interrupt/resume cycle bit-for-bit.
IDENTITY = (
    "schedules_explored",
    "terminal_schedules",
    "exhausted",
    "max_depth_seen",
    "aborted",
    "states_seen",
    "states_deduped",
    "states_pruned_sleep",
    "states_merged_symmetry",
    "expansions_by_depth",
    "dedup_hits_by_depth",
)


def assert_identical(resumed, reference):
    assert not resumed.interrupted
    for name in IDENTITY:
        assert getattr(resumed, name) == getattr(reference, name), name
    assert resumed.violations_digest() == reference.violations_digest()
    assert [v.guide for v in resumed.violations] == [
        v.guide for v in reference.violations
    ]


def interrupt_and_resume(make_config, path, cut, **kwargs):
    """One kill at poll point ``cut``, then resume runs to completion."""
    simulator, scripts, prop = make_config()
    first = explore_schedules(
        simulator,
        scripts,
        prop,
        cancel=Countdown(cut),
        checkpoint_to=path,
        checkpoint_every=1,
        **kwargs,
    )
    assert first.interrupted
    assert not first.exhausted
    simulator, scripts, prop = make_config()
    resumed = explore_schedules(
        simulator,
        scripts,
        prop,
        checkpoint_to=path,
        resume_from=path,
        **kwargs,
    )
    return resumed


class TestEveryBoundary:
    """n=2: interrupt at every node entry, on every engine variant."""

    @staticmethod
    def make_config():
        return s2a_simulator(), {0: ["a"], 1: ["b"]}, violating_property()

    @pytest.mark.parametrize("variant", sorted(VARIANTS))
    def test_every_cut_is_lossless(self, variant, tmp_path):
        kwargs = VARIANTS[variant]
        polls = PollCounter()
        simulator, scripts, prop = self.make_config()
        reference = explore_schedules(
            simulator, scripts, prop, cancel=polls, **kwargs
        )
        assert reference.violations, "config expected to violate"
        path = os.path.join(tmp_path, "search.ckpt")
        for cut in range(polls.count):
            resumed = interrupt_and_resume(
                self.make_config, path, cut, **kwargs
            )
            assert_identical(resumed, reference)
            os.unlink(path)


class TestDepthEightStrided:
    """n=3 depth-8 showcase: strided cuts deep into the tree."""

    @staticmethod
    def make_config():
        return (
            s2a_simulator(3),
            {0: ["a"], 1: ["b"]},
            clean_property(),
        )

    @pytest.mark.parametrize(
        "variant", ["plain", "dedup-sleep", "composed"]
    )
    def test_strided_cuts_are_lossless(self, variant, tmp_path):
        kwargs = VARIANTS[variant]
        polls = PollCounter()
        simulator, scripts, prop = self.make_config()
        reference = explore_schedules(
            simulator, scripts, prop, cancel=polls, **kwargs
        )
        path = os.path.join(tmp_path, "search.ckpt")
        stride = max(1, polls.count // 5)
        for cut in range(0, polls.count, stride):
            resumed = interrupt_and_resume(
                self.make_config, path, cut, **kwargs
            )
            assert_identical(resumed, reference)
            os.unlink(path)


class TestParallelResume:
    """workers=2: per-shard checkpoints, parent-side merge identity."""

    @staticmethod
    def make_config():
        return (
            s2a_simulator(3),
            {0: ["a"], 1: ["b"]},
            clean_property(),
        )

    @pytest.mark.parametrize("variant", ["plain", "dedup-sleep"])
    @pytest.mark.parametrize("cut", [0, 3, 40])
    def test_interrupted_shards_resume(self, variant, cut, tmp_path):
        kwargs = dict(VARIANTS[variant], workers=2)
        simulator, scripts, prop = self.make_config()
        reference = explore_schedules(simulator, scripts, prop, **kwargs)
        path = os.path.join(tmp_path, "parallel.ckpt")
        resumed = interrupt_and_resume(
            self.make_config, path, cut, **kwargs
        )
        assert_identical(resumed, reference)

    def test_complete_checkpoint_short_circuits(self, tmp_path):
        path = os.path.join(tmp_path, "done.ckpt")
        simulator, scripts, prop = self.make_config()
        reference = explore_schedules(
            simulator, scripts, prop, workers=2, checkpoint_to=path
        )
        # the completed run leaves a complete checkpoint; resuming it
        # reconstructs the stored result without re-exploring
        simulator, scripts, prop = self.make_config()
        resumed = explore_schedules(
            simulator, scripts, prop, workers=2, resume_from=path
        )
        assert_identical(resumed, reference)
        assert resumed.events_executed == reference.events_executed


class TestCompleteCheckpoint:
    """A finished sequential run's checkpoint replays for free."""

    def test_sequential_fast_path(self, tmp_path):
        path = os.path.join(tmp_path, "done.ckpt")
        simulator = s2a_simulator()
        prop = violating_property()
        reference = explore_schedules(
            simulator,
            {0: ["a"], 1: ["b"]},
            prop,
            engine="dedup",
            checkpoint_to=path,
        )
        resumed = explore_schedules(
            s2a_simulator(),
            {0: ["a"], 1: ["b"]},
            violating_property(),
            engine="dedup",
            resume_from=path,
        )
        assert_identical(resumed, reference)
        assert resumed.events_executed == reference.events_executed


class TestCrashAwareVariants:
    """The crash-aware relation across every variant and execution mode.

    The crash-aware commutation proof runs by default, so the identity
    contract must hold where it actually fires: a crash-heavy
    configuration.  Same-variant runs must be construction-identical
    whether sequential or killed-and-resumed from a checkpoint; the
    sharded front-end must agree on terminals and violations; and every
    variant must agree on the semantic outcome.
    """

    CRASHES = CrashSchedule(at_step={2: 4})

    @staticmethod
    def make_config():
        return (
            s2a_simulator(3),
            {0: ["x"], 1: ["y"]},
            violating_property(),
        )

    def run(self, **kwargs):
        simulator, scripts, prop = self.make_config()
        return explore_schedules(
            simulator, scripts, prop,
            crash_schedule=self.CRASHES, max_depth=8, **kwargs,
        )

    @pytest.mark.parametrize("variant", sorted(VARIANTS))
    def test_modes_identical_per_variant(self, variant, tmp_path):
        kwargs = VARIANTS[variant]
        reference = self.run(**kwargs)
        assert reference.exhausted
        assert reference.violations, "crash config expected to violate"

        parallel = self.run(workers=2, **kwargs)
        assert parallel.exhausted
        assert parallel.violations_digest() == reference.violations_digest()
        if kwargs.get("engine") != "dedup":
            # the dedup cache is per-shard, so sharding legitimately
            # changes which revisits are cut (sequential and parallel
            # dedup counts drift with or without crash-awareness); the
            # incremental engine has no such order-dependence
            assert (
                parallel.terminal_schedules == reference.terminal_schedules
            )

        path = os.path.join(tmp_path, f"{variant}.ckpt")
        resume_kwargs = dict(
            kwargs, crash_schedule=self.CRASHES, max_depth=8
        )
        for cut in (0, 7, 31):
            resumed = interrupt_and_resume(
                self.make_config, path, cut, **resume_kwargs
            )
            assert_identical(resumed, reference)
            os.unlink(path)

    def test_variants_agree_semantically(self):
        runs = {name: self.run(**VARIANTS[name]) for name in VARIANTS}
        digests = {r.violations_digest() for r in runs.values()}
        assert len(digests) == 1, "variants disagree on violations"
        assert all(r.exhausted for r in runs.values())
        # the sleep variants did their job through the pending crash
        sleeping = runs["dedup-sleep"]
        assert (
            sleeping.terminal_schedules < runs["dedup"].terminal_schedules
        )
        assert sleeping.independence_stats.get("crash_proof", 0) > 0


class TestCooperativeCancel:
    """The cancel token interrupts promptly and checkpoints first."""

    def test_immediate_cancel_stops_at_first_node(self, tmp_path):
        path = os.path.join(tmp_path, "early.ckpt")
        result = explore_schedules(
            s2a_simulator(3),
            {0: ["a"], 1: ["b"]},
            clean_property(),
            cancel=Countdown(0),
            checkpoint_to=path,
        )
        assert result.interrupted
        assert not result.exhausted
        assert result.schedules_explored == 0
        assert os.path.exists(path)

    def test_interrupt_without_checkpoint_path(self):
        result = explore_schedules(
            s2a_simulator(),
            {0: ["a"], 1: ["b"]},
            clean_property(),
            cancel=Countdown(5),
        )
        assert result.interrupted

    def test_interrupted_result_round_trips(self, tmp_path):
        from repro.runtime.explorer import ExplorationResult

        result = explore_schedules(
            s2a_simulator(),
            {0: ["a"], 1: ["b"]},
            clean_property(),
            cancel=Countdown(3),
        )
        assert result.interrupted
        clone = ExplorationResult.from_json(result.to_json())
        assert clone.interrupted


class TestCheckpointSafety:
    """Corruption, mismatch, and misuse are loud errors, not bad data."""

    def checkpointed_run(self, path, **kwargs):
        return explore_schedules(
            s2a_simulator(),
            {0: ["a"], 1: ["b"]},
            clean_property(),
            cancel=Countdown(4),
            checkpoint_to=path,
            checkpoint_every=1,
            **kwargs,
        )

    def test_missing_file_is_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            explore_schedules(
                s2a_simulator(),
                {0: ["a"], 1: ["b"]},
                clean_property(),
                resume_from=os.path.join(tmp_path, "absent.ckpt"),
            )

    def test_corruption_is_detected(self, tmp_path):
        path = os.path.join(tmp_path, "bits.ckpt")
        self.checkpointed_run(path)
        with open(path) as handle:
            text = handle.read()
        with open(path, "w") as handle:
            handle.write(text.replace('"schedules_explored":', '"x":', 1))
        with pytest.raises(CheckpointError, match="integrity"):
            read_checkpoint(path)

    def test_truncation_is_detected(self, tmp_path):
        path = os.path.join(tmp_path, "torn.ckpt")
        self.checkpointed_run(path)
        with open(path) as handle:
            text = handle.read()
        with open(path, "w") as handle:
            handle.write(text[: len(text) // 2])
        with pytest.raises(CheckpointError, match="unreadable"):
            read_checkpoint(path)

    def test_schema_mismatch_is_rejected(self, tmp_path):
        path = os.path.join(tmp_path, "future.ckpt")
        body = read_checkpoint_body_stub()
        write_checkpoint(path, body)
        with open(path) as handle:
            text = handle.read()
        # a future engine wrote schema 99; sealing is consistent, so
        # only the schema gate can (and must) refuse it
        import json

        envelope = json.loads(text)
        envelope["checkpoint"]["schema"] = 99
        from repro.runtime.fingerprint import payload_digest

        canonical = json.dumps(
            envelope["checkpoint"], sort_keys=True, separators=(",", ":")
        )
        envelope["integrity"] = payload_digest(canonical)
        with open(path, "w") as handle:
            json.dump(envelope, handle)
        with pytest.raises(CheckpointError, match="schema"):
            read_checkpoint(path)

    def test_config_mismatch_refuses_resume(self, tmp_path):
        path = os.path.join(tmp_path, "other.ckpt")
        self.checkpointed_run(path)
        with pytest.raises(CheckpointError, match="configuration"):
            explore_schedules(
                s2a_simulator(3),  # different system size
                {0: ["a"], 1: ["b"]},
                clean_property(),
                resume_from=path,
            )

    def test_engine_mismatch_refuses_resume(self, tmp_path):
        path = os.path.join(tmp_path, "engine.ckpt")
        self.checkpointed_run(path)
        with pytest.raises(CheckpointError, match="configuration"):
            explore_schedules(
                s2a_simulator(),
                {0: ["a"], 1: ["b"]},
                clean_property(),
                engine="dedup",
                resume_from=path,
            )

    def test_replay_engine_rejects_checkpointing(self, tmp_path):
        for kwargs in (
            {"cancel": Countdown(1)},
            {"checkpoint_to": os.path.join(tmp_path, "x.ckpt")},
            {"resume_from": os.path.join(tmp_path, "x.ckpt")},
        ):
            with pytest.raises(ValueError, match="incremental engine"):
                explore_schedules(
                    s2a_simulator(),
                    {0: ["a"], 1: ["b"]},
                    clean_property(),
                    engine="replay",
                    **kwargs,
                )

    def test_checkpoint_every_validated(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_every"):
            explore_schedules(
                s2a_simulator(),
                {0: ["a"], 1: ["b"]},
                clean_property(),
                checkpoint_to=os.path.join(tmp_path, "x.ckpt"),
                checkpoint_every=0,
            )


def read_checkpoint_body_stub():
    """A minimal well-formed body for schema-tamper tests."""
    return {"kind": "subtree", "config": "cfg", "complete": False}

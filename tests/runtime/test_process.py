"""Unit tests for the per-process step machine (ProcessRuntime)."""

import pytest

from repro.core import Message, MessageFactory
from repro.runtime import (
    Blocked,
    BroadcastProcess,
    Deliver,
    DeliverStep,
    Idle,
    LocalNote,
    LocalStep,
    ProcessRuntime,
    Propose,
    ProposeStep,
    ProtocolError,
    ReturnStep,
    Send,
    SendStep,
    Wait,
)


class EchoAlgorithm(BroadcastProcess):
    """Send to all, deliver upon receive; no waiting."""

    def on_broadcast(self, message):
        yield from self.send_to_all(message)

    def on_receive(self, payload, sender):
        yield Deliver(payload)


class ProposeThenDeliver(BroadcastProcess):
    def on_broadcast(self, message):
        decided = yield Propose("obj", message)
        yield Deliver(decided)

    def on_receive(self, payload, sender):
        yield Deliver(payload)


class WaitingAlgorithm(BroadcastProcess):
    """Waits until its message has been delivered (by a receive handler)."""

    def __init__(self, pid, n):
        super().__init__(pid, n)
        self.seen = set()

    def on_broadcast(self, message):
        yield Send(self.pid, message)
        yield Wait(lambda: message.uid in self.seen, "await self-delivery")
        yield LocalNote("woke")

    def on_receive(self, payload, sender):
        self.seen.add(payload.uid)
        yield Deliver(payload)


class BadHandlerWaits(BroadcastProcess):
    def on_broadcast(self, message):
        yield Send(self.pid, message)

    def on_receive(self, payload, sender):
        yield Wait(lambda: True)


def make_runtime(algorithm_class, pid=0, n=3):
    return ProcessRuntime(algorithm_class(pid, n))


class TestBroadcastLifecycle:
    def test_idle_before_any_work(self):
        runtime = make_runtime(EchoAlgorithm)
        assert isinstance(runtime.next_step(), Idle)
        assert not runtime.has_enabled_step()

    def test_sends_then_returns(self):
        runtime = make_runtime(EchoAlgorithm, n=2)
        message = runtime.start_broadcast("hello")
        assert runtime.busy
        first = runtime.next_step()
        second = runtime.next_step()
        assert isinstance(first, SendStep) and isinstance(second, SendStep)
        assert {first.p2p.receiver, second.p2p.receiver} == {0, 1}
        final = runtime.next_step()
        assert isinstance(final, ReturnStep)
        assert final.message == message
        assert not runtime.busy
        assert message.uid in runtime.returned_uids

    def test_nested_broadcast_rejected(self):
        runtime = make_runtime(EchoAlgorithm)
        runtime.start_broadcast("a")
        with pytest.raises(ProtocolError, match="pending"):
            runtime.start_broadcast("b")

    def test_message_identities_are_sequential(self):
        runtime = make_runtime(EchoAlgorithm, pid=2)
        first = runtime.start_broadcast("a")
        while not isinstance(runtime.next_step(), ReturnStep):
            pass
        second = runtime.start_broadcast("b")
        assert (first.uid.sender, first.uid.seq) == (2, 0)
        assert (second.uid.sender, second.uid.seq) == (2, 1)


class TestReceiveHandlers:
    def test_handler_produces_delivery(self):
        from repro.core.actions import PointToPointId

        runtime = make_runtime(EchoAlgorithm)
        factory = MessageFactory()
        payload = factory.new(1, "x")
        runtime.inject_receive(PointToPointId(1, 0, 0), payload)
        step = runtime.next_step()
        assert isinstance(step, DeliverStep)
        assert step.message == payload
        assert runtime.has_delivered(payload.uid)

    def test_wrongly_addressed_receive_rejected(self):
        from repro.core.actions import PointToPointId

        runtime = make_runtime(EchoAlgorithm, pid=0)
        with pytest.raises(ProtocolError, match="addressed"):
            runtime.inject_receive(PointToPointId(1, 2, 0), None)

    def test_handlers_run_before_operation(self):
        from repro.core.actions import PointToPointId

        runtime = make_runtime(EchoAlgorithm, n=1)
        runtime.start_broadcast("op")
        factory = MessageFactory()
        runtime.inject_receive(
            PointToPointId(1, 0, 0), factory.new(1, "urgent")
        )
        step = runtime.next_step()
        assert isinstance(step, DeliverStep)  # handler first

    def test_wait_in_handler_rejected(self):
        from repro.core.actions import PointToPointId

        runtime = make_runtime(BadHandlerWaits)
        factory = MessageFactory()
        runtime.inject_receive(PointToPointId(1, 0, 0), factory.new(1))
        with pytest.raises(ProtocolError, match="atomic"):
            runtime.next_step()

    def test_duplicate_delivery_rejected(self):
        from repro.core.actions import PointToPointId

        runtime = make_runtime(EchoAlgorithm)
        factory = MessageFactory()
        payload = factory.new(1, "x")
        runtime.inject_receive(PointToPointId(1, 0, 0), payload)
        runtime.next_step()
        runtime.inject_receive(PointToPointId(1, 0, 1), payload)
        with pytest.raises(ProtocolError, match="twice"):
            runtime.next_step()


class TestProposeFlow:
    def test_propose_suspends_until_decide(self):
        runtime = make_runtime(ProposeThenDeliver)
        message = runtime.start_broadcast("v")
        step = runtime.next_step()
        assert isinstance(step, ProposeStep)
        assert step.ksa == "obj"
        with pytest.raises(ProtocolError, match="awaiting"):
            runtime.next_step()
        runtime.resume_decide(message)
        delivered = runtime.next_step()
        assert isinstance(delivered, DeliverStep)
        assert delivered.message == message

    def test_decide_without_propose_rejected(self):
        runtime = make_runtime(ProposeThenDeliver)
        with pytest.raises(ProtocolError, match="without a pending"):
            runtime.resume_decide("x")


class TestWaiting:
    def test_blocked_until_guard_true(self):
        from repro.core.actions import PointToPointId

        runtime = make_runtime(WaitingAlgorithm, n=1)
        message = runtime.start_broadcast("w")
        send = runtime.next_step()
        assert isinstance(send, SendStep)
        blocked = runtime.next_step()
        assert isinstance(blocked, Blocked)
        assert "self-delivery" in blocked.reason
        assert not runtime.has_enabled_step()
        # the self-send arrives: the handler unblocks the operation
        runtime.inject_receive(send.p2p, message)
        assert isinstance(runtime.next_step(), DeliverStep)
        assert isinstance(runtime.next_step(), LocalStep)
        assert isinstance(runtime.next_step(), ReturnStep)

    def test_guard_true_immediately_skips_wait(self):
        class NoWait(BroadcastProcess):
            def on_broadcast(self, message):
                yield Wait(lambda: True)
                yield LocalNote("through")

            def on_receive(self, payload, sender):
                return
                yield

        runtime = ProcessRuntime(NoWait(0, 1))
        runtime.start_broadcast("x")
        assert isinstance(runtime.next_step(), LocalStep)


class TestP2PMinting:
    def test_unique_per_destination(self):
        runtime = make_runtime(EchoAlgorithm, pid=1)
        ids = {runtime.mint_p2p(0) for _ in range(5)}
        ids |= {runtime.mint_p2p(2) for _ in range(5)}
        assert len(ids) == 10
        assert all(p.sender == 1 for p in ids)

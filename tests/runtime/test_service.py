"""Unit tests for the request/response step machine (ServiceRuntime)."""

import pytest

from repro.core.actions import PointToPointId
from repro.runtime import LocalNote, Send, Wait
from repro.runtime.process import (
    Blocked,
    Idle,
    LocalStep,
    ProtocolError,
    SendStep,
)
from repro.runtime.service import (
    Invocation,
    ResponseStep,
    ServiceProcess,
    ServiceRuntime,
)


class Echo(ServiceProcess):
    """ping(x) sends x to everyone and returns it doubled."""

    def on_invoke(self, invocation):
        yield from self.send_to_all(invocation.argument)
        return invocation.argument * 2

    def on_receive(self, payload, sender):
        yield LocalNote(f"got {payload} from {sender}")


class Quorum(ServiceProcess):
    def __init__(self, pid, n):
        super().__init__(pid, n)
        self.acks = 0

    def on_invoke(self, invocation):
        yield from self.send_to_all("ping")
        yield Wait(lambda: self.acks >= 2, "two acks")
        return self.acks

    def on_receive(self, payload, sender):
        self.acks += 1
        return
        yield


class BadHandler(ServiceProcess):
    def on_invoke(self, invocation):
        return "never"
        yield

    def on_receive(self, payload, sender):
        yield Wait(lambda: True)


class TestLifecycle:
    def test_idle_then_invoke_then_respond(self):
        runtime = ServiceRuntime(Echo(0, 2))
        assert isinstance(runtime.next_step(), Idle)
        runtime.invoke(Invocation("ping", "svc", 21))
        assert runtime.busy
        first = runtime.next_step()
        second = runtime.next_step()
        assert isinstance(first, SendStep)
        assert isinstance(second, SendStep)
        response = runtime.next_step()
        assert isinstance(response, ResponseStep)
        assert response.result == 42
        assert not runtime.busy

    def test_overlapping_invocations_rejected(self):
        runtime = ServiceRuntime(Echo(0, 1))
        runtime.invoke(Invocation("ping", "svc", 1))
        with pytest.raises(ProtocolError, match="pending"):
            runtime.invoke(Invocation("ping", "svc", 2))

    def test_wait_blocks_until_guard(self):
        runtime = ServiceRuntime(Quorum(0, 3))
        runtime.invoke(Invocation("q", "svc"))
        for _ in range(3):
            assert isinstance(runtime.next_step(), SendStep)
        blocked = runtime.next_step()
        assert isinstance(blocked, Blocked)
        assert blocked.reason == "two acks"
        assert runtime.waiting_reason == "two acks"
        assert not runtime.has_enabled_step()
        runtime.inject_receive(PointToPointId(1, 0, 0), "ack")
        runtime.inject_receive(PointToPointId(2, 0, 0), "ack")
        # the two handlers are empty generators; the op then resumes
        response = runtime.next_step()
        assert isinstance(response, ResponseStep)
        assert response.result == 2

    def test_handlers_run_before_operation(self):
        runtime = ServiceRuntime(Echo(0, 1))
        runtime.invoke(Invocation("ping", "svc", 1))
        runtime.inject_receive(PointToPointId(1, 0, 0), "x")
        step = runtime.next_step()
        assert isinstance(step, LocalStep)
        assert "got x" in step.label


class TestProtocolErrors:
    def test_wait_in_handler_rejected(self):
        runtime = ServiceRuntime(BadHandler(0, 1))
        runtime.inject_receive(PointToPointId(1, 0, 0), None)
        with pytest.raises(ProtocolError, match="atomic"):
            runtime.next_step()

    def test_wrongly_addressed_receive_rejected(self):
        runtime = ServiceRuntime(Echo(0, 2))
        with pytest.raises(ProtocolError, match="addressed"):
            runtime.inject_receive(PointToPointId(1, 5, 0), None)

    def test_unsupported_effect_rejected(self):
        class Weird(ServiceProcess):
            def on_invoke(self, invocation):
                yield object()

            def on_receive(self, payload, sender):
                return
                yield

        runtime = ServiceRuntime(Weird(0, 1))
        runtime.invoke(Invocation("x", "svc"))
        with pytest.raises(ProtocolError, match="unsupported effect"):
            runtime.next_step()


class TestP2PMinting:
    def test_unique_ids_per_destination(self):
        runtime = ServiceRuntime(Echo(2, 3))
        ids = [runtime.mint_p2p(0) for _ in range(3)]
        ids += [runtime.mint_p2p(1) for _ in range(3)]
        assert len(set(ids)) == 6
        assert all(p.sender == 2 for p in ids)

"""Differential tests of the pre-step reductions (sleep sets, symmetry).

Sleep sets prune redundant interleavings *before* forking; renaming
symmetry merges states equal up to a pid permutation plus an injective
content renaming.  Both must preserve exactly what the explorer is for:
the set of distinct terminal observations and the set of violations
(symmetry: modulo the recorded permutation).  These tests diff every
reduction against the plain dedup engine over sync/async/crash
configurations, through budget and depth cut points, across worker
counts, and on double runs (determinism).
"""

import pytest

from repro.broadcasts import SendToAllBroadcast, UniformReliableBroadcast
from repro.runtime import CrashSchedule, Simulator
from repro.runtime.explorer import (
    channels_property,
    explore_schedules,
    spec_property,
)
from repro.runtime.ksa_objects import ScriptedPolicy
from repro.specs import TotalOrderBroadcastSpec


def s2a(n=3, **kwargs):
    return Simulator(n, lambda pid, n_: SendToAllBroadcast(pid, n_), **kwargs)


def urb(n=2, **kwargs):
    return Simulator(
        n, lambda pid, n_: UniformReliableBroadcast(pid, n_), **kwargs
    )


def observing_property(observations):
    """A property that records each terminal's per-process deliveries."""

    def prop(result):
        observations.add(
            tuple(
                tuple(m.uid for m in result.deliveries(p))
                for p in sorted(result.runtimes)
            )
        )
        return ()

    return prop


def observations_of(simulator, scripts, **kwargs):
    seen = set()
    result = explore_schedules(
        simulator, scripts, observing_property(seen), **kwargs
    )
    return seen, result


CONFIGS = [
    pytest.param(s2a, {0: ["a"], 1: ["b"]}, None, {}, id="s2a-async"),
    pytest.param(
        s2a, {0: ["a"], 1: ["b"]}, None, {"sync_broadcasts": True},
        id="s2a-sync",
    ),
    pytest.param(
        s2a, {0: ["a"], 1: ["b"]}, CrashSchedule(at_step={1: 3}), {},
        id="s2a-crash",
    ),
    pytest.param(
        s2a, {0: ["a"], 1: ["b"]},
        CrashSchedule(initially=frozenset({2})), {},
        id="s2a-initial-crash",
    ),
    pytest.param(urb, {0: ["a"]}, None, {}, id="urb-async"),
    pytest.param(
        urb, {0: ["a"]}, CrashSchedule(at_step={0: 4}), {}, id="urb-crash"
    ),
]


class TestSleepSetsPreserveObservations:
    """Sleep pruning keeps every distinct terminal observation."""

    @pytest.mark.parametrize("factory, scripts, crashes, kwargs", CONFIGS)
    @pytest.mark.parametrize("base_engine", ["incremental", "dedup"])
    def test_observation_sets_equal(
        self, factory, scripts, crashes, kwargs, base_engine
    ):
        plain, base = observations_of(
            factory(**kwargs), scripts, crash_schedule=crashes,
            engine=base_engine, max_depth=10,
        )
        slept, reduced = observations_of(
            factory(**kwargs), scripts, crash_schedule=crashes,
            engine=base_engine, max_depth=10, sleep_sets=True,
        )
        assert slept == plain
        assert reduced.exhausted and base.exhausted
        # the reduction must actually reduce work somewhere; crash
        # configurations legitimately stay unpruned while a scheduled
        # crash is pending (every event is crash-sensitive until then)
        assert reduced.terminal_schedules <= base.terminal_schedules

    @pytest.mark.parametrize("factory, scripts, crashes, kwargs", CONFIGS)
    def test_depth_cuts_preserved(self, factory, scripts, crashes, kwargs):
        for depth in (3, 5):
            plain, _ = observations_of(
                factory(**kwargs), scripts, crash_schedule=crashes,
                engine="dedup", max_depth=depth,
            )
            slept, _ = observations_of(
                factory(**kwargs), scripts, crash_schedule=crashes,
                engine="dedup", max_depth=depth, sleep_sets=True,
            )
            assert slept == plain

    def test_sleep_actually_prunes(self):
        _, result = observations_of(
            s2a(), {0: ["a"], 1: ["b"]}, engine="dedup",
            max_depth=8, sleep_sets=True,
        )
        assert result.states_pruned_sleep > 0
        assert result.terminal_schedules < 2520  # the unreduced count

    def test_budget_cut_points(self):
        """Budgeted sleep runs stop cleanly and deterministically."""
        for budget in (1, 7, 40):
            first = explore_schedules(
                s2a(), {0: ["a"], 1: ["b"]}, channels_property(),
                engine="dedup", sleep_sets=True, max_schedules=budget,
            )
            again = explore_schedules(
                s2a(), {0: ["a"], 1: ["b"]}, channels_property(),
                engine="dedup", sleep_sets=True, max_schedules=budget,
            )
            assert first.terminal_schedules <= budget
            assert not first.exhausted
            assert first.terminal_schedules == again.terminal_schedules
            assert first.states_seen == again.states_seen
            assert first.states_pruned_sleep == again.states_pruned_sleep

    def test_sleep_does_not_mint_cache_slots(self):
        """Distinct states match plain dedup: sleep left the cache key.

        With the subset-reuse rule the transposition cache is keyed by
        the state alone, so the sleep-set reduction can no longer mint
        extra slots for the same state reached under different sleep
        sets — ``states_seen`` is a pure state count again.  Arrivals
        whose sleep set is incompatible with the stored entry re-expand
        (counted in ``schedules_explored``), they do not re-count.
        """
        dedup = explore_schedules(
            s2a(), {0: ["a"], 1: ["b"]}, channels_property(),
            engine="dedup", max_depth=8,
        )
        slept = explore_schedules(
            s2a(), {0: ["a"], 1: ["b"]}, channels_property(),
            engine="dedup", max_depth=8, sleep_sets=True,
        )
        assert slept.states_seen == dedup.states_seen == 321
        assert slept.schedules_explored >= slept.states_seen
        # the reduction still wins where it should: terminals and events
        assert slept.terminal_schedules < dedup.terminal_schedules
        assert slept.events_executed < dedup.events_executed

    def test_workers_match_sequential(self):
        sequential = explore_schedules(
            s2a(), {0: ["a"], 1: ["b"]}, channels_property(),
            sleep_sets=True, max_depth=8,
        )
        parallel = explore_schedules(
            s2a(), {0: ["a"], 1: ["b"]}, channels_property(),
            sleep_sets=True, max_depth=8, workers=3,
        )
        assert parallel.terminal_schedules == sequential.terminal_schedules
        assert parallel.schedules_explored == sequential.schedules_explored
        assert parallel.states_pruned_sleep == sequential.states_pruned_sleep
        assert parallel.violations == sequential.violations


def pid_permuted(observation, perm):
    """Apply a pid permutation to a terminal observation tuple."""
    renamed = [None] * len(observation)
    for pid, deliveries in enumerate(observation):
        renamed[perm[pid]] = tuple(
            type(uid)(perm[uid.sender], uid.seq) for uid in deliveries
        )
    return tuple(renamed)


class TestRenamingSymmetry:
    """Orbit merging is violation- and observation-complete."""

    GROUP = [(0, 1, 2), (1, 0, 2)]  # senders 0/1 interchangeable, 2 pinned

    def test_observations_complete_modulo_renaming(self):
        plain, _ = observations_of(
            s2a(), {0: ["a"], 1: ["b"]}, engine="dedup", max_depth=8,
        )
        merged, result = observations_of(
            s2a(), {0: ["a"], 1: ["b"]}, engine="dedup", max_depth=8,
            sleep_sets=True, symmetry="rename",
        )
        assert result.states_merged_symmetry > 0
        # no invented observations...
        assert merged <= plain
        # ...and every unreduced observation is covered by a visited
        # one under some permutation of the declared symmetry group
        for observation in plain:
            assert any(
                pid_permuted(observation, perm) in merged
                for perm in self.GROUP
            )

    def test_depth8_acceptance_bounds(self):
        """The headline composition on the symmetric depth-8 config.

        Plain dedup expands 321 distinct states over 2520 terminals.
        Renaming merges 79 orbit pairs (242 canonical states — the
        floor: the remaining states are fixed points of the 0<->1
        swap, so no sound renaming can merge them).  Sleep sets cannot
        reduce *distinct* states (a slept event's target is reachable
        via the commuted, explored order by construction), and since
        the sleep set left the cache key (subset-reuse), composing
        them with symmetry stays exactly on the 242 orbit floor — the
        few sleep-incompatible arrivals re-expand an already-counted
        orbit (visible in ``schedules_explored``) instead of minting
        new cache slots.  The canonical-labelling pass pays ~1 state
        encoding per cache lookup, where permutation enumeration paid
        |perms| = 2.
        """
        dedup = explore_schedules(
            s2a(), {0: ["a"], 1: ["b"]}, channels_property(), engine="dedup",
            max_depth=8,
        )
        renamed = explore_schedules(
            s2a(), {0: ["a"], 1: ["b"]}, channels_property(), engine="dedup",
            max_depth=8, symmetry="rename",
        )
        composed = explore_schedules(
            s2a(), {0: ["a"], 1: ["b"]}, channels_property(), engine="dedup",
            max_depth=8, sleep_sets=True, symmetry="rename",
        )
        assert dedup.states_seen == 321
        assert dedup.terminal_schedules == 2520
        assert renamed.states_seen == 242
        assert composed.states_seen == 242  # the proven orbit floor
        # subset-reuse keeps covered-distinct terminals far below the
        # 2520 raw interleavings (a handful of commutation-redundant
        # terminals ride along through less-slept cached subtrees)
        assert composed.terminal_schedules == 62
        assert composed.schedules_explored == 272
        # the composition beats both the unreduced terminal count and
        # the unreduced expansion count
        assert composed.states_seen < dedup.states_seen
        assert composed.events_executed < dedup.events_executed
        # canonical labelling: ~1 encoding per lookup, not |perms|
        lookups = (
            renamed.schedules_explored
            + renamed.states_deduped
            + renamed.states_merged_symmetry
        )
        assert renamed.orbit_encodings <= 1.2 * lookups
        assert renamed.orbit_encodings < 2 * lookups  # enumeration cost
        assert dedup.orbit_encodings == 0

    def test_violations_complete_modulo_permutation(self):
        scripts = {0: ["x"], 1: ["y"]}
        prop = spec_property(TotalOrderBroadcastSpec(), assume_complete=False)
        base = explore_schedules(
            s2a(n=2), scripts, prop, engine="dedup"
        )
        reduced = explore_schedules(
            s2a(n=2), scripts, prop, engine="dedup",
            sleep_sets=True, symmetry="rename",
        )
        assert base.violations and reduced.violations
        assert {v.problems for v in reduced.violations} == {
            v.problems for v in base.violations
        }
        replayer = s2a(n=2)
        replayer.atomic_local = True
        for violation in reduced.violations:
            if violation.permutation is not None:
                assert sorted(violation.permutation) == [0, 1]
            replay = replayer.run(scripts, guide=list(violation.guide))
            assert replay.quiescent and replay.pending_choices == 0
            assert tuple(prop(replay)) == violation.problems

    def test_inert_without_symmetric_hook(self):
        """A pid-dependent oracle policy disables the reduction."""
        policy = ScriptedPolicy({})
        plain = explore_schedules(
            s2a(ksa_policy=policy), {0: ["a"], 1: ["b"]},
            channels_property(), engine="dedup", max_depth=6,
        )
        renamed = explore_schedules(
            s2a(ksa_policy=policy), {0: ["a"], 1: ["b"]},
            channels_property(), engine="dedup", max_depth=6,
            symmetry="rename",
        )
        assert renamed.states_seen == plain.states_seen
        assert renamed.states_merged_symmetry == 0

    def test_crashed_pids_pinned(self):
        """Faulty processes never participate in the renaming group."""
        crashes = CrashSchedule(at_step={1: 3})
        plain, _ = observations_of(
            s2a(), {0: ["a"], 1: ["b"]}, engine="dedup",
            crash_schedule=crashes, max_depth=8,
        )
        merged, _ = observations_of(
            s2a(), {0: ["a"], 1: ["b"]}, engine="dedup",
            crash_schedule=crashes, max_depth=8, symmetry="rename",
        )
        # 0 and 1 are distinguishable (1 crashes): nothing may merge
        # across them, but states may still merge via content renaming
        assert merged <= plain

    def test_determinism_double_run(self):
        runs = [
            explore_schedules(
                s2a(), {0: ["a"], 1: ["b"]}, channels_property(),
                engine="dedup", max_depth=8, sleep_sets=True,
                symmetry="rename",
            )
            for _ in range(2)
        ]
        for field in (
            "states_seen", "states_deduped", "states_pruned_sleep",
            "states_merged_symmetry", "terminal_schedules",
            "schedules_explored", "expansions_by_depth",
            "dedup_hits_by_depth",
        ):
            assert getattr(runs[0], field) == getattr(runs[1], field)
        assert runs[0].violations == runs[1].violations


class TestProgressReporting:
    """The progress callback sees consistent, monotone telemetry."""

    def test_snapshots_consistent(self):
        snapshots = []
        result = explore_schedules(
            s2a(), {0: ["a"], 1: ["b"]}, channels_property(),
            engine="dedup", max_depth=8,
            progress=snapshots.append, progress_every=50,
        )
        assert snapshots, "expected at least one snapshot"
        previous = 0
        for snap in snapshots:
            assert snap.expansions % 50 == 0
            assert snap.expansions > previous
            previous = snap.expansions
            assert sum(snap.expansions_by_depth.values()) == snap.expansions
            assert snap.elapsed >= 0
            assert snap.states_per_second >= 0
        assert sum(result.expansions_by_depth.values()) == result.states_seen
        assert (
            sum(result.dedup_hits_by_depth.values()) == result.states_deduped
        )

    def test_progress_with_sleep_and_symmetry(self):
        snapshots = []
        explore_schedules(
            s2a(), {0: ["a"], 1: ["b"]}, channels_property(),
            engine="dedup", max_depth=8, sleep_sets=True,
            symmetry="rename", progress=snapshots.append, progress_every=25,
        )
        assert snapshots

    def test_workers2_counters_consistent(self):
        """Per-depth counters under ``workers=2`` add up exactly once.

        The parallel engine accounts frontier expansions directly into
        the merged result and each shard worker reports only the nodes
        it expanded itself, so the DFS-order merge must neither drop
        nor double-count: summed per-depth expansions equal the total
        expansion count, summed per-depth cache hits equal the pruned
        arrivals, and both agree with the sequential run on this
        exhaustive configuration.
        """
        sequential = explore_schedules(
            s2a(), {0: ["a"], 1: ["b"]}, channels_property(),
            engine="dedup", max_depth=8, sleep_sets=True,
        )
        parallel = explore_schedules(
            s2a(), {0: ["a"], 1: ["b"]}, channels_property(),
            engine="dedup", max_depth=8, sleep_sets=True, workers=2,
        )
        for result in (sequential, parallel):
            assert (
                sum(result.expansions_by_depth.values())
                == result.schedules_explored
            )
            assert (
                sum(result.dedup_hits_by_depth.values())
                == result.states_deduped + result.states_merged_symmetry
            )
        # the exact covered-terminal count may drift (per-shard caches
        # replay different subset-reuse summaries than the shared
        # sequential cache) but the merge stays deterministic...
        again = explore_schedules(
            s2a(), {0: ["a"], 1: ["b"]}, channels_property(),
            engine="dedup", max_depth=8, sleep_sets=True, workers=2,
        )
        assert again.terminal_schedules == parallel.terminal_schedules
        assert again.expansions_by_depth == parallel.expansions_by_depth
        assert again.dedup_hits_by_depth == parallel.dedup_hits_by_depth
        # ...and violation-complete: the violating n=2 config reports
        # the same problem set sharded as sequentially
        scripts = {0: ["x"], 1: ["y"]}
        prop = spec_property(TotalOrderBroadcastSpec(), assume_complete=False)
        seq_v = explore_schedules(
            s2a(n=2), scripts, prop, engine="dedup", sleep_sets=True,
        )
        par_v = explore_schedules(
            s2a(n=2), scripts, prop, engine="dedup", sleep_sets=True,
            workers=2,
        )
        assert seq_v.violations and par_v.violations
        assert {v.problems for v in par_v.violations} == {
            v.problems for v in seq_v.violations
        }
        # per-shard caches cannot prune cross-shard convergences, so
        # the parallel run may expand more, never fewer
        assert parallel.states_seen >= sequential.states_seen

    def test_validation_errors(self):
        config = (s2a(), {0: ["a"]}, channels_property())
        with pytest.raises(ValueError, match="symmetry"):
            explore_schedules(*config, symmetry="mirror")
        with pytest.raises(ValueError, match="dedup"):
            explore_schedules(*config, symmetry="rename")
        with pytest.raises(ValueError, match="incremental"):
            explore_schedules(*config, engine="replay", sleep_sets=True)
        with pytest.raises(ValueError, match="progress_every"):
            explore_schedules(*config, progress_every=0)
        with pytest.raises(ValueError, match="incremental"):
            explore_schedules(
                *config, engine="replay", progress=lambda s: None
            )
        with pytest.raises(ValueError, match="workers"):
            explore_schedules(
                *config, workers=2, progress=lambda s: None
            )

"""Performance P5 — the ABD register emulation and linearizability checking."""

import pytest

from repro.registers import (
    AbdRegisterProcess,
    ServiceSimulator,
    check_linearizable,
)
from repro.runtime import CrashSchedule
from repro.runtime.service import Invocation


def workload(n, ops_per_process):
    return {
        p: [
            Invocation("write" if i % 2 == 0 else "read", f"R{p % 2}",
                       i if i % 2 == 0 else None)
            for i in range(ops_per_process)
        ]
        for p in range(n)
    }


@pytest.mark.parametrize("n", [3, 5, 7])
def test_abd_throughput(benchmark, n):
    def run():
        simulator = ServiceSimulator(
            n, lambda pid, size: AbdRegisterProcess(pid, size), seed=1
        )
        result = simulator.run(workload(n, 2))
        assert result.quiescent
        return result

    result = benchmark(run)
    assert len(result.history.complete()) == 2 * n


def test_abd_with_minority_crash(benchmark):
    def run():
        simulator = ServiceSimulator(
            5, lambda pid, size: AbdRegisterProcess(pid, size), seed=2
        )
        result = simulator.run(
            workload(5, 2), crash_schedule=CrashSchedule({4: 30})
        )
        assert not result.blocked
        return result

    benchmark(run)


@pytest.mark.parametrize("ops", [6, 10])
def test_linearizability_checker_scaling(benchmark, ops):
    simulator = ServiceSimulator(
        5, lambda pid, size: AbdRegisterProcess(pid, size), seed=3
    )
    result = simulator.run(workload(5, ops // 2))
    report = benchmark(check_linearizable, result.history)
    assert report.ok

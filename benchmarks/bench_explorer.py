"""Performance P6 — exhaustive schedule exploration throughput."""

import pytest

from repro.broadcasts import SendToAllBroadcast, UniformReliableBroadcast
from repro.runtime import (
    CrashSchedule,
    Simulator,
    channels_property,
    combine_properties,
    explore_schedules,
    spec_property,
)
from repro.runtime.independence import Footprint, classify
from repro.specs import (
    SendToAllSpec,
    TotalOrderBroadcastSpec,
    UniformReliableBroadcastSpec,
)


def test_exhaustive_urb_single_broadcast(benchmark):
    simulator = Simulator(2, lambda pid, n: UniformReliableBroadcast(pid, n))

    def explore():
        result = explore_schedules(
            simulator,
            {0: ["a"]},
            combine_properties(
                spec_property(UniformReliableBroadcastSpec()),
                channels_property(),
            ),
        )
        assert result.exhausted and result.ok
        return result

    result = benchmark(explore)
    assert result.terminal_schedules == 8


def test_exhaustive_two_senders(benchmark):
    simulator = Simulator(2, lambda pid, n: SendToAllBroadcast(pid, n))

    def explore():
        result = explore_schedules(
            simulator,
            {0: ["a"], 1: ["b"]},
            spec_property(SendToAllSpec()),
        )
        assert result.exhausted and result.ok
        return result

    result = benchmark(explore)
    assert result.terminal_schedules == 80


def test_violation_search(benchmark):
    simulator = Simulator(2, lambda pid, n: SendToAllBroadcast(pid, n))

    def search():
        result = explore_schedules(
            simulator,
            {0: ["a"], 1: ["b"]},
            spec_property(TotalOrderBroadcastSpec(),
                          assume_complete=False),
            stop_at_first_violation=True,
        )
        assert not result.ok
        return result

    benchmark(search)


@pytest.mark.parametrize("engine", ["incremental", "dedup", "replay"])
def test_engine_comparison_two_senders(benchmark, engine):
    """Incremental (fork-at-branch) vs dedup vs replay, same tree."""
    simulator = Simulator(2, lambda pid, n: SendToAllBroadcast(pid, n))

    def explore():
        result = explore_schedules(
            simulator,
            {0: ["a"], 1: ["b"]},
            channels_property(assume_complete=False),
            engine=engine,
        )
        assert result.exhausted
        return result

    result = benchmark(explore)
    assert result.terminal_schedules == 80


def test_incremental_depth8_three_processes(benchmark):
    """The depth-8 config of BENCH_explorer.json, incremental engine."""
    simulator = Simulator(3, lambda pid, n: SendToAllBroadcast(pid, n))

    def explore():
        result = explore_schedules(
            simulator,
            {0: ["a"], 1: ["b"]},
            channels_property(assume_complete=False),
        )
        assert result.exhausted
        # the whole point of the incremental engine: no event is ever
        # re-executed on this tree (fork snapshots cover every branch)
        assert result.events_replayed == 0
        return result

    result = benchmark(explore)
    assert result.terminal_schedules == 2520
    assert result.max_depth_seen == 8


def test_dedup_depth8_three_processes(benchmark):
    """The same depth-8 tree through the fingerprint transposition cache.

    The symmetric configuration collapses 2520 terminal schedules onto a
    few hundred distinct states; the cache expands each once and replays
    its recorded subtree summary everywhere else.
    """
    simulator = Simulator(3, lambda pid, n: SendToAllBroadcast(pid, n))

    def explore():
        result = explore_schedules(
            simulator,
            {0: ["a"], 1: ["b"]},
            channels_property(assume_complete=False),
            engine="dedup",
        )
        assert result.exhausted
        return result

    result = benchmark(explore)
    assert result.terminal_schedules == 2520
    assert result.max_depth_seen == 8
    # the dedup acceptance metric: far fewer expansions than terminals
    assert result.states_seen * 3 <= result.terminal_schedules
    assert result.states_deduped > 0


def test_crash_aware_sleep_depth8(benchmark):
    """The crash config of BENCH_explorer.json through the crash-aware
    sleep-set datapath: interned choice keys, bitmask sleep sets, and
    the footprint-pair verdict memo all hot in the DFS inner loop."""
    simulator = Simulator(3, lambda pid, n: SendToAllBroadcast(pid, n))

    def explore():
        result = explore_schedules(
            simulator,
            {0: ["a"], 1: ["b"]},
            channels_property(assume_complete=False),
            engine="dedup",
            sleep_sets=True,
            crash_schedule=CrashSchedule(at_step={2: 4}),
            max_depth=8,
        )
        assert result.exhausted
        return result

    result = benchmark(explore)
    # the crash-aware acceptance numbers: strictly below the blanket
    # relation's 263 terminals, with the proof visibly firing
    assert result.terminal_schedules == 154
    stats = result.independence_stats
    assert stats["crash_proof"] > 0
    assert stats["memo_hits"] * 10 >= stats["memo_queries"] * 8


def test_independence_oracle_interned_memo(benchmark):
    """The oracle microbench: footprint interning + packed-pair memo.

    Replays the verdict-query mix of a crash exploration (mostly
    repeat pairs) against the oracle; after the first pass every query
    is a memo hit on an interned int pair, so this times the
    allocation-light datapath rather than the relation itself."""
    from repro.runtime.explorer import _IndependenceOracle

    footprints = [
        Footprint("recv", frozenset({pid}), pending=frozenset({2}))
        for pid in range(4)
    ] + [
        Footprint(
            "recv",
            frozenset({pid}),
            pending=frozenset({2}),
            imminent=frozenset({2}),
        )
        for pid in range(4)
    ]
    pairs = [
        (a, b) for a in footprints for b in footprints if a is not b
    ]

    def query_all():
        oracle = _IndependenceOracle()
        total = 0
        for _ in range(32):
            for a, b in pairs:
                total += oracle(a, b)
        return oracle, total

    oracle, total = benchmark(query_all)
    assert total > 0
    stats = oracle.stats
    # every round after the first is pure memo hits
    assert stats["memo_hits"] >= stats["memo_queries"] * 31 // 32
    # sanity: the memoized verdicts agree with the relation
    for a, b in pairs[:8]:
        assert oracle(a, b) == classify(a, b)[0]

"""Performance P6 — exhaustive schedule exploration throughput."""

import pytest

from repro.broadcasts import SendToAllBroadcast, UniformReliableBroadcast
from repro.runtime import (
    Simulator,
    channels_property,
    combine_properties,
    explore_schedules,
    spec_property,
)
from repro.specs import (
    SendToAllSpec,
    TotalOrderBroadcastSpec,
    UniformReliableBroadcastSpec,
)


def test_exhaustive_urb_single_broadcast(benchmark):
    simulator = Simulator(2, lambda pid, n: UniformReliableBroadcast(pid, n))

    def explore():
        result = explore_schedules(
            simulator,
            {0: ["a"]},
            combine_properties(
                spec_property(UniformReliableBroadcastSpec()),
                channels_property(),
            ),
        )
        assert result.exhausted and result.ok
        return result

    result = benchmark(explore)
    assert result.terminal_schedules == 8


def test_exhaustive_two_senders(benchmark):
    simulator = Simulator(2, lambda pid, n: SendToAllBroadcast(pid, n))

    def explore():
        result = explore_schedules(
            simulator,
            {0: ["a"], 1: ["b"]},
            spec_property(SendToAllSpec()),
        )
        assert result.exhausted and result.ok
        return result

    result = benchmark(explore)
    assert result.terminal_schedules == 80


def test_violation_search(benchmark):
    simulator = Simulator(2, lambda pid, n: SendToAllBroadcast(pid, n))

    def search():
        result = explore_schedules(
            simulator,
            {0: ["a"], 1: ["b"]},
            spec_property(TotalOrderBroadcastSpec(),
                          assume_complete=False),
            stop_at_first_violation=True,
        )
        assert not result.ok
        return result

    benchmark(search)


@pytest.mark.parametrize("engine", ["incremental", "dedup", "replay"])
def test_engine_comparison_two_senders(benchmark, engine):
    """Incremental (fork-at-branch) vs dedup vs replay, same tree."""
    simulator = Simulator(2, lambda pid, n: SendToAllBroadcast(pid, n))

    def explore():
        result = explore_schedules(
            simulator,
            {0: ["a"], 1: ["b"]},
            channels_property(assume_complete=False),
            engine=engine,
        )
        assert result.exhausted
        return result

    result = benchmark(explore)
    assert result.terminal_schedules == 80


def test_incremental_depth8_three_processes(benchmark):
    """The depth-8 config of BENCH_explorer.json, incremental engine."""
    simulator = Simulator(3, lambda pid, n: SendToAllBroadcast(pid, n))

    def explore():
        result = explore_schedules(
            simulator,
            {0: ["a"], 1: ["b"]},
            channels_property(assume_complete=False),
        )
        assert result.exhausted
        # the whole point of the incremental engine: no event is ever
        # re-executed on this tree (fork snapshots cover every branch)
        assert result.events_replayed == 0
        return result

    result = benchmark(explore)
    assert result.terminal_schedules == 2520
    assert result.max_depth_seen == 8


def test_dedup_depth8_three_processes(benchmark):
    """The same depth-8 tree through the fingerprint transposition cache.

    The symmetric configuration collapses 2520 terminal schedules onto a
    few hundred distinct states; the cache expands each once and replays
    its recorded subtree summary everywhere else.
    """
    simulator = Simulator(3, lambda pid, n: SendToAllBroadcast(pid, n))

    def explore():
        result = explore_schedules(
            simulator,
            {0: ["a"], 1: ["b"]},
            channels_property(assume_complete=False),
            engine="dedup",
        )
        assert result.exhausted
        return result

    result = benchmark(explore)
    assert result.terminal_schedules == 2520
    assert result.max_depth_seen == 8
    # the dedup acceptance metric: far fewer expansions than terminals
    assert result.states_seen * 3 <= result.terminal_schedules
    assert result.states_deduped > 0

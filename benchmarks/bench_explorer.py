"""Performance P6 — exhaustive schedule exploration throughput."""

import pytest

from repro.broadcasts import SendToAllBroadcast, UniformReliableBroadcast
from repro.runtime import (
    Simulator,
    channels_property,
    combine_properties,
    explore_schedules,
    spec_property,
)
from repro.specs import (
    SendToAllSpec,
    TotalOrderBroadcastSpec,
    UniformReliableBroadcastSpec,
)


def test_exhaustive_urb_single_broadcast(benchmark):
    simulator = Simulator(2, lambda pid, n: UniformReliableBroadcast(pid, n))

    def explore():
        result = explore_schedules(
            simulator,
            {0: ["a"]},
            combine_properties(
                spec_property(UniformReliableBroadcastSpec()),
                channels_property(),
            ),
        )
        assert result.exhausted and result.ok
        return result

    result = benchmark(explore)
    assert result.terminal_schedules == 8


def test_exhaustive_two_senders(benchmark):
    simulator = Simulator(2, lambda pid, n: SendToAllBroadcast(pid, n))

    def explore():
        result = explore_schedules(
            simulator,
            {0: ["a"], 1: ["b"]},
            spec_property(SendToAllSpec()),
        )
        assert result.exhausted and result.ok
        return result

    result = benchmark(explore)
    assert result.terminal_schedules == 80


def test_violation_search(benchmark):
    simulator = Simulator(2, lambda pid, n: SendToAllBroadcast(pid, n))

    def search():
        result = explore_schedules(
            simulator,
            {0: ["a"], 1: ["b"]},
            spec_property(TotalOrderBroadcastSpec(),
                          assume_complete=False),
            stop_at_first_violation=True,
        )
        assert not result.ok
        return result

    benchmark(search)

"""Performance P9 — the consensus family across detector assumptions.

One benchmark per classical algorithm, measuring full decision latency
(all correct processes decide) under the free scheduler:

* FloodSet in CAMP_n[P] — wait-free;
* Ben-Or in CAMP_n[coin] — majority, randomized;
* (Paxos over Ω is benchmarked in ``bench_paxos.py``.)
"""

import pytest

from repro.agreement import BenOrProcess, FloodSetProcess
from repro.detectors import Clock, PerfectDetector
from repro.registers import ServiceSimulator
from repro.runtime import CrashSchedule
from repro.runtime.service import Invocation


@pytest.mark.parametrize("n", [3, 5])
def test_floodset_latency(benchmark, n):
    def run():
        crash = CrashSchedule.none()
        clock = Clock()
        detector = PerfectDetector(n, crash, clock, lag=0)
        simulator = ServiceSimulator(
            n,
            lambda pid, size: FloodSetProcess(pid, size, detector),
            seed=1,
            clock=clock,
        )
        outcome = simulator.run(
            {p: [Invocation("propose", "c", f"v{p}")] for p in range(n)},
            max_steps=120_000,
        )
        decisions = {
            r.process: r.result for r in outcome.history.complete()
        }
        assert len(set(decisions.values())) == 1
        return outcome

    outcome = benchmark(run)
    assert outcome.quiescent


def test_floodset_with_cascading_crashes(benchmark):
    def run():
        crash = CrashSchedule({1: 10, 2: 25, 3: 45})
        clock = Clock()
        detector = PerfectDetector(4, crash, clock, lag=0)
        simulator = ServiceSimulator(
            4,
            lambda pid, size: FloodSetProcess(pid, size, detector),
            seed=1,
            clock=clock,
        )
        outcome = simulator.run(
            {p: [Invocation("propose", "c", f"v{p}")] for p in range(4)},
            crash_schedule=crash,
            max_steps=120_000,
        )
        assert not outcome.blocked
        return outcome

    benchmark(run)


@pytest.mark.parametrize("n", [3, 5])
def test_benor_latency(benchmark, n):
    def run():
        simulator = ServiceSimulator(
            n,
            lambda pid, size: BenOrProcess(pid, size),
            seed=2,
        )
        outcome = simulator.run(
            {p: [Invocation("propose", "b", p % 2)] for p in range(n)},
            max_steps=200_000,
        )
        decisions = {
            r.process: r.result for r in outcome.history.complete()
        }
        assert len(set(decisions.values())) == 1
        return outcome

    benchmark(run)

"""Benchmark L1-8/L10 — the admissibility grid.

Times one cell of the Lemma grid (adversary run + all nine lemma
verifiers) and the whole small grid, asserting every lemma holds.
"""

import pytest

from repro.adversary import adversarial_scheduler, check_all_lemmas
from repro.broadcasts import KboAttemptBroadcast, TrivialKsaBroadcast
from repro.experiments import lemma10_grid


@pytest.mark.parametrize("k,n_value", [(2, 2), (4, 4)])
def test_single_grid_cell(benchmark, k, n_value):
    def cell():
        result = adversarial_scheduler(
            k, n_value, lambda pid, n: KboAttemptBroadcast(pid, n)
        )
        reports = check_all_lemmas(result)
        assert all(r.ok for r in reports)
        return reports

    reports = benchmark(cell)
    assert len(reports) == 9


def test_small_grid(benchmark):
    rows = benchmark(
        lemma10_grid.rows,
        ks=(2, 3),
        ns=(1, 2),
        algorithms=("trivial-ksa", "first-k"),
    )
    assert len(rows) == 8
    assert all("✗" not in row for row in rows)


def test_lemma_verifiers_only(benchmark):
    result = adversarial_scheduler(
        3, 4, lambda pid, n: TrivialKsaBroadcast(pid, n)
    )
    reports = benchmark(check_all_lemmas, result)
    assert all(r.ok for r in reports)

"""Benchmark L9/T1 and C1 — the Theorem 1 pipeline and the corollary.

Times the full Lemma 9 + Lemma 10 chain (solo runs, Algorithm 1,
restriction, renaming, replay, spec verdicts) and the corollary's
completed-execution clique search; asserts the contradiction is realized
on every iteration.
"""

import pytest

from repro.adversary import adversarial_scheduler, run_theorem_pipeline
from repro.analysis import max_disagreement_clique
from repro.broadcasts import FirstKKsaBroadcast, KboAttemptBroadcast
from repro.specs import FirstKBroadcastSpec, KboBroadcastSpec


@pytest.mark.parametrize("k", [2, 4])
def test_theorem_pipeline(benchmark, k):
    def pipeline():
        result = run_theorem_pipeline(
            k,
            lambda pid, n: FirstKKsaBroadcast(pid, n),
            candidate_spec=FirstKBroadcastSpec(k),
        )
        assert result.agreement_violated
        assert "compositionality" in result.failing_hypothesis
        return result

    result = benchmark(pipeline)
    assert result.distinct_decisions == k + 1


@pytest.mark.parametrize("k", [2, 3])
def test_corollary_kbo_violation(benchmark, k):
    def corollary():
        result = adversarial_scheduler(
            k,
            1,
            lambda pid, n: KboAttemptBroadcast(pid, n),
            continue_after_flush=True,
        )
        clique = max_disagreement_clique(result.beta)
        assert clique == k + 1
        return clique

    assert benchmark(corollary) == k + 1


def test_kbo_spec_admits_before_completion(benchmark):
    """The halted prefix is safety-clean; the violation needs completion."""

    def halted_prefix_check():
        result = adversarial_scheduler(
            2, 1, lambda pid, n: KboAttemptBroadcast(pid, n)
        )
        verdict = KboBroadcastSpec(2).admits(
            result.beta, assume_complete=False
        )
        assert verdict.admitted
        return verdict

    benchmark(halted_prefix_check)

"""Performance P7 — Paxos over Ω: decision latency in scheduler steps."""

import pytest

from repro.agreement import PaxosProcess
from repro.detectors import Clock, OmegaOracle
from repro.registers import ServiceSimulator
from repro.runtime import CrashSchedule
from repro.runtime.service import Invocation


def consensus_run(*, n, seed, crash=None, stabilize_at=0):
    crash = crash or CrashSchedule.none()
    clock = Clock()
    omega = OmegaOracle(n, crash, clock, stabilize_at=stabilize_at)
    simulator = ServiceSimulator(
        n,
        lambda pid, size: PaxosProcess(pid, size, omega),
        seed=seed,
        clock=clock,
    )
    outcome = simulator.run(
        {p: [Invocation("propose", "slot", f"v{p}")] for p in range(n)},
        crash_schedule=crash,
        max_steps=100_000,
    )
    decisions = {
        record.process: record.result
        for record in outcome.history.complete()
    }
    assert len(set(decisions.values())) == 1
    return outcome


@pytest.mark.parametrize("n", [3, 5, 7])
def test_stable_leader_consensus(benchmark, n):
    outcome = benchmark(consensus_run, n=n, seed=1)
    assert outcome.quiescent


def test_leader_crash_recovery(benchmark):
    outcome = benchmark(
        consensus_run,
        n=5,
        seed=2,
        crash=CrashSchedule({0: 40}),
        stabilize_at=150,
    )
    assert not outcome.blocked


def test_unstable_omega_period(benchmark):
    outcome = benchmark(consensus_run, n=5, seed=4, stabilize_at=250)
    assert outcome.quiescent

"""Ablation benchmarks — cost of the design choices DESIGN.md calls out.

* witness handling: exact verification of the adversary's own witness vs.
  blind heuristic search vs. the (unneeded) exhaustive product search;
* symmetry checking: exhaustive subset enumeration on small executions
  vs. seeded sampling on large ones;
* Algorithm 1: halted-at-line-26 (the paper's execution) vs. the fair
  continuation used by the corollary experiment;
* ordering analytics: clique-search-only vs. the full statistics pass.
"""

import random

import pytest

from repro.adversary import adversarial_scheduler
from repro.analysis import max_disagreement_clique, ordering_stats
from repro.broadcasts import (
    FirstKKsaBroadcast,
    KboAttemptBroadcast,
    UniformReliableBroadcast,
)
from repro.core import find_witness, verify_witness
from repro.core.symmetry import check_compositional
from repro.runtime import Simulator
from repro.specs import KboBroadcastSpec


@pytest.fixture(scope="module")
def adversary_beta():
    result = adversarial_scheduler(
        3, 4, lambda pid, n: FirstKKsaBroadcast(pid, n)
    )
    return result


class TestWitnessHandling:
    def test_verify_known_witness(self, benchmark, adversary_beta):
        result = adversary_beta
        violations = benchmark(
            verify_witness, result.beta, result.witness, [0, 1, 2, 3]
        )
        assert violations == []

    def test_heuristic_search(self, benchmark, adversary_beta):
        result = adversary_beta
        witness = benchmark(find_witness, result.beta, result.n_value)
        assert witness is not None

    def test_exhaustive_product_search(self, benchmark, adversary_beta):
        result = adversary_beta
        witness = benchmark(
            find_witness,
            result.beta,
            result.n_value,
            max_combinations=4096,
        )
        assert witness is not None


class TestSymmetryCheckingModes:
    def _beta(self, per_process):
        simulator = Simulator(
            4,
            lambda pid, n: UniformReliableBroadcast(pid, n),
            seed=13,
        )
        result = simulator.run(
            {p: [f"m{p}.{i}" for i in range(per_process)]
             for p in range(4)}
        )
        return result.execution.broadcast_projection()

    def test_exhaustive_small(self, benchmark):
        beta = self._beta(2)  # 8 messages -> 254 proper subsets
        result = benchmark(
            check_compositional, KboBroadcastSpec(3), beta
        )
        assert result.holds

    def test_sampled_large(self, benchmark):
        beta = self._beta(4)  # 16 messages -> sampling kicks in
        result = benchmark(
            check_compositional,
            KboBroadcastSpec(3),
            beta,
            max_cases=128,
            rng=random.Random(7),
        )
        assert result.holds


class TestAdversaryModes:
    def test_halted_at_line26(self, benchmark):
        result = benchmark(
            adversarial_scheduler,
            3,
            2,
            lambda pid, n: KboAttemptBroadcast(pid, n),
        )
        assert result.continuation_mark is None

    def test_with_fair_continuation(self, benchmark):
        result = benchmark(
            adversarial_scheduler,
            3,
            2,
            lambda pid, n: KboAttemptBroadcast(pid, n),
            continue_after_flush=True,
        )
        assert result.continuation_mark is not None


class TestOrderingAnalytics:
    @pytest.fixture(scope="class")
    def completed_beta(self):
        result = adversarial_scheduler(
            3,
            2,
            lambda pid, n: KboAttemptBroadcast(pid, n),
            continue_after_flush=True,
        )
        return result.beta

    def test_clique_only(self, benchmark, completed_beta):
        clique = benchmark(max_disagreement_clique, completed_beta)
        assert clique == 4

    def test_full_statistics(self, benchmark, completed_beta):
        stats = benchmark(ordering_stats, completed_beta)
        assert stats.max_disagreement_clique == 4

"""Performance P1 — simulator throughput across algorithms and scales.

Not a paper artifact: these benchmarks track the cost of the substrate
itself (scheduler steps per second, message fan-out) so regressions in
the runtime layer are visible.
"""

import pytest

from repro.broadcasts import (
    CausalBroadcast,
    FifoBroadcast,
    SendToAllBroadcast,
    TotalOrderBroadcast,
    UniformReliableBroadcast,
)
from repro.runtime import Simulator

ALGORITHMS = {
    "send-to-all": (SendToAllBroadcast, 1),
    "uniform-reliable": (UniformReliableBroadcast, 1),
    "fifo": (FifoBroadcast, 1),
    "causal": (CausalBroadcast, 1),
    "total-order": (TotalOrderBroadcast, 1),
}


@pytest.mark.parametrize("name", list(ALGORITHMS))
def test_algorithm_throughput(benchmark, name):
    algorithm_class, k = ALGORITHMS[name]

    def workload():
        simulator = Simulator(
            4, lambda pid, n: algorithm_class(pid, n), k=k, seed=7
        )
        result = simulator.run(
            {p: [f"m{p}.{i}" for i in range(4)] for p in range(4)}
        )
        assert result.quiescent
        return result.steps_taken

    steps = benchmark(workload)
    assert steps > 0


@pytest.mark.parametrize("n", [2, 4, 8])
def test_scaling_with_processes(benchmark, n):
    def workload():
        simulator = Simulator(
            n, lambda pid, size: UniformReliableBroadcast(pid, size),
            seed=3,
        )
        result = simulator.run({p: ["x", "y"] for p in range(n)})
        assert result.quiescent
        return result.steps_taken

    benchmark(workload)

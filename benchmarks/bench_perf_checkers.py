"""Performance P2 — cost of specification and axiom checkers vs trace size.

Tracks the scaling of the k-BO clique search, the Total-Order pair scan,
the channel/k-SA axioms and the N-solo witness search on growing traces.
"""

import pytest

from repro.adversary import adversarial_scheduler
from repro.broadcasts import TrivialKsaBroadcast, UniformReliableBroadcast
from repro.core import check_channels, find_witness
from repro.runtime import Simulator
from repro.specs import KboBroadcastSpec, TotalOrderBroadcastSpec


def _beta(per_process: int, n: int = 4, seed: int = 9):
    simulator = Simulator(
        n, lambda pid, size: UniformReliableBroadcast(pid, size), seed=seed
    )
    result = simulator.run(
        {p: [f"m{p}.{i}" for i in range(per_process)] for p in range(n)}
    )
    return result


@pytest.mark.parametrize("per_process", [2, 4, 8])
def test_kbo_check_scaling(benchmark, per_process):
    beta = _beta(per_process).execution.broadcast_projection()
    spec = KboBroadcastSpec(2)
    verdict = benchmark(spec.admits, beta)
    assert verdict.safety_ok or not verdict.admitted


@pytest.mark.parametrize("per_process", [2, 8])
def test_total_order_check_scaling(benchmark, per_process):
    beta = _beta(per_process).execution.broadcast_projection()
    spec = TotalOrderBroadcastSpec()
    benchmark(spec.admits, beta, assume_complete=False)


@pytest.mark.parametrize("per_process", [2, 8])
def test_channel_axioms_scaling(benchmark, per_process):
    execution = _beta(per_process).execution
    report = benchmark(check_channels, execution)
    assert report.ok


@pytest.mark.parametrize("n_value", [2, 8])
def test_nsolo_search_scaling(benchmark, n_value):
    result = adversarial_scheduler(
        3, n_value, lambda pid, n: TrivialKsaBroadcast(pid, n)
    )
    witness = benchmark(find_witness, result.beta, n_value)
    assert witness is not None

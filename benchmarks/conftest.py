"""Benchmark-suite configuration.

Every benchmark regenerates (part of) an experiment from the paper and
asserts its qualitative claim before timing it, so `pytest benchmarks/
--benchmark-only` doubles as a fast end-to-end reproduction check.
"""

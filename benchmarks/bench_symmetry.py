"""Benchmark S1 — the symmetry matrix and its individual checkers."""

from repro.core import check_compositional, check_content_neutral
from repro.experiments import symmetry_matrix
from repro.specs import KboBroadcastSpec, KSteppedBroadcastSpec
from repro.specs.witnesses import kstepped_paper_example
from repro.broadcasts import TotalOrderBroadcast
from repro.runtime import Simulator


def test_full_matrix(benchmark):
    rows = benchmark(symmetry_matrix.rows)
    verdicts = {row.spec.name: row for row in rows}
    assert not verdicts["1-Stepped Broadcast"].compositional.holds
    assert not verdicts["SA-tagged Broadcast (k=2)"].content_neutral.holds


def _total_order_beta():
    simulator = Simulator(
        3, lambda pid, n: TotalOrderBroadcast(pid, n), k=1, seed=11
    )
    result = simulator.run({p: [f"c{p}.{i}" for i in range(2)]
                            for p in range(3)})
    return result.execution.broadcast_projection()


def test_compositionality_checker_exhaustive(benchmark):
    beta = _total_order_beta()
    spec = KboBroadcastSpec(2)
    result = benchmark(check_compositional, spec, beta, max_cases=1024)
    assert result.holds


def test_content_neutrality_checker(benchmark):
    beta = _total_order_beta()
    spec = KboBroadcastSpec(2)
    result = benchmark(check_content_neutral, spec, beta, max_cases=12)
    assert result.holds


def test_paper_counterexample_discovery(benchmark):
    execution, _ = kstepped_paper_example()
    spec = KSteppedBroadcastSpec(1)

    def discover():
        result = check_compositional(spec, execution)
        assert not result.holds
        return result

    benchmark(discover)

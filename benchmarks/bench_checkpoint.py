"""Performance P6 addendum — resume overhead vs cold restart.

The checkpoint contract trades a small, bounded overhead for never
losing work.  Three numbers quantify the trade on the depth-8 showcase
(n=3 send-to-all, 6875 expansions):

* *cold* — the uninterrupted exploration, no checkpointing: the
  baseline a crash used to force you to re-pay in full;
* *checkpointed* — the same run writing a periodic checkpoint every
  100 expansions: the steady-state cost of being interruptible;
* *resume-from-midpoint* — an exploration interrupted halfway, then
  resumed to completion.  The measured time covers only the second
  (resumed) run: roughly half the tree plus the frontier's prefix
  replay, which is why resuming beats restarting cold.

A fourth benchmark times resuming a *complete* checkpoint — the pure
decode path a memoized re-run pays.
"""

import os

import pytest

from repro.broadcasts import SendToAllBroadcast
from repro.runtime import Simulator
from repro.runtime.explorer import (
    channels_property,
    combine_properties,
    explore_schedules,
    spec_property,
)
from repro.specs import SendToAllSpec


def showcase_config():
    simulator = Simulator(
        3, lambda pid, n: SendToAllBroadcast(pid, n)
    )
    prop = combine_properties(
        spec_property(SendToAllSpec()), channels_property()
    )
    return simulator, {0: ["a"], 1: ["b"]}, prop


class _HalfwayCancel:
    """Fires once roughly half the node entries have been polled."""

    def __init__(self, total_polls: int) -> None:
        self.remaining = total_polls // 2

    def is_set(self) -> bool:
        self.remaining -= 1
        return self.remaining < 0


class _PollCounter:
    def __init__(self) -> None:
        self.count = 0

    def is_set(self) -> bool:
        self.count += 1
        return False


def _poll_count() -> int:
    simulator, scripts, prop = showcase_config()
    polls = _PollCounter()
    explore_schedules(simulator, scripts, prop, cancel=polls)
    return polls.count


def test_cold_full_run(benchmark):
    def run():
        simulator, scripts, prop = showcase_config()
        result = explore_schedules(simulator, scripts, prop)
        assert result.exhausted
        return result

    benchmark.pedantic(run, rounds=5, iterations=1, warmup_rounds=1)


def test_full_run_with_periodic_checkpoints(benchmark, tmp_path):
    path = os.path.join(tmp_path, "steady.ckpt")

    def run():
        simulator, scripts, prop = showcase_config()
        result = explore_schedules(
            simulator,
            scripts,
            prop,
            checkpoint_to=path,
            checkpoint_every=100,
        )
        assert result.exhausted
        return result

    benchmark.pedantic(run, rounds=5, iterations=1, warmup_rounds=1)


def test_resume_from_midpoint(benchmark, tmp_path):
    polls = _poll_count()
    path = os.path.join(tmp_path, "midpoint.ckpt")

    def interrupt_halfway():
        simulator, scripts, prop = showcase_config()
        interrupted = explore_schedules(
            simulator,
            scripts,
            prop,
            cancel=_HalfwayCancel(polls),
            checkpoint_to=path,
            checkpoint_every=100,
        )
        assert interrupted.interrupted

    def resume():
        simulator, scripts, prop = showcase_config()
        result = explore_schedules(
            simulator, scripts, prop, resume_from=path
        )
        assert result.exhausted
        return result

    benchmark.pedantic(
        resume,
        setup=interrupt_halfway,
        rounds=5,
        iterations=1,
        warmup_rounds=1,
    )


def test_resume_complete_checkpoint(benchmark, tmp_path):
    path = os.path.join(tmp_path, "complete.ckpt")
    simulator, scripts, prop = showcase_config()
    reference = explore_schedules(
        simulator, scripts, prop, checkpoint_to=path
    )
    assert reference.exhausted

    def resume():
        simulator, scripts, prop = showcase_config()
        result = explore_schedules(
            simulator, scripts, prop, resume_from=path
        )
        assert result.exhausted
        assert result.states_seen == reference.states_seen
        return result

    benchmark.pedantic(resume, rounds=5, iterations=1, warmup_rounds=1)

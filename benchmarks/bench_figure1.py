"""Benchmark F1 — regenerating Figure 1 (adversary + rendering).

The paper's Figure 1 shows α_{k,N,B,B} for k = 3, N = 2.  The benchmark
regenerates it from scratch — Algorithm 1 against the First-k
implementation, plus the lane rendering — and asserts the caption's
claims (N-solo witness, admissibility) on every iteration.
"""

from repro.adversary import adversarial_scheduler
from repro.analysis import render_figure1
from repro.broadcasts import FirstKKsaBroadcast
from repro.core import verify_witness


def regenerate_figure1() -> str:
    result = adversarial_scheduler(
        3, 2, lambda pid, n: FirstKKsaBroadcast(pid, n)
    )
    assert verify_witness(result.beta, result.witness, [0, 1, 2, 3]) == []
    return render_figure1(result)


def test_figure1_regeneration(benchmark):
    rendered = benchmark(regenerate_figure1)
    assert "Figure 1" in rendered
    assert "⟦" in rendered


def test_figure1_large_instance(benchmark):
    def regenerate_large():
        result = adversarial_scheduler(
            5, 8, lambda pid, n: FirstKKsaBroadcast(pid, n)
        )
        assert verify_witness(
            result.beta, result.witness, list(range(6))
        ) == []
        return result

    result = benchmark(regenerate_large)
    assert result.n_value == 8

"""Benchmark M1 — register-power specs vs. adversarial executions."""

import pytest

from repro.adversary import adversarial_scheduler
from repro.broadcasts import FirstKKsaBroadcast
from repro.experiments import register_power
from repro.specs import (
    MutualBroadcastSpec,
    PairBroadcastSpec,
    ScdBroadcastSpec,
)


def test_rejection_table(benchmark):
    rows = benchmark(register_power.rejection_rows, ks=(2,), ns=(1,))
    assert all(row[-1] == "NO (rejected)" for row in rows)


@pytest.mark.parametrize(
    "spec_class",
    [MutualBroadcastSpec, PairBroadcastSpec, ScdBroadcastSpec],
    ids=["mutual", "pair", "scd"],
)
def test_single_spec_rejection(benchmark, spec_class):
    result = adversarial_scheduler(
        3,
        2,
        lambda pid, n: FirstKKsaBroadcast(pid, n),
        continue_after_flush=True,
    )
    spec = spec_class()
    verdict = benchmark(spec.admits, result.beta, assume_complete=False)
    assert not verdict.admitted


def test_control_table(benchmark):
    rows = benchmark(register_power.control_rows, seeds=(0,))
    assert all(row[-1] == "yes" for row in rows)

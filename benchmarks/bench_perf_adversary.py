"""Performance P3 — Algorithm 1 construction cost in k and N.

The adversarial execution grows with both the number of processes (k + 1)
and the per-process delivery count N; these benchmarks map that scaling
for the three attack targets.
"""

import pytest

from repro.adversary import adversarial_scheduler
from repro.broadcasts import (
    FirstKKsaBroadcast,
    KboAttemptBroadcast,
    TrivialKsaBroadcast,
)

TARGETS = {
    "trivial-ksa": TrivialKsaBroadcast,
    "first-k": FirstKKsaBroadcast,
    "kbo-attempt": KboAttemptBroadcast,
}


@pytest.mark.parametrize("k", [2, 4, 8])
def test_scaling_in_k(benchmark, k):
    result = benchmark(
        adversarial_scheduler,
        k,
        2,
        lambda pid, n: FirstKKsaBroadcast(pid, n),
    )
    assert len(result.execution) > 0


@pytest.mark.parametrize("n_value", [1, 4, 16])
def test_scaling_in_n(benchmark, n_value):
    result = benchmark(
        adversarial_scheduler,
        3,
        n_value,
        lambda pid, n: FirstKKsaBroadcast(pid, n),
    )
    assert result.n_value == n_value


@pytest.mark.parametrize("name", list(TARGETS))
def test_per_target_cost(benchmark, name):
    algorithm_class = TARGETS[name]
    result = benchmark(
        adversarial_scheduler,
        3,
        2,
        lambda pid, n: algorithm_class(pid, n),
    )
    assert len(result.witness.chosen) == 4

"""Diff a fresh explorer benchmark report against the committed baseline.

The schedule trees the benchmark explores are deterministic, so every
count the engines report (terminals, expansions, distinct states,
replayed events, orbit encodings) must match the committed
``BENCH_explorer.json`` exactly — a difference means the explorer's
behaviour changed and the baseline must be regenerated deliberately.
In particular a drift in ``states_seen`` under a symmetry variant means
the canonical-labelling search stopped landing on the orbit floor, and
a drift in ``orbit_encodings`` means the invariant profiles stopped
separating pids.  Wall-clock timings (including the encoder
microbench) are the one machine-dependent quantity: regressions beyond
the tolerance only *warn*, they never fail CI.

Usage::

    PYTHONPATH=src python benchmarks/run_explorer_bench.py \
        --output BENCH_explorer.fresh.json
    python benchmarks/check_explorer_bench.py \
        BENCH_explorer.json BENCH_explorer.fresh.json

Beyond the baseline diff, the checker enforces two *internal*
invariants of the fresh report: every engine variant of a
configuration must agree on the violation-set digest — the reductions
(sleep sets, renaming symmetry, crash-aware commutation) are only
admissible because they preserve violations, so a cross-engine
mismatch is a reduction bug and always fails — and the
``dedup-sleep-crashaware`` row must explore at most as many terminals
and events as its blanket ``dedup-sleep`` counterpart, since the
crash-aware relation is a strict refinement.

Exit status: 0 when the reports agree on everything deterministic
(timing warnings allowed), 1 on any schema, determinism, or
cross-engine violation mismatch.
"""

from __future__ import annotations

import argparse
import json
import sys

#: Per-run fields that must match exactly between baseline and fresh run.
DETERMINISTIC_RUN_FIELDS = (
    "terminal_schedules",
    "schedules_explored",
    "max_depth_seen",
    "events_executed",
    "events_replayed",
    "states_seen",
    "states_deduped",
    "states_pruned_sleep",
    "states_merged_symmetry",
    "orbit_encodings",
    "violations_digest",
    "independence_stats",
)

#: Per-config derived metrics that are pure functions of the counts.
DETERMINISTIC_CONFIG_FIELDS = (
    "replayed_events_ratio",
    "state_revisit_reduction",
    "expanded_vs_terminals_reduction",
    "sleep_terminal_reduction",
    "rename_state_reduction",
    "orbit_encodings_per_lookup",
    "composed_state_reduction",
    "static_sleep_event_reduction",
    "static_sleep_terminal_reduction",
    "crash_sleep_reduction",
    "interned_key_hit_rate",
)


def _run_key(run: dict) -> tuple:
    return (run.get("label", run["engine"]), run["workers"])


def _cross_engine_violations(report: dict) -> list[str]:
    """Soundness errors: engine variants of one config must agree.

    The reductions (sleep sets, renaming symmetry) are only admissible
    because they preserve the violation set — so within a single
    configuration, every engine variant's ``violations_digest`` must be
    identical.  A mismatch is a reduction bug, not a baseline drift,
    and is reported regardless of what the baseline says.
    """
    errors: list[str] = []
    for config in report.get("configs", []):
        digests: dict[str, list[str]] = {}
        for run in config["runs"]:
            digest = run.get("violations_digest")
            if digest is not None:
                digests.setdefault(digest, []).append(
                    str(_run_key(run))
                )
        if len(digests) > 1:
            groups = "; ".join(
                f"{digest[:8]}… from {', '.join(runs)}"
                for digest, runs in sorted(digests.items())
            )
            errors.append(
                f"{config['name']}: engine variants disagree on the "
                f"violation set ({groups}) — a reduction dropped or "
                f"invented violations"
            )
    return errors


def _crash_aware_regressions(report: dict) -> list[str]:
    """Soundness/strength errors for the crash-aware commutation rows.

    Within one configuration the ``dedup-sleep-crashaware`` row must
    explore *at most* as many terminal schedules and executed events as
    the blanket ``dedup-sleep`` row — the crash-aware relation is a
    strict refinement, so drifting above the blanket means the proof
    stopped firing.  (That the violation digest still matches is the
    cross-engine check above.)
    """
    errors: list[str] = []
    for config in report.get("configs", []):
        rows = {_run_key(r): r for r in config["runs"]}
        blanket = rows.get(("dedup-sleep", 1))
        aware = rows.get(("dedup-sleep-crashaware", 1))
        if blanket is None or aware is None:
            continue
        for field in ("terminal_schedules", "events_executed"):
            if aware[field] > blanket[field]:
                errors.append(
                    f"{config['name']}: dedup-sleep-crashaware {field} = "
                    f"{aware[field]} exceeds blanket dedup-sleep "
                    f"{blanket[field]} — the crash-aware proof stopped "
                    f"out-pruning the blanket relation"
                )
    return errors


def compare(
    baseline: dict,
    candidate: dict,
    *,
    tolerance: float = 1.5,
    allow_subset: bool = False,
) -> tuple[list[str], list[str]]:
    """Return (errors, warnings) from diffing ``candidate`` vs ``baseline``."""
    errors: list[str] = []
    warnings: list[str] = []

    errors.extend(_cross_engine_violations(candidate))
    errors.extend(_crash_aware_regressions(candidate))
    for field in ("benchmark", "schema"):
        if baseline.get(field) != candidate.get(field):
            errors.append(
                f"schema mismatch: {field} is {candidate.get(field)!r}, "
                f"baseline has {baseline.get(field)!r}"
            )
    if errors:
        return errors, warnings  # different shape entirely: stop here

    # the encoder microbench is pure timing: warn-only, like wall-clock
    base_micro = baseline.get("encoder_microbench")
    cand_micro = candidate.get("encoder_microbench")
    if base_micro and cand_micro:
        if cand_micro["speedup"] < 1.0:
            warnings.append(
                f"encoder microbench: fast path is slower than the "
                f"reference ({cand_micro['speedup']}x) — the "
                f"buffer-reusing encoder lost its edge on this machine"
            )
        elif cand_micro["speedup"] * tolerance < base_micro["speedup"]:
            warnings.append(
                f"encoder microbench: speedup {cand_micro['speedup']}x "
                f"vs baseline {base_micro['speedup']}x "
                f"(>{tolerance}x regression; machines differ — not fatal)"
            )

    base_configs = {c["name"]: c for c in baseline["configs"]}
    cand_configs = {c["name"]: c for c in candidate["configs"]}
    missing = base_configs.keys() - cand_configs.keys()
    if missing and not allow_subset:
        errors.append(f"configs missing from fresh run: {sorted(missing)}")
    for extra in sorted(cand_configs.keys() - base_configs.keys()):
        errors.append(
            f"config {extra!r} not in baseline: regenerate "
            f"BENCH_explorer.json"
        )

    for name in sorted(base_configs.keys() & cand_configs.keys()):
        base, cand = base_configs[name], cand_configs[name]
        base_runs = {_run_key(r): r for r in base["runs"]}
        cand_runs = {_run_key(r): r for r in cand["runs"]}
        run_missing = base_runs.keys() - cand_runs.keys()
        if run_missing and not allow_subset:
            errors.append(f"{name}: runs missing: {sorted(run_missing)}")
        for extra_key in sorted(cand_runs.keys() - base_runs.keys()):
            errors.append(
                f"{name}: run {extra_key} not in baseline: regenerate "
                f"BENCH_explorer.json"
            )
        for key in sorted(base_runs.keys() & cand_runs.keys()):
            base_run, cand_run = base_runs[key], cand_runs[key]
            for field in DETERMINISTIC_RUN_FIELDS:
                if base_run.get(field) != cand_run.get(field):
                    errors.append(
                        f"{name} {key}: {field} = {cand_run.get(field)}, "
                        f"baseline has {base_run.get(field)} — the "
                        f"explored tree changed"
                    )
            if cand_run["seconds"] > base_run["seconds"] * tolerance:
                warnings.append(
                    f"{name} {key}: {cand_run['seconds']}s vs baseline "
                    f"{base_run['seconds']}s "
                    f"(>{tolerance}x slower; machines differ — not fatal)"
                )
        for field in DETERMINISTIC_CONFIG_FIELDS:
            if field in base and field in cand and base[field] != cand[field]:
                errors.append(
                    f"{name}: {field} = {cand[field]}, baseline has "
                    f"{base[field]}"
                )
    return errors, warnings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_explorer.json")
    parser.add_argument("candidate", help="freshly generated report")
    parser.add_argument(
        "--tolerance", type=float, default=1.5,
        help="warn when a timing exceeds baseline by this factor",
    )
    parser.add_argument(
        "--allow-subset", action="store_true",
        help="tolerate configs/runs absent from the fresh report "
             "(for --quick local runs)",
    )
    args = parser.parse_args()
    with open(args.baseline) as handle:
        baseline = json.load(handle)
    with open(args.candidate) as handle:
        candidate = json.load(handle)
    errors, warnings = compare(
        baseline,
        candidate,
        tolerance=args.tolerance,
        allow_subset=args.allow_subset,
    )
    for warning in warnings:
        print(f"WARNING: {warning}")
    for error in errors:
        print(f"ERROR: {error}")
    if errors:
        print(
            f"{len(errors)} determinism/schema mismatch(es) against "
            f"{args.baseline}; if the change is intentional, regenerate "
            f"the baseline with benchmarks/run_explorer_bench.py"
        )
        return 1
    print(
        f"benchmark report matches the committed baseline "
        f"({len(warnings)} timing warning(s))"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Benchmark B1 — the k = 1 and k = n boundary reductions."""

import pytest

from repro.agreement import (
    solve_agreement_with_broadcast,
    solve_nsa_trivially,
)
from repro.broadcasts import TotalOrderBroadcast
from repro.experiments import boundaries
from repro.runtime import CrashSchedule


@pytest.mark.parametrize("n", [3, 5])
def test_consensus_via_total_order(benchmark, n):
    def consensus():
        outcome = solve_agreement_with_broadcast(
            n,
            lambda pid, size: TotalOrderBroadcast(pid, size),
            {p: f"v{p}" for p in range(n)},
            k=1,
            seed=0,
        )
        assert outcome.satisfies_agreement(1)
        return outcome

    outcome = benchmark(consensus)
    assert len(outcome.decisions) == n


def test_consensus_with_crash(benchmark):
    def consensus():
        outcome = solve_agreement_with_broadcast(
            4,
            lambda pid, size: TotalOrderBroadcast(pid, size),
            {p: f"v{p}" for p in range(4)},
            k=1,
            seed=1,
            crash_schedule=CrashSchedule({3: 8}),
        )
        assert outcome.satisfies_agreement(1)
        return outcome

    benchmark(consensus)


def test_trivial_nsa(benchmark):
    decisions = benchmark(
        solve_nsa_trivially, {p: f"v{p}" for p in range(64)}
    )
    assert len(decisions) == 64


def test_full_boundary_tables(benchmark):
    output = benchmark(boundaries.run)
    assert "✗" not in output

"""Explorer benchmark runner — emits ``BENCH_explorer.json``.

Measures the incremental exploration engine against the historical
replay engine and the state-deduplicating engine on fixed
configurations, and single-worker against multi-worker exploration on
the largest one.  Results (wall-clock plus the engines' own event and
state counters) are written as JSON for CI artifact upload and
cross-run comparison; ``benchmarks/check_explorer_bench.py`` diffs a
fresh report against the committed ``BENCH_explorer.json`` baseline.

Usage::

    PYTHONPATH=src python benchmarks/run_explorer_bench.py \
        [--output BENCH_explorer.json] [--workers 4] [--quick]

The schedule trees explored are deterministic; only the timings vary
between machines.  The JSON includes per-config invariants (terminal
count, tree depth, distinct-state counts) so a regression in *what* is
explored fails loudly.
"""

from __future__ import annotations

import argparse
import json
import platform
import time

from repro.broadcasts import SendToAllBroadcast, UniformReliableBroadcast
from repro.runtime import Simulator, channels_property, explore_schedules


def _simulator(config: dict) -> Simulator:
    algorithm = {
        "send-to-all": SendToAllBroadcast,
        "uniform-reliable": UniformReliableBroadcast,
    }[config["algorithm"]]
    return Simulator(
        config["n"], lambda pid, n: algorithm(pid, n)
    )


CONFIGS = [
    {
        "name": "s2a-2senders-n2",
        "algorithm": "send-to-all",
        "n": 2,
        "scripts": {0: ["a"], 1: ["b"]},
        "engines": ["incremental", "dedup", "replay"],
        "workers": [],
    },
    {
        # the symmetric depth-8 tree: 2520 terminals over few hundred
        # distinct states — the dedup engine's showcase
        "name": "s2a-2senders-n3-depth8",
        "algorithm": "send-to-all",
        "n": 3,
        "scripts": {0: ["a"], 1: ["b"]},
        "engines": ["incremental", "dedup", "replay"],
        "workers": [],
    },
    {
        # largest tree: 16128 terminals, depth 10 — the parallel target
        "name": "urb-2senders-n2",
        "algorithm": "uniform-reliable",
        "n": 2,
        "scripts": {0: ["a"], 1: ["b"]},
        "engines": ["dedup"],
        "workers": [1, "N"],
    },
]


def run_one(
    config: dict, *, engine: str = "incremental", workers: int = 1
) -> dict:
    simulator = _simulator(config)
    prop = channels_property(assume_complete=False)
    started = time.perf_counter()
    result = explore_schedules(
        simulator,
        config["scripts"],
        prop,
        engine=engine,
        workers=workers,
    )
    elapsed = time.perf_counter() - started
    assert result.exhausted, f"{config['name']}: exploration not exhaustive"
    assert result.ok, f"{config['name']}: unexpected violations"
    return {
        "engine": engine,
        "workers": workers,
        "seconds": round(elapsed, 4),
        "terminal_schedules": result.terminal_schedules,
        "schedules_explored": result.schedules_explored,
        "max_depth_seen": result.max_depth_seen,
        "events_executed": result.events_executed,
        "events_replayed": result.events_replayed,
        "states_seen": result.states_seen,
        "states_deduped": result.states_deduped,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", default="BENCH_explorer.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="worker count for the parallel measurements",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="skip the replay engine on the depth-8 config",
    )
    args = parser.parse_args()

    report = {
        "benchmark": "explorer",
        "schema": 2,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "configs": [],
    }
    for config in CONFIGS:
        entry = {"name": config["name"], "runs": []}
        for engine in config["engines"]:
            if (
                args.quick
                and engine == "replay"
                and config["name"].endswith("depth8")
            ):
                continue
            entry["runs"].append(run_one(config, engine=engine))
        for workers in config["workers"]:
            count = args.workers if workers == "N" else workers
            entry["runs"].append(
                run_one(config, engine="incremental", workers=count)
            )
        by_engine: dict = {}
        for run in entry["runs"]:
            # pin the first (single-worker) row per engine for the ratios
            by_engine.setdefault(run["engine"], run)
        if "incremental" in by_engine and "replay" in by_engine:
            incremental = by_engine["incremental"]
            replay = by_engine["replay"]
            entry["replayed_events_ratio"] = round(
                replay["events_replayed"]
                / max(1, incremental["events_replayed"]),
                2,
            )
            entry["speedup"] = round(
                replay["seconds"] / max(1e-9, incremental["seconds"]), 2
            )
        if "incremental" in by_engine and "dedup" in by_engine:
            incremental = by_engine["incremental"]
            dedup = by_engine["dedup"]
            # fraction of the incremental engine's expansions the
            # transposition cache proved redundant
            entry["state_revisit_reduction"] = round(
                1
                - dedup["states_seen"]
                / max(1, incremental["schedules_explored"]),
                4,
            )
            # distinct states vs terminal schedules: how symmetric the
            # tree is (the dedup acceptance metric)
            entry["expanded_vs_terminals_reduction"] = round(
                1
                - dedup["states_seen"]
                / max(1, dedup["terminal_schedules"]),
                4,
            )
            entry["dedup_speedup"] = round(
                incremental["seconds"] / max(1e-9, dedup["seconds"]), 2
            )
        report["configs"].append(entry)
        print(f"{entry['name']}:")
        for run in entry["runs"]:
            states = (
                f", {run['states_seen']} states seen / "
                f"{run['states_deduped']} deduped"
                if run["engine"] == "dedup"
                else ""
            )
            print(
                f"  {run['engine']}(workers={run['workers']}): "
                f"{run['seconds']}s, {run['terminal_schedules']} terminals, "
                f"{run['events_executed']} events executed, "
                f"{run['events_replayed']} replayed{states}"
            )
        if "replayed_events_ratio" in entry:
            print(
                f"  replayed-events ratio (replay/incremental): "
                f"{entry['replayed_events_ratio']}x, "
                f"wall-clock speedup {entry['speedup']}x"
            )
        if "state_revisit_reduction" in entry:
            print(
                f"  state-revisit reduction: "
                f"{entry['state_revisit_reduction']:.1%} of incremental "
                f"expansions pruned; distinct states are "
                f"{entry['expanded_vs_terminals_reduction']:.1%} fewer "
                f"than terminals; dedup speedup "
                f"{entry['dedup_speedup']}x"
            )

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()

"""Explorer benchmark runner — emits ``BENCH_explorer.json``.

Measures the incremental exploration engine against the historical
replay engine, the state-deduplicating engine, and the pre-step
reductions (sleep sets, renaming symmetry) on fixed configurations, and
single-worker against multi-worker exploration on the largest one.
Results (wall-clock plus the engines' own event and state counters) are
written as JSON for CI artifact upload and cross-run comparison;
``benchmarks/check_explorer_bench.py`` diffs a fresh report against the
committed ``BENCH_explorer.json`` baseline.

Usage::

    PYTHONPATH=src python benchmarks/run_explorer_bench.py \
        [--output BENCH_explorer.json] [--workers 4] [--quick]

The schedule trees explored are deterministic; only the timings vary
between machines.  The JSON includes per-config invariants (terminal
count, tree depth, distinct-state counts, a digest of the violation
set) so a regression in *what* is explored fails loudly — in
particular, every engine variant of one configuration must report the
same violation digest, the reduction-soundness check.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import time

from repro.broadcasts import SendToAllBroadcast, UniformReliableBroadcast
from repro.runtime import (
    CrashSchedule,
    Simulator,
    channels_property,
    explore_schedules,
    spec_property,
)
from repro.specs import TotalOrderBroadcastSpec


def _simulator(config: dict) -> Simulator:
    algorithm = {
        "send-to-all": SendToAllBroadcast,
        "uniform-reliable": UniformReliableBroadcast,
    }[config["algorithm"]]
    return Simulator(
        config["n"], lambda pid, n: algorithm(pid, n)
    )


def _crash_schedule(config: dict) -> CrashSchedule | None:
    at_step = config.get("crash_at_step")
    if not at_step:
        return None
    return CrashSchedule(at_step=dict(at_step))


def _property(config: dict):
    if config.get("property") == "total-order":
        return spec_property(TotalOrderBroadcastSpec(), assume_complete=False)
    return channels_property(assume_complete=False)


#: Engine variants: label -> explore_schedules keyword arguments.
ENGINE_KWARGS = {
    "incremental": {"engine": "incremental"},
    "replay": {"engine": "replay"},
    "dedup": {"engine": "dedup"},
    "incremental-sleep": {"engine": "incremental", "sleep_sets": True},
    "dedup-sleep": {"engine": "dedup", "sleep_sets": True},
    "dedup-sleep-rename": {
        "engine": "dedup",
        "sleep_sets": True,
        "symmetry": "rename",
    },
    "dedup-sleep-static": {
        "engine": "dedup",
        "sleep_sets": True,
        "static_independence": True,
    },
}

CONFIGS = [
    {
        "name": "s2a-2senders-n2",
        "algorithm": "send-to-all",
        "n": 2,
        "scripts": {0: ["a"], 1: ["b"]},
        "engines": ["incremental", "dedup", "replay"],
        "workers": [],
    },
    {
        # the symmetric depth-8 tree: 2520 terminals over few hundred
        # distinct states — the showcase for the dedup cache and both
        # pre-step reductions
        "name": "s2a-2senders-n3-depth8",
        "algorithm": "send-to-all",
        "n": 3,
        "scripts": {0: ["a"], 1: ["b"]},
        "engines": [
            "incremental",
            "dedup",
            "replay",
            "incremental-sleep",
            "dedup-sleep",
            "dedup-sleep-rename",
        ],
        "workers": [],
    },
    {
        # a violating configuration: the reduction-soundness rows —
        # every engine variant must report the same violation digest
        "name": "s2a-totalorder-n2",
        "algorithm": "send-to-all",
        "n": 2,
        "scripts": {0: ["x"], 1: ["y"]},
        "property": "total-order",
        "expect_violations": True,
        "engines": ["dedup", "dedup-sleep", "dedup-sleep-rename"],
        "workers": [],
    },
    {
        # crash-heavy tree: a pending injection keeps the *dynamic*
        # sleep-set relation conservative until the crash fires, so
        # these rows measure what the statically proven commutation
        # table (dedup-sleep-static) recovers on crash schedules
        "name": "s2a-crash-n3-depth8",
        "algorithm": "send-to-all",
        "n": 3,
        "scripts": {0: ["a"], 1: ["b"]},
        "crash_at_step": {2: 4},
        "max_depth": 8,
        "engines": ["dedup", "dedup-sleep", "dedup-sleep-static"],
        "workers": [],
    },
    {
        # largest tree: 16128 terminals, depth 10 — the parallel target
        "name": "urb-2senders-n2",
        "algorithm": "uniform-reliable",
        "n": 2,
        "scripts": {0: ["a"], 1: ["b"]},
        "engines": ["dedup"],
        "workers": [1, "N"],
    },
]


def _violations_digest(result) -> str:
    """Order- and permutation-independent digest of the violation set.

    Hashes the *sorted multiset of problem tuples*: reductions may
    collapse redundant violating interleavings (fewer Violation rows)
    and rename pids (different guides), but the distinct problem sets
    they report must survive — so the digest is over those alone.
    """
    problems = sorted({violation.problems for violation in result.violations})
    return hashlib.md5(repr(problems).encode()).hexdigest()


def run_one(config: dict, *, label: str, workers: int = 1) -> dict:
    simulator = _simulator(config)
    kwargs = dict(ENGINE_KWARGS[label])
    if "max_depth" in config:
        kwargs["max_depth"] = config["max_depth"]
    started = time.perf_counter()
    result = explore_schedules(
        simulator,
        config["scripts"],
        _property(config),
        crash_schedule=_crash_schedule(config),
        workers=workers,
        **kwargs,
    )
    elapsed = time.perf_counter() - started
    assert result.exhausted, f"{config['name']}: exploration not exhaustive"
    if config.get("expect_violations"):
        assert result.violations, f"{config['name']}: expected violations"
    else:
        assert result.ok, f"{config['name']}: unexpected violations"
    return {
        "engine": kwargs["engine"],
        "label": label,
        "workers": workers,
        "seconds": round(elapsed, 4),
        "terminal_schedules": result.terminal_schedules,
        "schedules_explored": result.schedules_explored,
        "max_depth_seen": result.max_depth_seen,
        "events_executed": result.events_executed,
        "events_replayed": result.events_replayed,
        "states_seen": result.states_seen,
        "states_deduped": result.states_deduped,
        "states_pruned_sleep": result.states_pruned_sleep,
        "states_merged_symmetry": result.states_merged_symmetry,
        "violations_digest": _violations_digest(result),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", default="BENCH_explorer.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="worker count for the parallel measurements",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="skip the replay engine on the depth-8 config",
    )
    args = parser.parse_args()

    report = {
        "benchmark": "explorer",
        "schema": 4,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "configs": [],
    }
    for config in CONFIGS:
        entry = {"name": config["name"], "runs": []}
        for label in config["engines"]:
            if (
                args.quick
                and label == "replay"
                and config["name"].endswith("depth8")
            ):
                continue
            entry["runs"].append(run_one(config, label=label))
        for workers in config["workers"]:
            count = args.workers if workers == "N" else workers
            entry["runs"].append(
                run_one(config, label="incremental", workers=count)
            )
        by_label: dict = {}
        for run in entry["runs"]:
            # pin the first (single-worker) row per variant for ratios
            by_label.setdefault(run["label"], run)
        if "incremental" in by_label and "replay" in by_label:
            incremental = by_label["incremental"]
            replay = by_label["replay"]
            entry["replayed_events_ratio"] = round(
                replay["events_replayed"]
                / max(1, incremental["events_replayed"]),
                2,
            )
            entry["speedup"] = round(
                replay["seconds"] / max(1e-9, incremental["seconds"]), 2
            )
        if "incremental" in by_label and "dedup" in by_label:
            incremental = by_label["incremental"]
            dedup = by_label["dedup"]
            # fraction of the incremental engine's expansions the
            # transposition cache proved redundant
            entry["state_revisit_reduction"] = round(
                1
                - dedup["states_seen"]
                / max(1, incremental["schedules_explored"]),
                4,
            )
            # distinct states vs terminal schedules: how symmetric the
            # tree is (the dedup acceptance metric)
            entry["expanded_vs_terminals_reduction"] = round(
                1
                - dedup["states_seen"]
                / max(1, dedup["terminal_schedules"]),
                4,
            )
            entry["dedup_speedup"] = round(
                incremental["seconds"] / max(1e-9, dedup["seconds"]), 2
            )
        if "dedup" in by_label and "dedup-sleep" in by_label:
            dedup = by_label["dedup"]
            slept = by_label["dedup-sleep"]
            # sleep sets cannot reduce *distinct* states (a slept
            # event's target is reachable via the commuted order by
            # construction); what they cut is redundant interleavings —
            # terminal property evaluations and executed events
            entry["sleep_terminal_reduction"] = round(
                1
                - slept["terminal_schedules"]
                / max(1, dedup["terminal_schedules"]),
                4,
            )
        if "dedup-sleep" in by_label and "dedup-sleep-static" in by_label:
            slept = by_label["dedup-sleep"]
            static = by_label["dedup-sleep-static"]
            # what the proven-commutation table recovers beyond the
            # recorded-footprint relation: on crash schedules the
            # dynamic relation is conservative while an injection is
            # pending, the static table keeps pruning — strictly fewer
            # executed events and terminal property evaluations
            entry["static_sleep_event_reduction"] = round(
                1
                - static["events_executed"]
                / max(1, slept["events_executed"]),
                4,
            )
            entry["static_sleep_terminal_reduction"] = round(
                1
                - static["terminal_schedules"]
                / max(1, slept["terminal_schedules"]),
                4,
            )
        if "dedup" in by_label and "dedup-sleep-rename" in by_label:
            dedup = by_label["dedup"]
            composed = by_label["dedup-sleep-rename"]
            entry["composed_state_reduction"] = round(
                1 - composed["states_seen"] / max(1, dedup["states_seen"]),
                4,
            )
        report["configs"].append(entry)
        print(f"{entry['name']}:")
        for run in entry["runs"]:
            extras = ""
            if run["states_seen"]:
                extras = (
                    f", {run['states_seen']} states seen / "
                    f"{run['states_deduped']} deduped"
                )
            if run["states_pruned_sleep"]:
                extras += f", {run['states_pruned_sleep']} sleep-pruned"
            if run["states_merged_symmetry"]:
                extras += (
                    f", {run['states_merged_symmetry']} symmetry-merged"
                )
            print(
                f"  {run['label']}(workers={run['workers']}): "
                f"{run['seconds']}s, {run['terminal_schedules']} terminals, "
                f"{run['events_executed']} events executed, "
                f"{run['events_replayed']} replayed{extras}"
            )
        if "replayed_events_ratio" in entry:
            print(
                f"  replayed-events ratio (replay/incremental): "
                f"{entry['replayed_events_ratio']}x, "
                f"wall-clock speedup {entry['speedup']}x"
            )
        if "state_revisit_reduction" in entry:
            print(
                f"  state-revisit reduction: "
                f"{entry['state_revisit_reduction']:.1%} of incremental "
                f"expansions pruned; distinct states are "
                f"{entry['expanded_vs_terminals_reduction']:.1%} fewer "
                f"than terminals; dedup speedup "
                f"{entry['dedup_speedup']}x"
            )
        if "sleep_terminal_reduction" in entry:
            print(
                f"  sleep sets: {entry['sleep_terminal_reduction']:.1%} "
                f"fewer terminal evaluations"
            )
        if "static_sleep_event_reduction" in entry:
            print(
                f"  static commutation table: "
                f"{entry['static_sleep_event_reduction']:.1%} fewer "
                f"executed events, "
                f"{entry['static_sleep_terminal_reduction']:.1%} fewer "
                f"terminal evaluations than dynamic-only sleep sets"
            )
        if "composed_state_reduction" in entry:
            print(
                f"  sleep+rename: {entry['composed_state_reduction']:.1%} "
                f"fewer expanded states"
            )

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()

"""Explorer benchmark runner — emits ``BENCH_explorer.json``.

Measures the incremental exploration engine against the historical
replay engine, the state-deduplicating engine, and the pre-step
reductions (sleep sets, renaming symmetry) on fixed configurations, and
single-worker against multi-worker exploration on the largest one.
Results (wall-clock plus the engines' own event and state counters) are
written as JSON for CI artifact upload and cross-run comparison;
``benchmarks/check_explorer_bench.py`` diffs a fresh report against the
committed ``BENCH_explorer.json`` baseline.

Usage::

    PYTHONPATH=src python benchmarks/run_explorer_bench.py \
        [--output BENCH_explorer.json] [--workers 4] [--quick] \
        [--profile PROFILE.txt]

The schedule trees explored are deterministic; only the timings vary
between machines.  The JSON includes per-config invariants (terminal
count, tree depth, distinct-state counts, orbit-encoding counts, a
digest of the violation set) so a regression in *what* is explored
fails loudly — in particular, every engine variant of one configuration
must report the same violation digest, the reduction-soundness check.

Schema 5 additions: the ``orbit_encodings`` per-run counter (canonical
encodings computed by the orbit-key search — ~1 per cache lookup under
canonical labelling, versus ``|group|!`` per state under the old
permutation enumeration), a ``dedup-rename`` variant isolating the
symmetry reduction, and an ``encoder_microbench`` entry timing the
buffer-reusing canonical encoder against the naive one-hasher-per-node
reference implementation it replaced.  Schema 5 also changes the
canonical encoding itself (distinct list tag, raw-encoding set
ordering), so digests and state counts are not comparable to schema ≤ 4
baselines.

Schema 6 additions: the crash-aware commutation rows.  The historical
sleep-set variants are pinned to ``crash_aware=False`` (the blanket
"any crash blocks commutation" relation) so they stay the before
baseline, and a ``dedup-sleep-crashaware`` variant runs the default
crash-aware relation on the crash configuration.  Every run row now
carries the oracle's ``independence_stats`` (verdicts by source plus
memo hit counts), and two derived metrics land per config where the
rows exist: ``crash_sleep_reduction`` (terminal evaluations the
crash-aware proof cuts below blanket sleep sets) and
``interned_key_hit_rate`` (fraction of oracle queries answered from
the interned-footprint-pair memo).  ``--profile`` additionally runs
the hottest configuration under :mod:`cProfile` and writes the top-20
cumulative-time entries for CI artifact upload.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import time

from repro.broadcasts import SendToAllBroadcast, UniformReliableBroadcast
from repro.core.message import Message, MessageId
from repro.runtime import (
    CrashSchedule,
    Simulator,
    channels_property,
    explore_schedules,
    spec_property,
    stable_digest,
)
from repro.specs import TotalOrderBroadcastSpec


def _simulator(config: dict) -> Simulator:
    algorithm = {
        "send-to-all": SendToAllBroadcast,
        "uniform-reliable": UniformReliableBroadcast,
    }[config["algorithm"]]
    return Simulator(
        config["n"], lambda pid, n: algorithm(pid, n)
    )


def _crash_schedule(config: dict) -> CrashSchedule | None:
    at_step = config.get("crash_at_step")
    if not at_step:
        return None
    return CrashSchedule(at_step=dict(at_step))


def _property(config: dict):
    if config.get("property") == "total-order":
        return spec_property(TotalOrderBroadcastSpec(), assume_complete=False)
    return channels_property(assume_complete=False)


#: Engine variants: label -> explore_schedules keyword arguments.
#:
#: The historical sleep-set labels are pinned to ``crash_aware=False``
#: (the blanket relation that refuses any pair near a crash) so their
#: rows keep meaning the same trees across schema bumps — they are the
#: *before* baseline the ``dedup-sleep-crashaware`` rows are measured
#: against.  On crash-free configurations the flag is inert.
ENGINE_KWARGS = {
    "incremental": {"engine": "incremental"},
    "replay": {"engine": "replay"},
    "dedup": {"engine": "dedup"},
    "incremental-sleep": {
        "engine": "incremental",
        "sleep_sets": True,
        "crash_aware": False,
    },
    "dedup-sleep": {
        "engine": "dedup",
        "sleep_sets": True,
        "crash_aware": False,
    },
    "dedup-rename": {"engine": "dedup", "symmetry": "rename"},
    "dedup-sleep-rename": {
        "engine": "dedup",
        "sleep_sets": True,
        "symmetry": "rename",
        "crash_aware": False,
    },
    "dedup-sleep-static": {
        "engine": "dedup",
        "sleep_sets": True,
        "static_independence": True,
        "crash_aware": False,
    },
    "dedup-sleep-crashaware": {"engine": "dedup", "sleep_sets": True},
}

CONFIGS = [
    {
        "name": "s2a-2senders-n2",
        "algorithm": "send-to-all",
        "n": 2,
        "scripts": {0: ["a"], 1: ["b"]},
        "engines": ["incremental", "dedup", "replay"],
        "workers": [],
    },
    {
        # the symmetric depth-8 tree: 2520 terminals over few hundred
        # distinct states — the showcase for the dedup cache and both
        # pre-step reductions
        "name": "s2a-2senders-n3-depth8",
        "algorithm": "send-to-all",
        "n": 3,
        "scripts": {0: ["a"], 1: ["b"]},
        "engines": [
            "incremental",
            "dedup",
            "replay",
            "incremental-sleep",
            "dedup-sleep",
            "dedup-rename",
            "dedup-sleep-rename",
        ],
        "workers": [],
    },
    {
        # a violating configuration: the reduction-soundness rows —
        # every engine variant must report the same violation digest
        "name": "s2a-totalorder-n2",
        "algorithm": "send-to-all",
        "n": 2,
        "scripts": {0: ["x"], 1: ["y"]},
        "property": "total-order",
        "expect_violations": True,
        "engines": ["dedup", "dedup-sleep", "dedup-sleep-rename"],
        "workers": [],
    },
    {
        # crash-heavy tree: under the blanket relation a pending
        # injection keeps sleep sets conservative until the crash
        # fires.  The dedup-sleep / dedup-sleep-static rows keep that
        # before baseline (crash_aware=False); dedup-sleep-crashaware
        # runs the default crash-aware proof, which discharges victims
        # outside the swap window and must out-prune both
        "name": "s2a-crash-n3-depth8",
        "algorithm": "send-to-all",
        "n": 3,
        "scripts": {0: ["a"], 1: ["b"]},
        "crash_at_step": {2: 4},
        "max_depth": 8,
        "engines": [
            "dedup",
            "dedup-sleep",
            "dedup-sleep-static",
            "dedup-sleep-crashaware",
        ],
        "workers": [],
    },
    {
        # largest tree: 16128 terminals, depth 10 — the parallel target
        "name": "urb-2senders-n2",
        "algorithm": "uniform-reliable",
        "n": 2,
        "scripts": {0: ["a"], 1: ["b"]},
        "engines": ["dedup"],
        "workers": [1, "N"],
    },
]


def _violations_digest(result) -> str:
    """Order- and permutation-independent digest of the violation set.

    Hashes the *sorted multiset of problem tuples*: reductions may
    collapse redundant violating interleavings (fewer Violation rows)
    and rename pids (different guides), but the distinct problem sets
    they report must survive — so the digest is over those alone.
    """
    problems = sorted({violation.problems for violation in result.violations})
    return hashlib.md5(repr(problems).encode()).hexdigest()


def run_one(config: dict, *, label: str, workers: int = 1) -> dict:
    simulator = _simulator(config)
    kwargs = dict(ENGINE_KWARGS[label])
    if "max_depth" in config:
        kwargs["max_depth"] = config["max_depth"]
    started = time.perf_counter()
    result = explore_schedules(
        simulator,
        config["scripts"],
        _property(config),
        crash_schedule=_crash_schedule(config),
        workers=workers,
        **kwargs,
    )
    elapsed = time.perf_counter() - started
    assert result.exhausted, f"{config['name']}: exploration not exhaustive"
    if config.get("expect_violations"):
        assert result.violations, f"{config['name']}: expected violations"
    else:
        assert result.ok, f"{config['name']}: unexpected violations"
    return {
        "engine": kwargs["engine"],
        "label": label,
        "workers": workers,
        "seconds": round(elapsed, 4),
        "terminal_schedules": result.terminal_schedules,
        "schedules_explored": result.schedules_explored,
        "max_depth_seen": result.max_depth_seen,
        "events_executed": result.events_executed,
        "events_replayed": result.events_replayed,
        "states_seen": result.states_seen,
        "states_deduped": result.states_deduped,
        "states_pruned_sleep": result.states_pruned_sleep,
        "states_merged_symmetry": result.states_merged_symmetry,
        "orbit_encodings": result.orbit_encodings,
        "violations_digest": _violations_digest(result),
        "independence_stats": {
            key: value
            for key, value in sorted(result.independence_stats.items())
        },
    }


# --- encoder microbench -----------------------------------------------------
#
# The reference implementation below is the encoding scheme the
# buffer-reusing encoder replaced: one blake2b hasher per *node*, with
# containers hashing their children's finished digests (so every leaf
# digest is finalized, copied, and re-fed).  It is kept here — not in
# the library — purely as the microbench baseline.


def _reference_update(hasher, value) -> None:
    import dataclasses

    if value is None:
        hasher.update(b"N")
    elif isinstance(value, bool):
        hasher.update(b"B1" if value else b"B0")
    elif isinstance(value, int):
        hasher.update(b"i" + str(value).encode())
    elif isinstance(value, float):
        hasher.update(b"f" + value.hex().encode())
    elif isinstance(value, str):
        encoded = value.encode()
        hasher.update(b"s" + str(len(encoded)).encode() + b":" + encoded)
    elif isinstance(value, bytes):
        hasher.update(b"y" + str(len(value)).encode() + b":" + value)
    elif isinstance(value, (tuple, list)):
        hasher.update(b"(" + str(len(value)).encode())
        for item in value:
            sub = hashlib.blake2b(digest_size=16)
            _reference_update(sub, item)
            hasher.update(sub.digest())
        hasher.update(b")")
    elif isinstance(value, (set, frozenset)):
        digests = []
        for item in value:
            sub = hashlib.blake2b(digest_size=16)
            _reference_update(sub, item)
            digests.append(sub.digest())
        hasher.update(b"{" + str(len(value)).encode())
        for digest in sorted(digests):
            hasher.update(digest)
    elif isinstance(value, dict):
        digests = []
        for key, item in value.items():
            sub = hashlib.blake2b(digest_size=16)
            _reference_update(sub, (key, item))
            digests.append(sub.digest())
        hasher.update(b"m" + str(len(value)).encode())
        for digest in sorted(digests):
            hasher.update(digest)
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        hasher.update(b"D" + type(value).__qualname__.encode())
        for field in dataclasses.fields(value):
            sub = hashlib.blake2b(digest_size=16)
            _reference_update(sub, getattr(value, field.name))
            hasher.update(sub.digest())
    else:
        hasher.update(b"r" + repr(value).encode())


def _reference_digest(value) -> str:
    hasher = hashlib.blake2b(digest_size=16)
    _reference_update(hasher, value)
    return hasher.hexdigest()


def _encoder_corpus() -> list:
    """Values shaped like the simulator state the encoder actually sees:
    journals (tuples of tagged tuples), in-flight pools (tuples of
    Message dataclasses), registries (dicts), and gate sets."""
    corpus = []
    for seed in range(64):
        messages = tuple(
            Message(MessageId(seed % 3, seq), f"payload-{seed}-{seq}")
            for seq in range(4)
        )
        corpus.append(
            (
                "state",
                seed,
                messages,
                {pid: ("journal", ("bcast", pid), ("recv", pid, seed % 5))
                 for pid in range(3)},
                frozenset({(seed % 3, step) for step in range(3)}),
                ["script", f"value-{seed}"],
            )
        )
    return corpus


def run_encoder_microbench(rounds: int = 40) -> dict:
    corpus = _encoder_corpus()
    # warm up caches (buffer pool, dataclass field memoization) and the
    # reference path alike, outside the timed region
    for value in corpus:
        stable_digest(value)
        _reference_digest(value)
    started = time.perf_counter()
    for _ in range(rounds):
        for value in corpus:
            _reference_digest(value)
    reference = time.perf_counter() - started
    started = time.perf_counter()
    for _ in range(rounds):
        for value in corpus:
            stable_digest(value)
    fast = time.perf_counter() - started
    return {
        "values": len(corpus),
        "rounds": rounds,
        "reference_seconds": round(reference, 4),
        "fast_seconds": round(fast, 4),
        "speedup": round(reference / max(1e-9, fast), 2),
    }


#: The config/variant pair --profile runs: the crash-aware sleep-set
#: row of the crash configuration — the DFS inner loop with the
#: independence oracle, interned keys, and bitmask sleep sets all hot.
PROFILE_CONFIG = "s2a-crash-n3-depth8"
PROFILE_LABEL = "dedup-sleep-crashaware"


def _write_profile(path: str, top: int = 20) -> None:
    """Profile the hottest config and write the top cumulative entries."""
    import cProfile
    import io
    import pstats

    config = next(c for c in CONFIGS if c["name"] == PROFILE_CONFIG)
    profiler = cProfile.Profile()
    profiler.enable()
    run_one(config, label=PROFILE_LABEL)
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)
    text = (
        f"cProfile top-{top} (cumulative) — "
        f"{PROFILE_CONFIG} / {PROFILE_LABEL}\n{buffer.getvalue()}"
    )
    with open(path, "w") as handle:
        handle.write(text)
    print(text)
    print(f"wrote profile to {path}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", default="BENCH_explorer.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="worker count for the parallel measurements",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="skip the replay engine on the depth-8 config",
    )
    parser.add_argument(
        "--profile", metavar="PATH", default=None,
        help="run the hottest config under cProfile and write the "
             "top-20 cumulative entries to PATH",
    )
    args = parser.parse_args()

    report = {
        "benchmark": "explorer",
        "schema": 6,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "notes": (
            "schema 6: crash-aware commutation rows — historical sleep "
            "variants pinned to the blanket relation "
            "(crash_aware=False) as the before baseline, "
            "dedup-sleep-crashaware measures the crash-aware proof, "
            "run rows carry independence_stats; digests and state "
            "counts remain on the schema-5 canonical encoding"
        ),
        "encoder_microbench": run_encoder_microbench(),
        "configs": [],
    }
    micro = report["encoder_microbench"]
    print(
        f"encoder microbench: reference {micro['reference_seconds']}s, "
        f"fast {micro['fast_seconds']}s "
        f"({micro['speedup']}x over {micro['values']} values x "
        f"{micro['rounds']} rounds)"
    )
    for config in CONFIGS:
        entry = {"name": config["name"], "runs": []}
        for label in config["engines"]:
            if (
                args.quick
                and label == "replay"
                and config["name"].endswith("depth8")
            ):
                continue
            entry["runs"].append(run_one(config, label=label))
        for workers in config["workers"]:
            count = args.workers if workers == "N" else workers
            entry["runs"].append(
                run_one(config, label="incremental", workers=count)
            )
        by_label: dict = {}
        for run in entry["runs"]:
            # pin the first (single-worker) row per variant for ratios
            by_label.setdefault(run["label"], run)
        if "incremental" in by_label and "replay" in by_label:
            incremental = by_label["incremental"]
            replay = by_label["replay"]
            entry["replayed_events_ratio"] = round(
                replay["events_replayed"]
                / max(1, incremental["events_replayed"]),
                2,
            )
            entry["speedup"] = round(
                replay["seconds"] / max(1e-9, incremental["seconds"]), 2
            )
        if "incremental" in by_label and "dedup" in by_label:
            incremental = by_label["incremental"]
            dedup = by_label["dedup"]
            # fraction of the incremental engine's expansions the
            # transposition cache proved redundant
            entry["state_revisit_reduction"] = round(
                1
                - dedup["states_seen"]
                / max(1, incremental["schedules_explored"]),
                4,
            )
            # distinct states vs terminal schedules: how symmetric the
            # tree is (the dedup acceptance metric)
            entry["expanded_vs_terminals_reduction"] = round(
                1
                - dedup["states_seen"]
                / max(1, dedup["terminal_schedules"]),
                4,
            )
            entry["dedup_speedup"] = round(
                incremental["seconds"] / max(1e-9, dedup["seconds"]), 2
            )
        if "dedup" in by_label and "dedup-sleep" in by_label:
            dedup = by_label["dedup"]
            slept = by_label["dedup-sleep"]
            # sleep sets cannot reduce *distinct* states (a slept
            # event's target is reachable via the commuted order by
            # construction); what they cut is redundant interleavings —
            # terminal property evaluations and executed events
            entry["sleep_terminal_reduction"] = round(
                1
                - slept["terminal_schedules"]
                / max(1, dedup["terminal_schedules"]),
                4,
            )
        if "dedup-sleep" in by_label and "dedup-sleep-static" in by_label:
            slept = by_label["dedup-sleep"]
            static = by_label["dedup-sleep-static"]
            # what the proven-commutation table recovers beyond the
            # recorded-footprint relation: on crash schedules the
            # dynamic relation is conservative while an injection is
            # pending, the static table keeps pruning — strictly fewer
            # executed events and terminal property evaluations
            entry["static_sleep_event_reduction"] = round(
                1
                - static["events_executed"]
                / max(1, slept["events_executed"]),
                4,
            )
            entry["static_sleep_terminal_reduction"] = round(
                1
                - static["terminal_schedules"]
                / max(1, slept["terminal_schedules"]),
                4,
            )
        if "dedup" in by_label and "dedup-rename" in by_label:
            dedup = by_label["dedup"]
            renamed = by_label["dedup-rename"]
            entry["rename_state_reduction"] = round(
                1 - renamed["states_seen"] / max(1, dedup["states_seen"]),
                4,
            )
            # canonical labelling's cost metric: encodings per cache
            # lookup (expansions + hits); ~1 means the invariant
            # profiles separate almost every orbit without search,
            # versus |group|! encodings per lookup under enumeration
            lookups = (
                renamed["schedules_explored"]
                + renamed["states_deduped"]
                + renamed["states_merged_symmetry"]
            )
            entry["orbit_encodings_per_lookup"] = round(
                renamed["orbit_encodings"] / max(1, lookups), 2
            )
        if "dedup" in by_label and "dedup-sleep-rename" in by_label:
            dedup = by_label["dedup"]
            composed = by_label["dedup-sleep-rename"]
            entry["composed_state_reduction"] = round(
                1 - composed["states_seen"] / max(1, dedup["states_seen"]),
                4,
            )
        if "dedup-sleep" in by_label and "dedup-sleep-crashaware" in by_label:
            blanket = by_label["dedup-sleep"]
            aware = by_label["dedup-sleep-crashaware"]
            # what the crash-aware proof recovers beyond blanket sleep
            # sets: victims outside the adjacent-swap window no longer
            # block commutation, so strictly fewer terminal property
            # evaluations and executed events on crash schedules
            entry["crash_sleep_reduction"] = round(
                1
                - aware["terminal_schedules"]
                / max(1, blanket["terminal_schedules"]),
                4,
            )
            stats = aware.get("independence_stats", {})
            entry["interned_key_hit_rate"] = round(
                stats.get("memo_hits", 0)
                / max(1, stats.get("memo_queries", 0)),
                4,
            )
        report["configs"].append(entry)
        print(f"{entry['name']}:")
        for run in entry["runs"]:
            extras = ""
            if run["states_seen"]:
                extras = (
                    f", {run['states_seen']} states seen / "
                    f"{run['states_deduped']} deduped"
                )
            if run["states_pruned_sleep"]:
                extras += f", {run['states_pruned_sleep']} sleep-pruned"
            if run["states_merged_symmetry"]:
                extras += (
                    f", {run['states_merged_symmetry']} symmetry-merged"
                )
            if run["orbit_encodings"]:
                extras += f", {run['orbit_encodings']} orbit encodings"
            print(
                f"  {run['label']}(workers={run['workers']}): "
                f"{run['seconds']}s, {run['terminal_schedules']} terminals, "
                f"{run['events_executed']} events executed, "
                f"{run['events_replayed']} replayed{extras}"
            )
        if "replayed_events_ratio" in entry:
            print(
                f"  replayed-events ratio (replay/incremental): "
                f"{entry['replayed_events_ratio']}x, "
                f"wall-clock speedup {entry['speedup']}x"
            )
        if "state_revisit_reduction" in entry:
            print(
                f"  state-revisit reduction: "
                f"{entry['state_revisit_reduction']:.1%} of incremental "
                f"expansions pruned; distinct states are "
                f"{entry['expanded_vs_terminals_reduction']:.1%} fewer "
                f"than terminals; dedup speedup "
                f"{entry['dedup_speedup']}x"
            )
        if "sleep_terminal_reduction" in entry:
            print(
                f"  sleep sets: {entry['sleep_terminal_reduction']:.1%} "
                f"fewer terminal evaluations"
            )
        if "static_sleep_event_reduction" in entry:
            print(
                f"  static commutation table: "
                f"{entry['static_sleep_event_reduction']:.1%} fewer "
                f"executed events, "
                f"{entry['static_sleep_terminal_reduction']:.1%} fewer "
                f"terminal evaluations than dynamic-only sleep sets"
            )
        if "rename_state_reduction" in entry:
            print(
                f"  rename symmetry: {entry['rename_state_reduction']:.1%} "
                f"fewer expanded states at "
                f"{entry['orbit_encodings_per_lookup']} canonical "
                f"encodings per cache lookup"
            )
        if "composed_state_reduction" in entry:
            print(
                f"  sleep+rename: {entry['composed_state_reduction']:.1%} "
                f"fewer expanded states"
            )
        if "crash_sleep_reduction" in entry:
            print(
                f"  crash-aware commutation: "
                f"{entry['crash_sleep_reduction']:.1%} fewer terminal "
                f"evaluations than blanket sleep sets, oracle memo hit "
                f"rate {entry['interned_key_hit_rate']:.1%}"
            )

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
    print(f"wrote {args.output}")

    if args.profile:
        _write_profile(args.profile)


if __name__ == "__main__":
    main()

"""Performance P6 addendum — service submit latency, cold vs memo-hit.

One verification service, one TCP client, both alive for the whole
module.  The *cold* benchmark submits a fresh descriptor every round
(a unique ``max_schedules`` budget gives each a distinct memo key), so
every submission pays fork + exploration.  The *memo-hit* benchmark
resubmits one fixed descriptor: after the first round the service
answers from the fingerprint-keyed store, and the measured latency is
pure protocol + lookup — the number that makes near-duplicate scenario
sweeps cheap.
"""

import asyncio
import itertools

import pytest

from repro.server.client import ServiceClient
from repro.server.service import VerificationService

TINY = {
    "algorithm": "send-to-all",
    "n": 2,
    "scripts": {"0": ["x"]},
    "engine": "dedup",
}


@pytest.fixture(scope="module")
def service_conn():
    loop = asyncio.new_event_loop()
    service = VerificationService(max_workers=2)
    host, port = loop.run_until_complete(
        service.serve_tcp("127.0.0.1", 0)
    )
    client = ServiceClient(host, port)
    loop.run_until_complete(client.connect())
    yield loop, client
    loop.run_until_complete(client.aclose())
    loop.run_until_complete(service.shutdown())
    loop.close()


def test_submit_cold(benchmark, service_conn):
    loop, client = service_conn
    budgets = itertools.count(90_000)

    def submit_fresh():
        descriptor = dict(TINY, max_schedules=next(budgets))
        reply = loop.run_until_complete(
            client.submit(descriptor, wait=True)
        )
        assert reply["memo_hit"] is False
        assert reply["state"] == "done"
        return reply

    benchmark.pedantic(
        submit_fresh, rounds=5, iterations=1, warmup_rounds=1
    )


def test_submit_memo_hit(benchmark, service_conn):
    loop, client = service_conn
    cold = loop.run_until_complete(client.submit(TINY, wait=True))
    assert cold["state"] == "done"

    def submit_warm():
        reply = loop.run_until_complete(client.submit(TINY, wait=True))
        assert reply["memo_hit"] is True
        assert reply["violations_digest"] == cold["violations_digest"]
        return reply

    benchmark(submit_warm)

"""Performance P8 — application-layer replay throughput."""

import pytest

from repro.apps import (
    orphaned_replies,
    replay_counter,
    replay_kv_store,
)
from repro.broadcasts import SendToAllBroadcast, TotalOrderBroadcast
from repro.core.serialize import dumps, loads
from repro.runtime import Simulator


@pytest.fixture(scope="module")
def smr_run():
    simulator = Simulator(
        4, lambda pid, n: TotalOrderBroadcast(pid, n), k=1, seed=5
    )
    return simulator.run(
        {
            p: [("inc", f"k{i % 3}", 1) for i in range(4)]
            for p in range(4)
        }
    )


def test_kv_replay(benchmark, smr_run):
    states = benchmark(replay_kv_store, smr_run)
    assert states.converged()


def test_counter_replay(benchmark):
    simulator = Simulator(
        4, lambda pid, n: SendToAllBroadcast(pid, n), seed=6
    )
    result = simulator.run(
        {p: [("inc", p, 1) for _ in range(4)] for p in range(4)}
    )
    states = benchmark(replay_counter, result)
    assert states.converged()


def test_chat_checker(benchmark, smr_run):
    problems = benchmark(orphaned_replies, smr_run)
    assert problems == []  # no "msg" contents at all: vacuous


def test_trace_serialization_roundtrip(benchmark, smr_run):
    def roundtrip():
        return loads(dumps(smr_run.execution))

    reloaded = benchmark(roundtrip)
    assert reloaded == smr_run.execution

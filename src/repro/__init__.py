"""repro — executable reproduction of Gay, Mostéfaoui & Perrin (PODC 2024),
"No Broadcast Abstraction Characterizes k-Set-Agreement in Message-Passing
Systems".

The package turns the paper's mathematical machinery into running code:

* :mod:`repro.core` — executions, broadcast specifications, the
  compositionality / content-neutrality symmetry checkers, N-solo
  executions, the k-SA and channel axioms;
* :mod:`repro.specs` — the catalogue of broadcast abstractions as
  predicates;
* :mod:`repro.runtime` — the CAMP_n[H] simulation substrate;
* :mod:`repro.broadcasts` — broadcast algorithms over the substrate;
* :mod:`repro.agreement` — agreement algorithms and reductions;
* :mod:`repro.adversary` — Algorithm 1, Definitions 4–5, Lemmas 1–10 and
  the Theorem 1 contradiction pipeline;
* :mod:`repro.analysis` — trace analytics and rendering (Figure 1);
* :mod:`repro.experiments` — the per-figure / per-lemma harness.
"""

from . import core

__version__ = "1.0.0"

__all__ = ["core", "__version__"]

"""A replicated key-value store: the canonical non-commuting workload.

Commands are ``("put", key, value)``, ``("inc", key, delta)`` and
``("del", key)``.  ``put``/``del`` on the same key do not commute, so
replicas need Total-Order (or at least Generic-Broadcast-for-conflicts)
delivery to converge; ``inc`` commands commute with each other, which is
exactly the structure Generic Broadcast exploits.

State is a frozenset of (key, value) pairs, a value type, so replica
equality is state equality.
"""

from __future__ import annotations

from typing import Hashable

from ..runtime.simulator import SimulationResult
from .state_machine import ReplicaStates, replay_replicas

__all__ = ["apply_command", "replay_kv_store", "EMPTY_STORE"]

EMPTY_STORE: frozenset = frozenset()


def apply_command(state: frozenset, command: Hashable) -> frozenset:
    """One step of the store's transition function."""
    mapping = dict(state)
    op = command[0]
    if op == "put":
        _, key, value = command
        mapping[key] = value
    elif op == "inc":
        _, key, delta = command
        mapping[key] = mapping.get(key, 0) + delta
    elif op == "del":
        _, key = command
        mapping.pop(key, None)
    else:
        raise ValueError(f"unknown command {command!r}")
    return frozenset(mapping.items())


def replay_kv_store(result: SimulationResult) -> ReplicaStates:
    """Replay a simulation's delivery logs through the KV store."""
    return replay_replicas(result, apply_command, EMPTY_STORE)

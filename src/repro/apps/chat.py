"""A threaded chat room: the workload that motivates Causal Broadcast.

Messages are ``("msg", author, text, reply_to)`` where ``reply_to`` is
the text of the parent message (or ``None`` for thread roots).  The
user-visible sanity condition is: *nobody ever sees a reply before the
message it answers* — exactly the happened-before guarantee Causal
Broadcast provides and Send-To-All does not (a third party can receive
the reply first when the network is unkind; see
:class:`~repro.runtime.policies.TargetedDelayPolicy`).
"""

from __future__ import annotations

from typing import Hashable

from ..runtime.simulator import SimulationResult

__all__ = ["orphaned_replies"]


def orphaned_replies(result: SimulationResult) -> list[str]:
    """Replies some process saw before their parent, with diagnostics.

    Returns one entry per (process, reply) whose parent text had not
    been delivered at that process when the reply arrived.  Empty for
    every run over a causal (or stronger) broadcast.
    """
    problems: list[str] = []
    for process in range(result.execution.n):
        seen: set[Hashable] = set()
        for content in result.delivered_contents(process):
            if not (isinstance(content, tuple) and content[0] == "msg"):
                continue
            _tag, author, text, reply_to = content
            if reply_to is not None and reply_to not in seen:
                problems.append(
                    f"p{process} saw the reply {text!r} (by p{author}) "
                    f"before its parent {reply_to!r}"
                )
            seen.add(text)
    return problems

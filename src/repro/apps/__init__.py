"""Application layer: the workloads the paper's introduction motivates.

Each application consumes a :class:`~repro.runtime.simulator.
SimulationResult` and interprets the delivery logs, so every app runs
over every broadcast — making the abstraction hierarchy *observable*:

* :mod:`repro.apps.state_machine` / :mod:`repro.apps.kv_store` —
  replicated state machines; converge over Total-Order Broadcast,
  diverge over weaker ones when commands conflict;
* :mod:`repro.apps.counter` — a grow-only counter CRDT; commutativity
  makes plain reliable dissemination sufficient (Generic Broadcast's
  empty-conflict case);
* :mod:`repro.apps.chat` — threaded chat; "no reply before its parent"
  is exactly Causal Broadcast's guarantee.
"""

from .chat import orphaned_replies
from .counter import apply_increment, counter_value, replay_counter
from .kv_store import EMPTY_STORE, apply_command, replay_kv_store
from .state_machine import (
    ReplicaStates,
    logs_prefix_related,
    replay_replicas,
)

__all__ = [
    "EMPTY_STORE",
    "ReplicaStates",
    "apply_command",
    "apply_increment",
    "counter_value",
    "logs_prefix_related",
    "orphaned_replies",
    "replay_counter",
    "replay_kv_store",
    "replay_replicas",
]

"""A grow-only counter CRDT: commutativity makes weak broadcasts enough.

The counter-point (literally) to the KV store: per-process increments
``("inc", origin, amount)`` commute, so *any* reliable dissemination —
plain Send-To-All included — converges, delivery order be damned.  This
is the degenerate end of the Generic Broadcast spectrum (§3.2): with no
conflicting pairs, its ordering predicate is empty and the abstraction
collapses to reliability.

State is the per-origin contribution vector (a frozenset of
(origin, total) pairs); the counter value is the sum.  The state is a
pure function of the *set* of delivered increments, which is why order
cannot matter.
"""

from __future__ import annotations

from typing import Hashable

from ..runtime.simulator import SimulationResult
from .state_machine import ReplicaStates, replay_replicas

__all__ = ["apply_increment", "counter_value", "replay_counter"]


def apply_increment(state: frozenset, command: Hashable) -> frozenset:
    """Fold one ``("inc", origin, amount)`` into the contribution vector."""
    op, origin, amount = command
    if op != "inc":
        raise ValueError(f"unknown command {command!r}")
    mapping = dict(state)
    mapping[origin] = mapping.get(origin, 0) + amount
    return frozenset(mapping.items())


def counter_value(state: frozenset) -> int:
    """The counter's value: the sum of all contributions."""
    return sum(total for _origin, total in state)


def replay_counter(result: SimulationResult) -> ReplicaStates:
    """Replay a simulation's delivery logs through the G-counter."""
    return replay_replicas(result, apply_increment, frozenset())

"""Generic state-machine replication over any broadcast abstraction.

Section 1.2's motivating application: State Machine Replication builds
on Total-Order Broadcast because replicas that apply the same commands
in the same order end in the same state.  This module makes that
statement checkable for *any* broadcast: replay each replica's delivery
log through a reducer and compare.

* Over :class:`~repro.broadcasts.total_order.TotalOrderBroadcast`,
  replicas always converge (and their logs are prefix-related).
* Over weaker abstractions, convergence holds exactly when the commands
  commute — the observation Generic Broadcast (§3.2) turns into a
  specification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Mapping

from ..runtime.simulator import SimulationResult

__all__ = ["ReplicaStates", "replay_replicas", "logs_prefix_related"]

Reducer = Callable[[Hashable, Hashable], Hashable]


@dataclass
class ReplicaStates:
    """Final state and applied log per replica, plus convergence checks."""

    states: Mapping[int, Hashable]
    logs: Mapping[int, tuple[Hashable, ...]]
    correct: frozenset[int]

    def converged(self) -> bool:
        """All *correct* replicas reached the same state."""
        reference = None
        for process in sorted(self.correct):
            if reference is None:
                reference = self.states[process]
            elif self.states[process] != reference:
                return False
        return True

    def divergent_pairs(self) -> list[tuple[int, int]]:
        """Pairs of correct replicas with different final states."""
        ordered = sorted(self.correct)
        return [
            (a, b)
            for index, a in enumerate(ordered)
            for b in ordered[index + 1:]
            if self.states[a] != self.states[b]
        ]


def replay_replicas(
    result: SimulationResult,
    reducer: Reducer,
    initial: Hashable,
) -> ReplicaStates:
    """Apply each replica's delivery log through ``reducer``.

    ``reducer(state, command) -> state`` must be pure; ``initial`` is the
    common starting state.  States should be values (tuples, frozen
    dataclasses, immutables) so equality means convergence.
    """
    states: dict[int, Hashable] = {}
    logs: dict[int, tuple[Hashable, ...]] = {}
    for process in range(result.execution.n):
        log = tuple(result.delivered_contents(process))
        state = initial
        for command in log:
            state = reducer(state, command)
        states[process] = state
        logs[process] = log
    return ReplicaStates(
        states=states, logs=logs, correct=result.execution.correct
    )


def logs_prefix_related(states: ReplicaStates) -> bool:
    """True iff all correct replicas' logs are prefixes of the longest.

    The signature guarantee of Total-Order Broadcast: nobody ever applies
    commands in an order another replica contradicts.
    """
    logs = [states.logs[p] for p in sorted(states.correct)]
    longest = max(logs, key=len, default=())
    return all(log == longest[: len(log)] for log in logs)

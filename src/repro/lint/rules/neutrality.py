"""REP003 — delivery predicates must be content-neutral (Def. 3).

Definition 3 restricts a broadcast abstraction's ordering predicate to
properties invariant under injective renaming of message contents: the
predicate may look at *identities* (sender, uid, sequence numbers,
delivery positions) but never at *what the message says*.  That is the
hypothesis under which the paper's impossibility holds — Section 3.2's
SA-tagged broadcast shows how inspecting contents smuggles k-SA power
into a "broadcast" abstraction.

The static proxy: code in ``specs/`` must not read ``.content`` or
``.payload`` off messages.  Specs that are content-sensitive *by design*
(the paper's own counterexamples) carry an explicit line suppression with
a rationale, which is precisely the documentation burden they deserve.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .base import ModuleContext, Rule

__all__ = ["ContentNeutralityRule"]

#: Message attributes that expose content to a predicate.
_CONTENT_ATTRIBUTES = frozenset({"content", "payload"})


class ContentNeutralityRule(Rule):
    """Flag content inspection inside delivery predicates."""

    id = "REP003"
    summary = (
        "delivery predicates in specs/ must not branch on message "
        "contents (content-neutrality, Def. 3)"
    )
    scope = frozenset({"specs"})

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in _CONTENT_ATTRIBUTES
                and isinstance(node.ctx, ast.Load)
            ):
                yield module.finding(
                    self,
                    node,
                    f"reads .{node.attr}: ordering predicates must be "
                    f"invariant under content renaming (Def. 3); key on "
                    f"sender/uid/positions, or suppress with a rationale "
                    f"if content-sensitivity is the point",
                )

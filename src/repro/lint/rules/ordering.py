"""REP006 — spec verdicts must enumerate uids in sorted order.

The delivery predicates in ``specs/`` report *why* an execution is
rejected: verdict details name the offending message uids.  Those
details are diffed byte-for-byte — by the content-neutrality fixtures,
by the explorer's violation round-trip tests, and by anyone comparing
two runs — so their order must be a function of the execution alone.
Iterating a ``set`` (or a dict populated *from* a set) of uids walks it
in hash order, which varies across interpreter runs once message
contents (strings, tokens) enter the hash mix.  The fix is always the
same and always cheap at spec scale: ``sorted(...)`` before iterating.

The rule is an intra-function inference: a name counts as a *set of
uids* while its last binding is a set expression mentioning uids, when
uids are accumulated into it via ``.add(...)``, or when it is unpacked
from the ``.items()`` / ``.values()`` of a dict whose values are such
sets (the ``d.setdefault(key, set()).add(m.uid)`` accumulator idiom).
Wrapping the iteration in ``sorted(...)`` launders it back to ordered —
as does rebinding the name through ``sorted(...)`` itself or through a
module-level *sorting helper*, a function whose every return statement
provably wraps ``sorted(...)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .base import ModuleContext, Rule, dotted_name

__all__ = ["UidOrderingRule"]

#: Substrings marking an expression or name as uid-bearing.
_UID_MARKERS = ("uid", "UID", "MessageId")

#: Annotation heads denoting an unordered set.
_SET_HEADS = ("set", "Set", "frozenset", "FrozenSet")


def _mentions_uid(node: ast.AST | None) -> bool:
    if node is None:
        return False
    text = ast.unparse(node)
    return any(marker in text for marker in _UID_MARKERS)


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "intersection",
            "union",
            "difference",
            "symmetric_difference",
        ):
            return _is_set_expression(node.func.value)
    return False


class UidOrderingRule(Rule):
    """Flag hash-ordered iteration over uid sets in delivery predicates."""

    id = "REP006"
    summary = (
        "spec predicates must iterate message-uid sets (and dicts of "
        "them) sorted, so verdict details replay byte-for-byte"
    )
    scope = frozenset({"specs"})

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        launderers = self._sorting_helpers(module.tree) | {"sorted"}
        for scope_node in self._function_scopes(module.tree):
            uid_sets, uid_set_dicts = self._infer_names(
                scope_node, launderers
            )
            for node in self._walk_scope(scope_node):
                if isinstance(node, ast.For):
                    yield from self._check_iter(
                        module, node.iter, uid_sets, uid_set_dicts
                    )
                elif isinstance(
                    node,
                    (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp),
                ):
                    for generator in node.generators:
                        yield from self._check_iter(
                            module, generator.iter, uid_sets, uid_set_dicts
                        )
        return

    # -- scope handling --------------------------------------------------

    @staticmethod
    def _function_scopes(tree: ast.Module) -> list[ast.AST]:
        """The module plus every function, each a separate inference scope."""
        scopes: list[ast.AST] = [tree]
        scopes.extend(
            node
            for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        return scopes

    @staticmethod
    def _walk_scope(scope_node: ast.AST) -> Iterator[ast.AST]:
        """Walk a scope without descending into nested functions."""
        for child in ast.iter_child_nodes(scope_node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # a nested scope: inferred and checked separately
            yield child
            yield from UidOrderingRule._walk_scope_children(child)

    @staticmethod
    def _walk_scope_children(node: ast.AST) -> Iterator[ast.AST]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield child
            yield from UidOrderingRule._walk_scope_children(child)

    # -- name inference --------------------------------------------------

    @staticmethod
    def _sorting_helpers(tree: ast.Module) -> frozenset[str]:
        """Module-level functions whose every return wraps ``sorted(...)``.

        A name rebound through such a helper is as laundered as one
        rebound through ``sorted(...)`` inline — the loop-target pass
        must not re-mark it as a uid set.
        """
        helpers: set[str] = set()
        for node in tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            returns = [
                r for r in ast.walk(node) if isinstance(r, ast.Return)
            ]
            if returns and all(
                r.value is not None
                and UidOrderingRule._wraps_sorted(r.value)
                for r in returns
            ):
                helpers.add(node.name)
        return frozenset(helpers)

    @staticmethod
    def _wraps_sorted(node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        name = dotted_name(node.func)
        if name == "sorted":
            return True
        if name in ("list", "tuple") and node.args:
            return UidOrderingRule._wraps_sorted(node.args[0])
        return False

    def _infer_names(
        self, scope_node: ast.AST, launderers: frozenset[str]
    ) -> tuple[frozenset[str], frozenset[str]]:
        """(names holding uid sets, names holding dicts of uid sets)."""
        uid_sets: set[str] = set()
        uid_set_dicts: set[str] = set()
        laundered: set[str] = set()
        nodes = list(self._walk_scope(scope_node))
        for node in nodes:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    if _is_set_expression(node.value) and (
                        _mentions_uid(node.value) or _mentions_uid(target)
                    ):
                        uid_sets.add(target.id)
                        laundered.discard(target.id)
                    elif not _is_set_expression(node.value):
                        uid_sets.discard(target.id)
                        if (
                            isinstance(node.value, ast.Call)
                            and dotted_name(node.value.func) in launderers
                        ):
                            laundered.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                text = ast.unparse(node.annotation)
                head = text.split("[", 1)[0].strip()
                if head in _SET_HEADS and _mentions_uid(node.annotation):
                    uid_sets.add(node.target.id)
                elif head in ("dict", "Dict") and _mentions_uid(
                    node.annotation
                ):
                    uid_set_dicts.add(node.target.id)
            elif isinstance(node, ast.Call):
                self._infer_from_call(node, uid_sets, uid_set_dicts)
        # loop-target propagation last: the dict accumulators the targets
        # unpack may be populated later in source order than the loop
        for node in nodes:
            if isinstance(node, ast.For):
                self._infer_from_loop_target(
                    node, uid_sets, uid_set_dicts, laundered
                )
        return frozenset(uid_sets), frozenset(uid_set_dicts)

    @staticmethod
    def _infer_from_call(
        node: ast.Call, uid_sets: set[str], uid_set_dicts: set[str]
    ) -> None:
        """Track the two accumulator idioms: ``s.add`` and ``setdefault``."""
        if not isinstance(node.func, ast.Attribute):
            return
        owner = node.func.value
        if (
            node.func.attr == "add"
            and node.args
            and _mentions_uid(node.args[0])
        ):
            # ``seen.add(m.uid)`` — a plain set accumulating uids
            if isinstance(owner, ast.Name):
                uid_sets.add(owner.id)
            # ``per.setdefault(k, set()).add(m.uid)`` — a dict of them
            if (
                isinstance(owner, ast.Call)
                and isinstance(owner.func, ast.Attribute)
                and owner.func.attr == "setdefault"
                and len(owner.args) == 2
                and _is_set_expression(owner.args[1])
                and isinstance(owner.func.value, ast.Name)
            ):
                uid_set_dicts.add(owner.func.value.id)

    @staticmethod
    def _infer_from_loop_target(
        node: ast.For,
        uid_sets: set[str],
        uid_set_dicts: set[str],
        laundered: set[str],
    ) -> None:
        """Unpacking a uid-set dict rebinds its set half in the target.

        A target name the body rebinds through ``sorted(...)`` or a
        sorting helper (``laundered``) stays out: its iterations read
        the ordered rebinding, not the unpacked set.
        """
        if not (
            isinstance(node.iter, ast.Call)
            and isinstance(node.iter.func, ast.Attribute)
            and isinstance(node.iter.func.value, ast.Name)
            and node.iter.func.value.id in uid_set_dicts
        ):
            return
        method = node.iter.func.attr
        target = node.target
        if (
            method == "items"
            and isinstance(target, ast.Tuple)
            and len(target.elts) == 2
            and isinstance(target.elts[1], ast.Name)
            and target.elts[1].id not in laundered
        ):
            uid_sets.add(target.elts[1].id)
        elif (
            method == "values"
            and isinstance(target, ast.Name)
            and target.id not in laundered
        ):
            uid_sets.add(target.id)

    # -- the check -------------------------------------------------------

    def _check_iter(
        self,
        module: ModuleContext,
        iterable: ast.AST,
        uid_sets: frozenset[str],
        uid_set_dicts: frozenset[str],
    ) -> Iterator[Finding]:
        target = iterable
        # enumerate(x) iterates x; unwrap one layer
        if (
            isinstance(target, ast.Call)
            and dotted_name(target.func) == "enumerate"
            and target.args
        ):
            target = target.args[0]
        if self._is_uid_set(target, uid_sets, uid_set_dicts):
            yield module.finding(
                self,
                iterable,
                "iterating a set of message uids walks it in hash order, "
                "so verdict details change across interpreter runs; "
                "iterate sorted(...) (verdicts are diffed byte-for-byte)",
            )

    @staticmethod
    def _is_uid_set(
        node: ast.AST,
        uid_sets: frozenset[str],
        uid_set_dicts: frozenset[str],
    ) -> bool:
        if isinstance(node, ast.Name):
            return node.id in uid_sets
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id in uid_set_dicts
        ):
            # ``per_sender[k]`` — one of the dict's set values
            return True
        if _is_set_expression(node) and _mentions_uid(node):
            return True
        return False

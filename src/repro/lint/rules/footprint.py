"""REP007/REP008 — handler effects must stay statically inferable.

The effect-summary analyzer (:mod:`repro.statics.analyzer`) infers, per
step handler, a conservative footprint of what the handler may touch.
Three downstream consumers stand on that inference being *closed*: the
simulator's footprint sanitizer, the explorer's proven-commutation
table for crash schedules, and the golden summary snapshots.  An
algorithm whose handlers defeat the analyzer silently loses all three —
so the two failure categories the analyzer reports become lint
findings:

* **REP007** (``race``) — a handler reaches state *outside* its own
  instance fields: a ``global``/``nonlocal`` mutation, a write to an
  unbound (module-level) name, or a class-level mutable attribute
  shared by every process instance.  Pid-disjoint events of such an
  algorithm do not commute, which breaks the isolation assumption every
  consumer relies on: a static race.
* **REP008** (``opaque``) — a handler hides effects from inference: a
  call into an unresolvable helper, dynamic attribute access
  (``getattr``/``setattr``/``vars``), or an unrecognized yielded
  effect.  The summary is *open*: nothing downstream may trust it.

Both rules run the same analysis; they differ only in which open-reason
category they surface, so a file can suppress one without the other.
"""

from __future__ import annotations

from typing import Iterator

from ...statics.analyzer import summarize_module
from ...statics.model import OPAQUE, RACE
from ..findings import Finding
from .base import ModuleContext, Rule

__all__ = ["StaticRaceRule", "SummaryClosureRule"]

#: Directory names holding process-class algorithm implementations.
_ALGORITHM_DIRS = frozenset(
    {"agreement", "apps", "broadcasts", "registers"}
)


def _category_findings(
    rule: Rule, module: ModuleContext, category: str
) -> Iterator[Finding]:
    """Findings for every open reason of ``category`` in the module."""
    for summary in summarize_module(module.tree):
        for handler_name, reason in summary.open_reasons():
            if reason.category != category:
                continue
            yield Finding(
                path=str(module.path),
                line=reason.line,
                col=reason.col + 1,
                rule=rule.id,
                message=(
                    f"{summary.qualname}.{handler_name}: {reason.message}"
                ),
            )


class StaticRaceRule(Rule):
    """Flag handlers that reach state outside their own instance."""

    id = "REP007"
    summary = (
        "step handlers must touch only their own instance state; "
        "global/class-level mutation is a static race that voids the "
        "explorer's commutation proofs"
    )
    scope = _ALGORITHM_DIRS

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        yield from _category_findings(self, module, RACE)


class SummaryClosureRule(Rule):
    """Flag constructs that defeat effect-summary inference."""

    id = "REP008"
    summary = (
        "step handlers must keep their effects statically inferable; "
        "dynamic access and unresolvable calls leave the summary open "
        "(unusable by the sanitizer and the explorer)"
    )
    scope = _ALGORITHM_DIRS

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        yield from _category_findings(self, module, OPAQUE)

"""REP005 — checkers must not swallow their own evidence.

The modules under ``core/`` and ``adversary/`` are the proof-carrying
part of the repo: spec checkers, lemma verifiers, the adversarial
scheduler.  A violated invariant there is a *result* (it falsifies a
lemma or certifies a broken candidate algorithm) and must propagate.
Three patterns quietly destroy that evidence:

* bare ``except:`` (catches everything including ``AssertionError``
  and ``KeyboardInterrupt``);
* ``except AssertionError`` without re-raising (a checker caught its
  own verdict and discarded it);
* broad ``except Exception``/``BaseException`` whose body is only
  ``pass`` — failure silently becomes success.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .base import ModuleContext, Rule, dotted_name

__all__ = ["SwallowedFailureRule"]

_BROAD = frozenset({"Exception", "BaseException"})


def _handler_names(handler: ast.ExceptHandler) -> frozenset[str]:
    """Leaf exception names a handler catches (empty for bare except)."""
    node = handler.type
    if node is None:
        return frozenset()
    nodes = node.elts if isinstance(node, ast.Tuple) else [node]
    names = set()
    for item in nodes:
        name = dotted_name(item)
        if name is not None:
            names.add(name.split(".")[-1])
    return frozenset(names)


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise) for node in ast.walk(handler))


def _body_is_noop(handler: ast.ExceptHandler) -> bool:
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Constant
        ):
            continue  # docstring or Ellipsis
        return False
    return True


class SwallowedFailureRule(Rule):
    """Flag exception handling that hides checker verdicts."""

    id = "REP005"
    summary = (
        "no bare except and no swallowed AssertionError in core/ and "
        "adversary/ checkers; a violated invariant is a result"
    )
    scope = frozenset({"core", "adversary"})

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            names = _handler_names(node)
            if node.type is None:
                yield module.finding(
                    self,
                    node,
                    "bare except: catches AssertionError and "
                    "KeyboardInterrupt alike; name the exceptions this "
                    "checker actually expects",
                )
            elif "AssertionError" in names and not _reraises(node):
                yield module.finding(
                    self,
                    node,
                    "except AssertionError without re-raise: the checker "
                    "caught its own verdict and discarded it; let the "
                    "assertion propagate (it falsifies a lemma)",
                )
            elif names & _BROAD and _body_is_noop(node):
                yield module.finding(
                    self,
                    node,
                    f"except {'/'.join(sorted(names & _BROAD))} with an "
                    f"empty body silently converts failure into success",
                )

"""REP002 — algorithms interact with the world only through effects.

The step-machine contract (:mod:`repro.runtime.effects`) is what lets
the same algorithm run unchanged under the free simulator and under
Algorithm 1's adversarial scheduler: a :class:`BroadcastProcess` *yields*
``Send``/``Propose``/``Deliver``/``Wait`` effects and the driver turns
each into exactly one step of the execution.  An algorithm that reaches
around that contract — driving a ``ProcessRuntime`` directly, building
its own ``Network`` or ``KsaRegistry``, or mutating state it does not own
— produces steps the trace never records, which invalidates both the
compositionality argument (Def. 2) and the adversary's step accounting
(Algorithm 1, line 8).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .base import (
    ModuleContext,
    Rule,
    attribute_root,
    dotted_name,
    is_process_class,
)

__all__ = ["EffectDisciplineRule"]

#: Driver-side methods of ProcessRuntime; calling them from algorithm
#: code means the algorithm is scheduling itself.
_DRIVER_ONLY_METHODS = frozenset(
    {
        "inject_receive",
        "resume_decide",
        "start_broadcast",
        "next_step",
        "mint_p2p",
        "has_enabled_step",
    }
)

#: Runtime machinery an algorithm must never construct for itself.
_RUNTIME_MACHINERY = frozenset(
    {"Network", "KsaRegistry", "TraceRecorder", "Simulator", "ProcessRuntime"}
)

#: Runtime-internal modules that broadcast algorithm modules must not
#: import; the effect vocabulary and the process base class are the
#: entire sanctioned surface.
_FORBIDDEN_IMPORT_SUFFIXES = (
    "runtime.network",
    "runtime.simulator",
    "runtime.trace",
    "runtime.ksa_objects",
)


class EffectDisciplineRule(Rule):
    """Flag algorithm code that bypasses the runtime.effects API."""

    id = "REP002"
    summary = (
        "broadcast/agreement algorithms touch the network and k-SA "
        "objects only by yielding runtime.effects; no driver calls, "
        "runtime construction, or non-self mutation"
    )
    scope = frozenset({"broadcasts", "agreement"})

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if "broadcasts" in module.path.parts:
            yield from self._check_imports(module)
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef) and is_process_class(node):
                yield from self._check_class(module, node)

    # -- module level ----------------------------------------------------

    def _check_imports(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module is not None:
                if node.module.endswith(_FORBIDDEN_IMPORT_SUFFIXES):
                    yield module.finding(
                        self,
                        node,
                        f"broadcast modules must not import "
                        f"{node.module.split('.')[-1]!r}; algorithms reach "
                        f"the network only through runtime.effects",
                    )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.endswith(_FORBIDDEN_IMPORT_SUFFIXES):
                        yield module.finding(
                            self,
                            node,
                            f"broadcast modules must not import "
                            f"{alias.name!r}; algorithms reach the network "
                            f"only through runtime.effects",
                        )

    # -- class level -----------------------------------------------------

    def _check_class(
        self, module: ModuleContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        for node in ast.walk(cls):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_method_mutations(module, node)

    def _check_call(
        self, module: ModuleContext, node: ast.Call
    ) -> Iterator[Finding]:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _DRIVER_ONLY_METHODS
        ):
            yield module.finding(
                self,
                node,
                f".{node.func.attr}() is a driver-side runtime call; "
                f"algorithms describe steps by yielding effects "
                f"(Algorithm 1, line 8)",
            )
        name = dotted_name(node.func)
        if name is not None and name.split(".")[-1] in _RUNTIME_MACHINERY:
            yield module.finding(
                self,
                node,
                f"algorithm code constructs runtime machinery "
                f"({name.split('.')[-1]}); the driver owns the network, "
                f"oracles and trace",
            )

    def _check_method_mutations(
        self,
        module: ModuleContext,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Finding]:
        """Flag attribute mutation of objects handed in from outside.

        Writing ``self.x = ...`` — or mutating a local derived from
        ``self`` (e.g. ``state = self._state(i); state.promised = b``) —
        is the algorithm updating its own state: fine.  Writing
        ``message.x = ...`` or ``runtime.x = ...`` where the name is a
        *parameter* mutates an object the driver or another process
        owns: cross-process shared memory CAMP_n does not have.
        """
        params = {
            arg.arg
            for arg in (
                method.args.posonlyargs
                + method.args.args
                + method.args.kwonlyargs
            )
            if arg.arg != "self"
        }
        if method.args.vararg is not None:
            params.add(method.args.vararg.arg)
        if method.args.kwarg is not None:
            params.add(method.args.kwarg.arg)
        for node in ast.walk(method):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
            elif isinstance(node, ast.Delete):
                targets = node.targets
            else:
                continue
            for target in targets:
                if not isinstance(target, (ast.Attribute, ast.Subscript)):
                    continue
                root = attribute_root(target)
                if (
                    root is not None
                    and root.id in params
                    and isinstance(target, ast.Attribute)
                ):
                    yield module.finding(
                        self,
                        target,
                        f"mutation of {ast.unparse(target)!r}: "
                        f"{root.id!r} is a parameter the process does "
                        f"not own; algorithms mutate only their own "
                        f"state (no shared memory in CAMP_n)",
                    )

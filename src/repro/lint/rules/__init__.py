"""The rule registry.

Each rule is a class in its own module; :data:`ALL_RULES` is the ordered
catalog the engine and the CLI's ``--list-rules`` both consume.  Adding a
rule means adding a module here and an entry to the docs rule catalog
(``docs/static_analysis.md``) — the self-documentation test in
``tests/lint`` cross-checks the two.
"""

from __future__ import annotations

from .base import ModuleContext, Rule
from .determinism import DeterminismRule
from .effects import EffectDisciplineRule
from .footprint import StaticRaceRule, SummaryClosureRule
from .hygiene import SwallowedFailureRule
from .neutrality import ContentNeutralityRule
from .ordering import UidOrderingRule
from .state import MutableStateRule

__all__ = [
    "ALL_RULES",
    "ModuleContext",
    "Rule",
    "DeterminismRule",
    "EffectDisciplineRule",
    "ContentNeutralityRule",
    "MutableStateRule",
    "StaticRaceRule",
    "SummaryClosureRule",
    "SwallowedFailureRule",
    "UidOrderingRule",
    "default_rules",
]

#: Every shipped rule, in id order.
ALL_RULES: tuple[type[Rule], ...] = (
    DeterminismRule,
    EffectDisciplineRule,
    ContentNeutralityRule,
    MutableStateRule,
    SwallowedFailureRule,
    UidOrderingRule,
    StaticRaceRule,
    SummaryClosureRule,
)


def default_rules() -> list[Rule]:
    """Fresh instances of every shipped rule."""
    return [rule() for rule in ALL_RULES]

"""REP004 — process state must be per-instance, never aliased.

Every process in CAMP_n owns its local state outright; the only channels
between processes are messages.  Two Python footguns silently violate
that model by aliasing one object across calls or across *all* process
instances:

* mutable default arguments (one list/dict/set shared by every call);
* mutable class-level attributes on process classes (one object shared
  by every process in the system — shared memory by accident).

Either turns independent runs into coupled ones, which breaks replay and
the per-process step accounting the lemma verifiers rely on.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .base import ModuleContext, Rule, dotted_name, is_process_class

__all__ = ["MutableStateRule"]

#: Constructors producing fresh mutable containers.
_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "deque", "defaultdict", "OrderedDict", "Counter"}
)

_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)


def _is_mutable_value(node: ast.AST) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name is not None and name.split(".")[-1] in _MUTABLE_CALLS
    return False


class MutableStateRule(Rule):
    """Flag mutable defaults and class-level mutable process state."""

    id = "REP004"
    summary = (
        "no mutable default arguments; no mutable class-level "
        "attributes on process classes (aliased cross-process state)"
    )
    scope = None  # everywhere: this is plain Python hygiene

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_defaults(module, node)
            elif isinstance(node, ast.ClassDef) and is_process_class(node):
                yield from self._check_class_attributes(module, node)

    def _check_defaults(
        self,
        module: ModuleContext,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Finding]:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_value(default):
                yield module.finding(
                    self,
                    default,
                    f"mutable default argument in {node.name}(): one "
                    f"object is shared across every call; default to None "
                    f"and allocate inside the body",
                )

    def _check_class_attributes(
        self, module: ModuleContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        for stmt in cls.body:
            value: ast.AST | None = None
            if isinstance(stmt, ast.Assign):
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                value = stmt.value
            if value is not None and _is_mutable_value(value):
                yield module.finding(
                    self,
                    stmt,
                    f"class-level mutable on process class {cls.name}: "
                    f"every process instance aliases one object — shared "
                    f"memory the message-passing model forbids; move it "
                    f"into __init__",
                )

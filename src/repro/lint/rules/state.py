"""REP004 — process state must be per-instance, never aliased.

Every process in CAMP_n owns its local state outright; the only channels
between processes are messages.  Two Python footguns silently violate
that model by aliasing one object across calls or across *all* process
instances:

* mutable default arguments (one list/dict/set shared by every call);
* mutable class-level attributes on process classes (one object shared
  by every process in the system — shared memory by accident);
* stateful iterators (``itertools.count()``, ``itertools.cycle(...)``)
  bound at class or module level: one shared cursor advances across
  every call site, so two identically-seeded runs in the same process
  observe different values — the irreproducibility that bit
  ``sample_renamings`` before its fresh-token counter was scoped per
  call.  Instance-level iterators (``self._ids = itertools.count()`` in
  ``__init__``) are per-object state and are fine.

Any of these turns independent runs into coupled ones, which breaks
replay and the per-process step accounting the lemma verifiers rely on.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .base import ModuleContext, Rule, dotted_name, is_process_class

__all__ = ["MutableStateRule"]

#: Constructors producing fresh mutable containers.
_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "deque", "defaultdict", "OrderedDict", "Counter"}
)

_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)

#: Constructors producing stateful iterators: a shared binding is a
#: shared cursor, silently coupling every call site that draws from it.
_STATEFUL_ITERATOR_CALLS = frozenset({"count", "cycle"})


def _is_stateful_iterator(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = dotted_name(node.func)
    return name is not None and name.split(".")[-1] in _STATEFUL_ITERATOR_CALLS


def _is_mutable_value(node: ast.AST) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name is not None and name.split(".")[-1] in _MUTABLE_CALLS
    return False


class MutableStateRule(Rule):
    """Flag mutable defaults and class-level mutable process state."""

    id = "REP004"
    summary = (
        "no mutable default arguments; no mutable class-level "
        "attributes on process classes (aliased cross-process state); "
        "no class- or module-level stateful iterators (shared cursors)"
    )
    scope = None  # everywhere: this is plain Python hygiene

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        yield from self._check_module_iterators(module)
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_defaults(module, node)
            elif isinstance(node, ast.ClassDef):
                yield from self._check_class_iterators(module, node)
                if is_process_class(node):
                    yield from self._check_class_attributes(module, node)

    def _check_defaults(
        self,
        module: ModuleContext,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Finding]:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_value(default):
                yield module.finding(
                    self,
                    default,
                    f"mutable default argument in {node.name}(): one "
                    f"object is shared across every call; default to None "
                    f"and allocate inside the body",
                )

    @staticmethod
    def _assigned_value(stmt: ast.stmt) -> ast.AST | None:
        if isinstance(stmt, ast.Assign):
            return stmt.value
        if isinstance(stmt, ast.AnnAssign):
            return stmt.value
        return None

    def _check_module_iterators(
        self, module: ModuleContext
    ) -> Iterator[Finding]:
        for stmt in module.tree.body:
            value = self._assigned_value(stmt)
            if value is not None and _is_stateful_iterator(value):
                yield module.finding(
                    self,
                    stmt,
                    "module-level stateful iterator: one shared cursor "
                    "advances across every call site, so identically-"
                    "seeded runs diverge; create the iterator inside the "
                    "function or object that consumes it",
                )

    def _check_class_iterators(
        self, module: ModuleContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        for stmt in cls.body:
            value = self._assigned_value(stmt)
            if value is not None and _is_stateful_iterator(value):
                yield module.finding(
                    self,
                    stmt,
                    f"class-level stateful iterator on {cls.name}: one "
                    f"shared cursor advances across every instance and "
                    f"call, so identically-seeded runs diverge; mint it "
                    f"per call or per instance (in __init__)",
                )

    def _check_class_attributes(
        self, module: ModuleContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        for stmt in cls.body:
            value = self._assigned_value(stmt)
            if value is not None and _is_mutable_value(value):
                yield module.finding(
                    self,
                    stmt,
                    f"class-level mutable on process class {cls.name}: "
                    f"every process instance aliases one object — shared "
                    f"memory the message-passing model forbids; move it "
                    f"into __init__",
                )

"""REP001 — scheduling code must be replayable (determinism).

Execution replay is load-bearing for the whole reproduction: the guided
runs of the explorer, the adversarial execution α of Definition 4 and the
admissibility lemmas all assume that re-running a schedule from the same
seed reproduces the same step sequence.  Four things silently break that
inside ``runtime/`` and ``adversary/``:

* module-level ``random.*`` calls (process-global, unseedable state);
* ``random.Random()`` constructed without an explicit seed;
* wall-clock reads (``time.time``, ``datetime.now``, …);
* orderings derived from ``id()`` or from bare ``set`` iteration, both of
  which vary across interpreter runs (hash randomization, allocation
  order) and therefore across replays.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .base import ModuleContext, Rule, dotted_name

__all__ = ["DeterminismRule"]

#: ``random.<fn>`` calls that consume the shared module-level generator.
_MODULE_RANDOM = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "getrandbits",
        "betavariate",
        "gauss",
        "seed",
    }
)

#: Dotted call targets that read the wall clock.
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "date.today",
    }
)

#: Annotations marking a name as holding an unordered set.
_SET_ANNOTATIONS = ("set", "Set", "frozenset", "FrozenSet")


class DeterminismRule(Rule):
    """Flag nondeterminism in scheduling code (breaks execution replay)."""

    id = "REP001"
    summary = (
        "scheduling code must be deterministic: no unseeded randomness, "
        "wall-clock reads, id()-based ordering, or bare set iteration"
    )
    scope = frozenset({"runtime", "adversary"})

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node)
            elif isinstance(node, ast.For):
                yield from self._check_iteration(
                    module, node.iter, self._set_names_around(module, node)
                )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                names = self._set_names_around(module, node)
                for generator in node.generators:
                    yield from self._check_iteration(
                        module, generator.iter, names
                    )

    # -- calls -----------------------------------------------------------

    def _check_call(
        self, module: ModuleContext, node: ast.Call
    ) -> Iterator[Finding]:
        target = dotted_name(node.func)
        if target is not None:
            if target.startswith("random.") and target.split(".")[1] in _MODULE_RANDOM:
                yield module.finding(
                    self,
                    node,
                    f"call to module-level {target}() uses the process-global "
                    f"generator; draw from an explicitly seeded "
                    f"random.Random instead (replay, Def. 4)",
                )
            elif target == "random.Random" and not node.args and not node.keywords:
                yield module.finding(
                    self,
                    node,
                    "random.Random() without an explicit seed is "
                    "nondeterministic across runs; thread the seed from "
                    "configuration (replay, Def. 4)",
                )
            elif target in _WALL_CLOCK:
                yield module.finding(
                    self,
                    node,
                    f"{target}() reads the wall clock; scheduling decisions "
                    f"must depend only on the execution state (replay, Def. 4)",
                )
        for keyword in node.keywords:
            if keyword.arg == "key" and self._is_id_key(keyword.value):
                yield module.finding(
                    self,
                    keyword.value,
                    "ordering by id() depends on memory layout and varies "
                    "across interpreter runs; order by a stable field "
                    "(pid, uid, sequence number) instead",
                )

    @staticmethod
    def _is_id_key(node: ast.AST) -> bool:
        if isinstance(node, ast.Name) and node.id == "id":
            return True
        if isinstance(node, ast.Lambda):
            return any(
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Name)
                and inner.func.id == "id"
                for inner in ast.walk(node.body)
            )
        return False

    # -- set iteration ---------------------------------------------------

    def _check_iteration(
        self,
        module: ModuleContext,
        iterable: ast.AST,
        set_names: frozenset[str],
    ) -> Iterator[Finding]:
        if self._is_set_expression(iterable, set_names):
            yield module.finding(
                self,
                iterable,
                "iteration over a set has no stable order under hash "
                "randomization; iterate sorted(...) so schedules replay "
                "(Def. 4 / admissibility lemmas)",
            )

    @staticmethod
    def _is_set_expression(node: ast.AST, set_names: frozenset[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name == "set":
                return True
            # set-producing methods: a.intersection(b), a.union(b), ...
            if isinstance(node.func, ast.Attribute) and node.func.attr in (
                "intersection",
                "union",
                "difference",
                "symmetric_difference",
            ):
                root = node.func.value
                return DeterminismRule._is_set_expression(root, set_names)
            return False
        if isinstance(node, ast.Name):
            return node.id in set_names
        return False

    def _set_names_around(
        self, module: ModuleContext, node: ast.AST
    ) -> frozenset[str]:
        """Names bound to set values in the function enclosing ``node``.

        A deliberately local inference: a name counts as a set while its
        *last* assignment in the enclosing function (or module) binds a
        set display, ``set(...)`` call, set comprehension, or carries a
        ``set[...]`` annotation; wrapping the iteration in ``sorted``/
        ``tuple``/``list`` launders it back to ordered.
        """
        enclosing = self._enclosing_function(module.tree, node)
        names: set[str] = set()
        for stmt in ast.walk(enclosing):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    if self._is_set_expression(stmt.value, frozenset()):
                        names.add(target.id)
                    else:
                        names.discard(target.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                if self._is_set_annotation(stmt.annotation):
                    names.add(stmt.target.id)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for arg in (
                    stmt.args.posonlyargs + stmt.args.args + stmt.args.kwonlyargs
                ):
                    if arg.annotation is not None and self._is_set_annotation(
                        arg.annotation
                    ):
                        names.add(arg.arg)
        return frozenset(names)

    @staticmethod
    def _is_set_annotation(annotation: ast.AST) -> bool:
        text = ast.unparse(annotation)
        base = text.split("[", 1)[0].strip()
        return base in _SET_ANNOTATIONS

    @staticmethod
    def _enclosing_function(tree: ast.Module, node: ast.AST) -> ast.AST:
        """The innermost function containing ``node``, or the module."""
        best: ast.AST = tree
        target_line = getattr(node, "lineno", 0)
        for candidate in ast.walk(tree):
            if isinstance(candidate, (ast.FunctionDef, ast.AsyncFunctionDef)):
                end = getattr(candidate, "end_lineno", candidate.lineno)
                if candidate.lineno <= target_line <= end:
                    if (
                        not isinstance(best, ast.Module)
                        and candidate.lineno < best.lineno  # type: ignore[attr-defined]
                    ):
                        continue
                    best = candidate
        return best

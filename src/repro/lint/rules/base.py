"""Rule infrastructure: what a lint rule is and what it gets to see.

A rule is a small AST visitor with an id, a one-line summary naming the
paper property it protects, and a *scope* — the set of package directory
names it applies to (``None`` means every file).  Scoping is by path
part, so ``src/repro/runtime/simulator.py`` and a test fixture under
``tests/lint/fixtures/runtime/`` are both in scope for a
``{"runtime"}``-scoped rule: fixtures exercise rules by living in the
directory shape the rule watches.
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from ..findings import Finding

__all__ = [
    "ModuleContext",
    "Rule",
    "attribute_root",
    "dotted_name",
    "is_process_class",
]


@dataclass(frozen=True)
class ModuleContext:
    """One parsed module, as handed to every applicable rule."""

    path: Path
    tree: ast.Module
    source: str

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            path=str(self.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule.id,
            message=message,
        )


class Rule(ABC):
    """One statically checkable hygiene property."""

    #: Stable identifier, e.g. ``"REP001"``.
    id: str
    #: One-line summary shown by ``--list-rules`` and the docs.
    summary: str
    #: Directory names this rule applies to; ``None`` applies everywhere.
    scope: frozenset[str] | None = None

    def applies_to(self, path: Path) -> bool:
        """True when ``path`` is inside one of the rule's scope dirs.

        Test code is exempt from scoped rules — ``tests/specs/`` asserts
        *about* contents, it is not a delivery predicate — except for
        lint fixtures (``fixtures/`` directories), which exist precisely
        to exercise the scoped rules.
        """
        if self.scope is None:
            return True
        parts = path.parts
        if "tests" in parts and "fixtures" not in parts:
            return False
        return bool(self.scope.intersection(parts))

    @abstractmethod
    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Yield every violation in ``module``."""


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def attribute_root(node: ast.AST) -> ast.Name | None:
    """The base ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node if isinstance(node, ast.Name) else None


#: Base-class name suffixes marking "per-process algorithm state" classes
#: (``BroadcastProcess`` and its subclasses, ``ServiceProcess`` clients…).
_PROCESS_BASE_SUFFIXES = ("Process", "Broadcast", "Client")


def is_process_class(node: ast.ClassDef) -> bool:
    """Heuristic: does this class hold per-process algorithm state?"""
    for base in node.bases:
        name = dotted_name(base)
        if name is not None and name.endswith(_PROCESS_BASE_SUFFIXES):
            return True
    return False

"""The finding data model: one rule violation at one source location.

A :class:`Finding` is deliberately flat and JSON-friendly — the reporters
(:mod:`repro.lint.reporters`) serialize it without translation, and tests
assert on its fields directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["Finding", "PARSE_ERROR_ID"]

#: Pseudo-rule id attached to files that do not parse.  Always enabled:
#: a file the analyzer cannot read is a file whose invariants nobody is
#: checking.
PARSE_ERROR_ID = "REP000"


@dataclass(frozen=True, order=True)
class Finding:
    """One violation: ``path:line:col: rule message``."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    #: True when an in-source suppression comment covers the finding.
    #: Suppressed findings are dropped by default; an engine built with
    #: ``keep_suppressed=True`` reports them flagged instead (the CLI's
    #: ``--show-suppressed``), and they never affect the exit status.
    suppressed: bool = False

    def render(self) -> str:
        """The conventional one-line ``path:line:col: RULE message`` form."""
        tail = " (suppressed)" if self.suppressed else ""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.message}{tail}"
        )

    def to_jsonable(self) -> dict[str, Any]:
        """The finding as plain JSON-compatible data."""
        record = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }
        if self.suppressed:
            record["suppressed"] = True
        return record

"""repro.lint — static enforcement of the repo's proof-critical hygiene.

The paper's argument leans on three properties the code silently assumed
until now: executions must *replay* (the adversarial schedule of
Definition 4 and the guided explorer runs are only meaningful if
re-running is deterministic), algorithms must act only through the
*effect vocabulary* (so the trace records every step Algorithm 1
accounts for), and delivery predicates must be *content-neutral*
(Definition 3).  This package machine-checks static proxies for those
properties, plus two general hygiene rules, across the source tree:

=======  ==========================================================
REP001   determinism in ``runtime/`` and ``adversary/`` scheduling
REP002   effect discipline in ``broadcasts/`` and ``agreement/``
REP003   content-neutrality of predicates in ``specs/``
REP004   no mutable defaults / class-level mutable process state
REP005   no swallowed failures in ``core/`` and ``adversary/``
=======  ==========================================================

Run it as ``python -m repro.lint [paths]``; see
``docs/static_analysis.md`` for the rule catalog, the paper definition
each rule protects, and the suppression syntax.  The repo lints itself
clean as a test tier (``tests/lint/test_self_lint.py``).
"""

from __future__ import annotations

from .engine import LintEngine, run_lint
from .findings import PARSE_ERROR_ID, Finding
from .reporters import render_json, render_text
from .rules import ALL_RULES, Rule
from .suppress import SuppressionIndex

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintEngine",
    "PARSE_ERROR_ID",
    "Rule",
    "SuppressionIndex",
    "render_json",
    "render_text",
    "run_lint",
]

"""The lint engine: path discovery, parsing, dispatch, suppression.

One :class:`LintEngine` holds a rule set plus select/ignore filters; its
:meth:`LintEngine.lint_paths` walks files and directories, parses each
Python file once, hands the tree to every rule whose scope matches the
path, and filters the findings through the file's suppression comments.

Directory walks skip ``fixtures`` directories (they contain intentional
violations for the rule tests) and build artifacts; a file passed
*explicitly* is always linted, which is how the tests lint the fixtures.
"""

from __future__ import annotations

import ast
from dataclasses import replace
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from .findings import PARSE_ERROR_ID, Finding
from .rules import Rule, default_rules
from .rules.base import ModuleContext
from .suppress import SuppressionIndex

__all__ = ["LintEngine", "run_lint", "iter_python_files"]

#: Directory names never descended into during discovery.
DEFAULT_EXCLUDED_DIRS = frozenset(
    {
        ".git",
        "__pycache__",
        ".mypy_cache",
        ".pytest_cache",
        ".hypothesis",
        "fixtures",
        "build",
        "dist",
        ".venv",
        "venv",
    }
)


def iter_python_files(
    paths: Sequence[Path | str],
    *,
    excluded_dirs: frozenset[str] = DEFAULT_EXCLUDED_DIRS,
) -> Iterator[Path]:
    """Yield every Python file under ``paths``, deterministically ordered.

    Explicit file paths are yielded unconditionally; directories are
    walked recursively, skipping ``excluded_dirs`` and ``*.egg-info``
    trees.  Order is sorted so reports and exit codes are reproducible —
    the linter holds itself to REP001.
    """
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path not in seen:
                seen.add(path)
                yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            parts = candidate.relative_to(path).parts
            if any(
                part in excluded_dirs or part.endswith(".egg-info")
                for part in parts[:-1]
            ):
                continue
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


class LintEngine:
    """Runs a rule set over files, applying suppressions and filters."""

    def __init__(
        self,
        rules: Iterable[Rule] | None = None,
        *,
        select: Iterable[str] | None = None,
        ignore: Iterable[str] | None = None,
        excluded_dirs: frozenset[str] = DEFAULT_EXCLUDED_DIRS,
        keep_suppressed: bool = False,
    ) -> None:
        self.rules = list(rules) if rules is not None else default_rules()
        self.select = frozenset(select) if select is not None else None
        self.ignore = frozenset(ignore or ())
        self.excluded_dirs = excluded_dirs
        #: Report suppressed findings flagged (``Finding.suppressed``)
        #: instead of dropping them; they never affect exit status.
        self.keep_suppressed = keep_suppressed

    def _enabled(self, rule_id: str) -> bool:
        if rule_id == PARSE_ERROR_ID:
            return True
        if self.select is not None and rule_id not in self.select:
            return False
        return rule_id not in self.ignore

    def lint_paths(self, paths: Sequence[Path | str]) -> list[Finding]:
        """Lint every file under ``paths``; findings in stable order."""
        findings: list[Finding] = []
        for path in iter_python_files(
            paths, excluded_dirs=self.excluded_dirs
        ):
            findings.extend(self.lint_file(path))
        return findings

    def lint_file(self, path: Path | str) -> list[Finding]:
        """Lint one file."""
        path = Path(path)
        source = path.read_text(encoding="utf-8")
        return self.lint_source(source, path)

    def lint_source(self, source: str, path: Path | str) -> list[Finding]:
        """Lint ``source`` as though it lived at ``path``.

        The path determines rule scoping, so tests can lint snippets
        under a virtual ``runtime/`` or ``specs/`` location.
        """
        path = Path(path)
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as error:
            return [
                Finding(
                    path=str(path),
                    line=error.lineno or 1,
                    col=(error.offset or 0) + 1,
                    rule=PARSE_ERROR_ID,
                    message=f"file does not parse: {error.msg}",
                )
            ]
        suppressions = SuppressionIndex.from_source(source)
        module = ModuleContext(path=path, tree=tree, source=source)
        findings: list[Finding] = []
        for rule in self.rules:
            if not (self._enabled(rule.id) and rule.applies_to(path)):
                continue
            for finding in rule.check(module):
                if suppressions.is_suppressed(finding.rule, finding.line):
                    if self.keep_suppressed:
                        findings.append(replace(finding, suppressed=True))
                else:
                    findings.append(finding)
        findings.sort()
        return findings


def run_lint(
    paths: Sequence[Path | str],
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Finding]:
    """One-call convenience over :class:`LintEngine`."""
    engine = LintEngine(select=select, ignore=ignore)
    return engine.lint_paths(paths)

"""Per-rule suppression comments.

Three forms, all parsed from comment tokens (so string literals that
merely *mention* the syntax do not suppress anything):

* ``# repro-lint: disable=REP003`` — suppress on this line;
* ``# repro-lint: disable-next-line=REP001,REP004`` — suppress on the
  following line;
* ``# repro-lint: disable-file=REP002`` — suppress everywhere in the file.

Rule ids are comma-separated; the word ``all`` suppresses every rule.
Anything after the id list (e.g. ``-- content-sensitive by design``) is a
free-form rationale and is ignored by the parser — but do write one: a
suppression without a reason is the convention the linter exists to
replace.
"""

from __future__ import annotations

import io
import re
import tokenize

__all__ = ["SuppressionIndex"]

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*"
    r"(?P<kind>disable-next-line|disable-file|disable)\s*=\s*"
    r"(?P<ids>all|[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)"
)

#: Sentinel id meaning "every rule".
_ALL = "all"


class SuppressionIndex:
    """Which rule ids are suppressed on which lines of one file."""

    def __init__(self) -> None:
        self._by_line: dict[int, set[str]] = {}
        self._file_wide: set[str] = set()

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        """Parse every suppression directive out of ``source``.

        Tolerates files that do not tokenize (the engine reports those as
        parse errors separately); directives seen before the failure still
        apply.
        """
        index = cls()
        reader = io.StringIO(source).readline
        try:
            for token in tokenize.generate_tokens(reader):
                if token.type != tokenize.COMMENT:
                    continue
                match = _DIRECTIVE.search(token.string)
                if match is None:
                    continue
                ids = {
                    part.strip()
                    for part in match.group("ids").split(",")
                }
                kind = match.group("kind")
                if kind == "disable-file":
                    index._file_wide |= ids
                elif kind == "disable-next-line":
                    index._add(token.start[0] + 1, ids)
                else:
                    index._add(token.start[0], ids)
        except (tokenize.TokenError, IndentationError):
            pass
        return index

    def _add(self, line: int, ids: set[str]) -> None:
        self._by_line.setdefault(line, set()).update(ids)

    def is_suppressed(self, rule: str, line: int) -> bool:
        """True when ``rule`` is disabled on ``line`` (or file-wide)."""
        for ids in (self._file_wide, self._by_line.get(line, ())):
            if _ALL in ids or rule in ids:
                return True
        return False

"""Reporters: findings to human text or machine JSON.

Both forms are pure functions from a finding list to a string, so the
CLI, tests and CI consume the same code path.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Sequence

from .findings import Finding

__all__ = ["render_text", "render_json"]


def render_text(findings: Sequence[Finding]) -> str:
    """``path:line:col: RULE message`` lines plus a per-rule summary."""
    if not findings:
        return "repro.lint: clean (0 findings)"
    lines = [finding.render() for finding in findings]
    counts = Counter(finding.rule for finding in findings)
    summary = ", ".join(
        f"{rule} x{count}" for rule, count in sorted(counts.items())
    )
    lines.append(
        f"repro.lint: {len(findings)} finding(s) ({summary})"
    )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """A stable JSON document: version, counts, and finding records."""
    counts = Counter(finding.rule for finding in findings)
    document = {
        "version": 1,
        "count": len(findings),
        "counts_by_rule": dict(sorted(counts.items())),
        "findings": [finding.to_jsonable() for finding in findings],
    }
    return json.dumps(document, indent=2, sort_keys=False)

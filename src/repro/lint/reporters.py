"""Reporters: findings to human text, machine JSON, or SARIF.

All forms are pure functions from a finding list to a string, so the
CLI, tests and CI consume the same code path.  Suppressed findings
(present only when the engine was built with ``keep_suppressed=True``)
are rendered flagged but never counted as failures.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Sequence

from .findings import PARSE_ERROR_ID, Finding

__all__ = ["render_text", "render_json", "render_sarif"]

#: ``$schema`` for the SARIF output (GitHub code-scanning compatible).
_SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def render_text(findings: Sequence[Finding]) -> str:
    """``path:line:col: RULE message`` lines plus a per-rule summary."""
    if not findings:
        return "repro.lint: clean (0 findings)"
    active = [f for f in findings if not f.suppressed]
    lines = [finding.render() for finding in findings]
    counts = Counter(finding.rule for finding in active)
    summary = ", ".join(
        f"{rule} x{count}" for rule, count in sorted(counts.items())
    )
    tail = f"repro.lint: {len(active)} finding(s)"
    if summary:
        tail += f" ({summary})"
    if len(active) < len(findings):
        tail += f", {len(findings) - len(active)} suppressed"
    lines.append(tail)
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """A stable JSON document: version, counts, and finding records.

    ``count`` and ``counts_by_rule`` cover *active* findings only — they
    drive exit codes and CI gates; suppressed records (if the engine
    kept them) appear in ``findings`` with ``"suppressed": true`` and
    are tallied in ``suppressed_count``.
    """
    active = [f for f in findings if not f.suppressed]
    counts = Counter(finding.rule for finding in active)
    document = {
        "version": 1,
        "count": len(active),
        "suppressed_count": len(findings) - len(active),
        "counts_by_rule": dict(sorted(counts.items())),
        "findings": [finding.to_jsonable() for finding in findings],
    }
    return json.dumps(document, indent=2, sort_keys=False)


def render_sarif(findings: Sequence[Finding]) -> str:
    """A SARIF 2.1.0 log, one run, one result per finding.

    The driver carries the full rule catalog (so viewers can show rule
    summaries for clean runs too); suppressed findings become results
    with an ``inSource`` suppression, which code-scanning UIs display
    as dismissed rather than dropping silently.
    """
    from .rules import ALL_RULES  # local: reporters must stay rule-free

    rules = [
        {
            "id": PARSE_ERROR_ID,
            "shortDescription": {"text": "file does not parse"},
        }
    ]
    rules.extend(
        {"id": rule.id, "shortDescription": {"text": rule.summary}}
        for rule in ALL_RULES
    )
    results = []
    for finding in findings:
        result = {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/")
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
        }
        if finding.suppressed:
            result["suppressions"] = [{"kind": "inSource"}]
        results.append(result)
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {"name": "repro-lint", "rules": rules}
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=False)

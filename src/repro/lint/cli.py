"""The ``python -m repro.lint`` command line.

Usage::

    python -m repro.lint [paths...] [--format text|json|sarif]
                         [--select REP001,REP003] [--ignore REP004]
                         [--show-suppressed] [--list-rules] [--no-config]

Paths default to the ``paths`` key of ``[tool.repro-lint]`` in
``pyproject.toml`` (found by walking up from the current directory),
falling back to ``src``.  Exit status: 0 clean, 1 findings, 2 usage
error.  Suppressed findings never fail the run: a tree whose only
findings carry in-source suppressions exits 0 (``--show-suppressed``
displays them flagged).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Sequence

from .engine import LintEngine
from .reporters import render_json, render_sarif, render_text
from .rules import ALL_RULES

__all__ = ["main", "load_config"]


def load_config(start: Path | None = None) -> dict[str, Any]:
    """The ``[tool.repro-lint]`` table of the nearest ``pyproject.toml``.

    Returns an empty mapping when no file or table exists, or when the
    interpreter lacks :mod:`tomllib` (Python 3.10) — configuration is a
    convenience, never a hard dependency.
    """
    try:
        import tomllib
    except ImportError:  # pragma: no cover - Python 3.10 fallback
        return {}
    directory = (start or Path.cwd()).resolve()
    for candidate in (directory, *directory.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            with pyproject.open("rb") as handle:
                data = tomllib.load(handle)
            table = data.get("tool", {}).get("repro-lint", {})
            return table if isinstance(table, dict) else {}
    return {}


def _split_ids(raw: Sequence[str]) -> list[str]:
    ids: list[str] = []
    for chunk in raw:
        ids.extend(part.strip() for part in chunk.split(",") if part.strip())
    return ids


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based static analysis enforcing the repo's "
            "proof-critical hygiene: determinism, effect discipline, "
            "content-neutrality (see docs/static_analysis.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: config paths, then 'src')",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help=(
            "report findings silenced by in-source suppression comments "
            "(flagged; they never affect the exit status)"
        ),
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="IDS",
        help="comma-separated rule ids to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="ignore [tool.repro-lint] in pyproject.toml",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            scope = (
                ", ".join(sorted(rule.scope)) if rule.scope else "everywhere"
            )
            print(f"{rule.id}  [{scope}]  {rule.summary}")
        return 0

    config = {} if args.no_config else load_config()
    select = _split_ids(args.select) or list(config.get("select", []))
    ignore = _split_ids(args.ignore) or list(config.get("ignore", []))
    known = {rule.id for rule in ALL_RULES}
    unknown = [i for i in (*select, *ignore) if i not in known]
    if unknown:
        # A typo'd --select in CI would otherwise silently disable
        # every rule and report the tree clean.
        print(
            f"error: unknown rule id(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(known))})",
            file=sys.stderr,
        )
        return 2

    paths = args.paths or list(config.get("paths", []))
    if not paths:
        paths = ["src"] if Path("src").is_dir() else ["."]
    missing = [path for path in paths if not Path(path).exists()]
    if missing:
        print(
            f"error: no such path: {', '.join(missing)}", file=sys.stderr
        )
        return 2

    engine = LintEngine(
        select=select or None,
        ignore=ignore or None,
        keep_suppressed=args.show_suppressed,
    )
    findings = engine.lint_paths(paths)
    renderer = {
        "json": render_json,
        "sarif": render_sarif,
        "text": render_text,
    }[args.format]
    try:
        print(renderer(findings))
    except BrokenPipeError:  # e.g. piped into head; exit code still counts
        sys.stderr.close()
    return 1 if any(not f.suppressed for f in findings) else 0

"""Command-line entry point: run the paper's experiments.

Usage::

    python -m repro                 # run every experiment
    python -m repro figure1 [args]  # one experiment
    python -m repro lemmas
    python -m repro theorem
    python -m repro symmetry
    python -m repro registers
    python -m repro boundaries
    python -m repro costs
"""

from __future__ import annotations

import sys

from .experiments import (
    boundaries,
    costs,
    figure1,
    lemma10_grid,
    register_power,
    run_all,
    symmetry_matrix,
    theorem_pipeline,
)

COMMANDS = {
    "figure1": figure1.main,
    "lemmas": lemma10_grid.main,
    "theorem": theorem_pipeline.main,
    "symmetry": symmetry_matrix.main,
    "registers": register_power.main,
    "boundaries": boundaries.main,
    "costs": costs.main,
}


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print(run_all())
        return 0
    command = argv[0]
    if command in ("-h", "--help") or command not in COMMANDS:
        print(__doc__)
        return 0 if command in ("-h", "--help") else 1
    if command == "figure1":
        figure1.main(argv[1:])
    else:
        COMMANDS[command]()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

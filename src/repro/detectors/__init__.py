"""Failure detectors: oracles over the failure pattern.

The paper's bibliography tracks the quest for the weakest failure
detector for k-SA in message passing ([4], [12], [19]); this subpackage
supplies the two classical detectors needed to *solve* agreement in the
library's crash-prone model and the consensus algorithm they enable:

* :class:`~repro.detectors.oracles.OmegaOracle` — Ω, the eventual leader
  oracle (the weakest detector for consensus with a majority);
* :class:`~repro.detectors.oracles.PerfectDetector` — P, never wrong and
  eventually complete;
* :class:`~repro.agreement.paxos.PaxosProcess` (in
  :mod:`repro.agreement`) — single-decree Paxos over Ω + majority.

Detectors are *oracles over the failure pattern*: they read the run's
crash schedule and the current scheduler time (a shared
:class:`~repro.detectors.oracles.Clock` the simulator ticks), never the
algorithm state — matching their formal definition as functions of the
failure pattern only.
"""

from .oracles import Clock, OmegaOracle, PerfectDetector

__all__ = ["Clock", "OmegaOracle", "PerfectDetector"]

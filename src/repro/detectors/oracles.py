"""Failure-detector oracles: Ω and P as functions of the failure pattern.

A failure detector is formally a map from the failure pattern (who
crashes when) and time to per-process outputs.  Here the failure pattern
is the run's :class:`~repro.runtime.crash.CrashSchedule` and time is the
scheduler's step counter, shared through a :class:`Clock` the simulator
ticks — detectors never inspect algorithm state.

* :class:`OmegaOracle` (Ω) — eventual leader election: before its
  stabilization time it may output *any* live process (here: a rotating
  live process, so the system never deadlocks on a dead leader); from
  stabilization on, it outputs the same correct process everywhere,
  forever.  Ω is the weakest failure detector for consensus given a
  majority of correct processes.
* :class:`PerfectDetector` (P) — strong accuracy (never suspects a live
  process) and strong completeness (suspects every crashed process
  immediately; the detection lag is configurable).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..runtime.crash import CrashSchedule

__all__ = ["Clock", "OmegaOracle", "PerfectDetector"]


@dataclass
class Clock:
    """Mutable scheduler time shared between a simulator and oracles."""

    now: int = 0

    def tick(self, to: int) -> None:
        self.now = to


class OmegaOracle:
    """Ω — the eventual leader oracle.

    Parameters
    ----------
    n, crash_schedule:
        The system and its failure pattern.
    clock:
        The scheduler clock (see
        :meth:`repro.registers.simulator.ServiceSimulator`'s ``clock``).
    stabilize_at:
        The (unknown to the algorithms!) time after which the output is
        the least-index correct process, everywhere and forever.
    rotation_period:
        Before stabilization, the output rotates among currently-live
        processes every this many steps — adversarial enough to exercise
        ballot preemption, while never electing a dead leader (which
        could deadlock an event-driven simulation).
    stable_leader:
        The post-stabilization output; defaults to the least-index
        correct process.  Must be correct (Ω's eventual accuracy).
    """

    def __init__(
        self,
        n: int,
        crash_schedule: CrashSchedule,
        clock: Clock,
        *,
        stabilize_at: int = 0,
        rotation_period: int = 7,
        stable_leader: int | None = None,
    ) -> None:
        self.n = n
        self.crash_schedule = crash_schedule
        self.clock = clock
        self.stabilize_at = stabilize_at
        self.rotation_period = max(1, rotation_period)
        if (
            stable_leader is not None
            and stable_leader in crash_schedule.faulty()
        ):
            raise ValueError(
                f"Ω must stabilize to a correct process; p{stable_leader} "
                f"is faulty"
            )
        self.stable_leader = stable_leader

    def _alive(self, at: int) -> list[int]:
        return [
            p
            for p in range(self.n)
            if p not in self.crash_schedule.initially
            and not self.crash_schedule.due(p, at)
        ]

    def _correct(self) -> list[int]:
        return [
            p for p in range(self.n)
            if p not in self.crash_schedule.faulty()
        ]

    def leader(self) -> int:
        """The current output (same value at every process, by design)."""
        now = self.clock.now
        if now >= self.stabilize_at:
            if self.stable_leader is not None:
                return self.stable_leader
            return min(self._correct())
        alive = self._alive(now)
        return alive[(now // self.rotation_period) % len(alive)]


class PerfectDetector:
    """P — never wrong, eventually (after ``lag`` steps) complete."""

    def __init__(
        self,
        n: int,
        crash_schedule: CrashSchedule,
        clock: Clock,
        *,
        lag: int = 0,
    ) -> None:
        self.n = n
        self.crash_schedule = crash_schedule
        self.clock = clock
        self.lag = lag

    def suspected(self) -> frozenset[int]:
        """Processes currently suspected (all of them actually crashed)."""
        now = self.clock.now
        suspects = set(self.crash_schedule.initially)
        for process, deadline in self.crash_schedule.at_step.items():
            if now >= deadline + self.lag:
                suspects.add(process)
        return frozenset(suspects)

    def trusted(self) -> frozenset[int]:
        return frozenset(range(self.n)) - self.suspected()

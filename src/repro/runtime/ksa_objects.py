"""k-set-agreement oracle objects — the ``H`` of ``CAMP_n[k-SA]``.

In the paper's model, k-SA objects are *axiomatic*: processes may use as
many instances as needed, and each instance guarantees k-SA-Validity,
k-SA-Agreement and k-SA-Termination (Section 4.1).  Nothing is said about
*which* of the allowed values an instance decides — that freedom belongs
to the environment, and Algorithm 1 exploits it adversarially
(lines 16–20).

This module provides oracle objects with pluggable decision policies:

* :class:`FirstProposalsPolicy` — the first (up to) k distinct proposals
  become the decidable set; later proposers adopt one of them.  A natural
  "benign" behaviour.
* :class:`OwnValuePolicy` — every proposer decides its own value while
  fewer than k distinct values are decided, then adopts the most recent
  decided value.  This is the maximally-disagreeing legal behaviour, the
  one Algorithm 1's construction relies on.
* :class:`ScriptedPolicy` — decisions dictated per (object, process) by a
  script, for targeted tests.

Decisions are immediate (the decide step directly follows the propose
step).  This is a legal schedule of the axiomatic object and matches
Algorithm 1, which appends the decide step right after the propose step.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Hashable, Mapping

from .fingerprint import stable_digest

__all__ = [
    "DecisionPolicy",
    "FirstProposalsPolicy",
    "OwnValuePolicy",
    "ScriptedPolicy",
    "KsaObject",
    "KsaRegistry",
]


class DecisionPolicy(ABC):
    """Chooses decided values within the k-SA object's legal envelope."""

    #: True when decisions depend on the proposer only through the
    #: *order* of proposals, never on the proposer's identity — the
    #: equivariance the schedule explorer's ``symmetry="rename"``
    #: reduction requires of the oracle environment.  Conservative
    #: default: policies that do not declare it disable the reduction.
    pid_uniform: bool = False

    @abstractmethod
    def decide(
        self,
        ksa: str,
        proposer: int,
        value: Hashable,
        decided_so_far: Mapping[int, Hashable],
        k: int,
    ) -> Hashable:
        """Pick the value ``proposer`` decides on object ``ksa``.

        ``decided_so_far`` maps earlier proposers to their decided values.
        Implementations must preserve validity (return a value already
        proposed — ``value`` or one in ``decided_so_far``) and agreement
        (at most k distinct values including the returned one); the
        enclosing :class:`KsaObject` enforces both defensively.
        """


class FirstProposalsPolicy(DecisionPolicy):
    """The first k distinct proposals win; later proposers adopt the first."""

    pid_uniform = True  # decisions read proposal order, never proposer ids

    def decide(self, ksa, proposer, value, decided_so_far, k):
        distinct = list(dict.fromkeys(decided_so_far.values()))
        if value in distinct or len(distinct) < k:
            return value
        return distinct[0]


class OwnValuePolicy(DecisionPolicy):
    """Maximal disagreement: decide own value while agreement allows it.

    This is the behaviour Algorithm 1 schedules (line 19), with later
    proposers adopting the most recently decided value once k distinct
    values exist (the analogue of line 18).
    """

    pid_uniform = True  # decisions read proposal order, never proposer ids

    def decide(self, ksa, proposer, value, decided_so_far, k):
        distinct = list(dict.fromkeys(decided_so_far.values()))
        if value in distinct or len(distinct) < k:
            return value
        return distinct[-1]


@dataclass
class ScriptedPolicy(DecisionPolicy):
    """Decide according to a script ``{(ksa, proposer): value}``.

    Unscripted proposals fall back to ``fallback`` (own value by default).
    Scripted values must still be legal; :class:`KsaObject` checks.
    """

    script: Mapping[tuple[str, int], Hashable]
    fallback: DecisionPolicy = field(default_factory=OwnValuePolicy)

    def decide(self, ksa, proposer, value, decided_so_far, k):
        if (ksa, proposer) in self.script:
            return self.script[(ksa, proposer)]
        return self.fallback.decide(ksa, proposer, value, decided_so_far, k)


class KsaObject:
    """One k-SA oracle instance enforcing the Section 4.1 properties."""

    def __init__(self, name: str, k: int, policy: DecisionPolicy) -> None:
        self.name = name
        self.k = k
        self.policy = policy
        self.proposals: dict[int, Hashable] = {}
        self.decisions: dict[int, Hashable] = {}

    def propose(self, proposer: int, value: Hashable) -> Hashable:
        """Run ``propose(value)`` by ``proposer``; returns the decision.

        Raises :class:`ValueError` if the one-shot rule or either safety
        property would be violated (a policy bug, not a legal behaviour).
        """
        if proposer in self.proposals:
            raise ValueError(
                f"{self.name}: p{proposer} proposes twice (one-shot object)"
            )
        self.proposals[proposer] = value
        decided = self.policy.decide(
            self.name, proposer, value, dict(self.decisions), self.k
        )
        valid_values = set(self.proposals.values())
        if decided not in valid_values:
            raise ValueError(
                f"{self.name}: policy decided {decided!r}, never proposed"
            )
        distinct_after = set(self.decisions.values()) | {decided}
        if len(distinct_after) > self.k:
            raise ValueError(
                f"{self.name}: policy breaks agreement "
                f"({len(distinct_after)} distinct > k={self.k})"
            )
        self.decisions[proposer] = decided
        return decided

    def fork(self) -> "KsaObject":
        """An independent object with the same proposals and decisions.

        The decision policy is shared: policies are stateless by contract
        (their decisions depend only on the arguments they are given).
        """
        clone = KsaObject(self.name, self.k, self.policy)
        clone.proposals = dict(self.proposals)
        clone.decisions = dict(self.decisions)
        return clone

    def fingerprint(self) -> str:
        """A stable structural digest of this instance's one-shot state.

        Policies are stateless by contract and fixed per exploration, so
        proposals and decisions fully determine future behaviour.
        """
        return stable_digest(
            "ksa", self.name, self.k, self.proposals, self.decisions
        )


class KsaRegistry:
    """Creates and retains k-SA oracle instances on demand, by name."""

    def __init__(self, k: int, policy: DecisionPolicy | None = None) -> None:
        self.k = k
        self.policy = policy or FirstProposalsPolicy()
        self.objects: dict[str, KsaObject] = {}

    def get(self, name: str) -> KsaObject:
        """The instance named ``name`` (created with the registry policy)."""
        if name not in self.objects:
            self.objects[name] = KsaObject(name, self.k, self.policy)
        return self.objects[name]

    def propose(self, name: str, proposer: int, value: Hashable) -> Hashable:
        """Shorthand: propose on the named instance."""
        return self.get(name).propose(proposer, value)

    def fork(self) -> "KsaRegistry":
        """An independent registry with forked copies of every instance."""
        clone = KsaRegistry(self.k, self.policy)
        clone.objects = {
            name: obj.fork() for name, obj in self.objects.items()
        }
        return clone

    def fingerprint(self) -> str:
        """A stable structural digest over every instance, name-sorted."""
        return stable_digest(
            "registry",
            self.k,
            [
                self.objects[name].fingerprint()
                for name in sorted(self.objects)
            ],
        )

"""Service processes: request/response objects over send/receive.

The broadcast step machines of :mod:`repro.runtime.process` expose one
operation (``broadcast``).  Shared-*object* emulations — the pivot of the
paper's §1.3 contrast between shared memory and message passing — need a
more general shape: named operations with arguments and **return
values**, implemented by exchanging point-to-point messages (e.g. the
ABD register emulation in :mod:`repro.registers.abd`).

A :class:`ServiceProcess` implements ``on_invoke`` (the operation body, a
generator over the same effect vocabulary, whose ``return`` value is the
operation's response) and ``on_receive`` (atomic handlers).  A
:class:`ServiceRuntime` drives it step by step with the same determinism
conventions as :class:`~repro.runtime.process.ProcessRuntime`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import Any, Hashable, Iterator

from ..core.actions import PointToPointId
from .effects import Effect, LocalNote, Send, Wait
from .process import Blocked, Idle, LocalStep, ProtocolError, SendStep

__all__ = [
    "ServiceProcess",
    "ServiceRuntime",
    "ResponseStep",
    "Invocation",
]


@dataclass(frozen=True)
class Invocation:
    """One operation invocation: ``operation(*args) on register/object``."""

    operation: str
    target: str
    argument: Hashable = None


@dataclass(frozen=True)
class ResponseStep:
    """The pending invocation returned ``result``."""

    invocation: Invocation
    result: Hashable


class ServiceProcess(ABC):
    """One process of a request/response object emulation."""

    def __init__(self, pid: int, n: int) -> None:
        self.pid = pid
        self.n = n

    @abstractmethod
    def on_invoke(self, invocation: Invocation) -> Iterator[Effect]:
        """The operation body; its ``return`` value is the response."""

    @abstractmethod
    def on_receive(self, payload: Hashable, sender: int) -> Iterator[Effect]:
        """Atomic 'upon receive' handler (must not ``Wait``)."""

    def everyone(self) -> range:
        return range(self.n)

    def others(self) -> Iterator[int]:
        return (p for p in range(self.n) if p != self.pid)

    def send_to_all(self, payload: Hashable) -> Iterator[Effect]:
        for dest in self.everyone():
            yield Send(dest, payload)


class ServiceRuntime:
    """Drives one :class:`ServiceProcess` one step at a time."""

    def __init__(self, algorithm: ServiceProcess) -> None:
        self.algorithm = algorithm
        self.pid = algorithm.pid
        self._p2p_seq: dict[int, int] = {}
        self._handlers: deque[Iterator[Effect]] = deque()
        self._operation: Iterator[Effect] | None = None
        self._invocation: Invocation | None = None
        self._waiting: Wait | None = None

    # -- driver API ------------------------------------------------------

    def invoke(self, invocation: Invocation) -> None:
        """Begin one operation (the previous one must have responded)."""
        if self._operation is not None:
            raise ProtocolError(
                f"p{self.pid}: invocation while an operation is pending"
            )
        self._operation = self.algorithm.on_invoke(invocation)
        self._invocation = invocation
        self._waiting = None

    def inject_receive(self, p2p: PointToPointId, payload: Hashable) -> None:
        if p2p.receiver != self.pid:
            raise ProtocolError(
                f"p{self.pid}: received a message addressed to "
                f"p{p2p.receiver}"
            )
        self._handlers.append(self.algorithm.on_receive(payload, p2p.sender))

    def mint_p2p(self, dest: int) -> PointToPointId:
        seq = self._p2p_seq.get(dest, 0)
        self._p2p_seq[dest] = seq + 1
        return PointToPointId(self.pid, dest, seq)

    @property
    def busy(self) -> bool:
        return self._operation is not None

    @property
    def waiting_reason(self) -> str | None:
        if self._waiting is None:
            return None
        return self._waiting.reason or "operation waiting"

    def has_enabled_step(self) -> bool:
        return self._peek() is None

    def _peek(self):
        if self._handlers:
            return None
        if self._operation is None:
            return Idle()
        if self._waiting is not None and not self._waiting.guard():
            return Blocked(self._waiting.reason or "operation waiting")
        return None

    # -- one local step ----------------------------------------------------

    def next_step(self):
        while True:
            peeked = self._peek()
            if peeked is not None:
                return peeked
            source = (
                self._handlers[0] if self._handlers else self._operation
            )
            assert source is not None
            if source is self._operation:
                self._waiting = None
            try:
                effect = source.send(None)
            except StopIteration as stop:
                if source is self._operation:
                    invocation = self._invocation
                    assert invocation is not None
                    self._operation = None
                    self._invocation = None
                    self._waiting = None
                    return ResponseStep(invocation, stop.value)
                self._handlers.popleft()
                continue
            outcome = self._apply_effect(source, effect)
            if outcome is not None:
                return outcome

    def _apply_effect(self, source, effect):
        if isinstance(effect, Send):
            return SendStep(self.mint_p2p(effect.dest), effect.payload)
        if isinstance(effect, Wait):
            if source is not self._operation:
                raise ProtocolError(
                    f"p{self.pid}: Wait inside an atomic 'upon receive' "
                    f"handler"
                )
            if effect.guard():
                return None
            self._waiting = effect
            return Blocked(effect.reason or "operation waiting")
        if isinstance(effect, LocalNote):
            return LocalStep(effect.label)
        raise ProtocolError(
            f"p{self.pid}: service algorithm yielded unsupported effect "
            f"{effect!r}"
        )

"""The asynchronous reliable network of CAMP_n (Section 2).

Channels are reliable (no loss, corruption or creation), **not** FIFO, and
asynchronous: a sent message stays *in flight* until the scheduler decides
to deliver it, with no bound on how long that takes.  The
:class:`Network` is a passive pool of in-flight messages; scheduling
policy (who receives next) lives in the simulator or the adversary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterator

from ..core.actions import PointToPointId
from .fingerprint import stable_digest

__all__ = ["InFlight", "Network"]


@dataclass(frozen=True)
class InFlight:
    """One point-to-point message currently in transit."""

    p2p: PointToPointId
    payload: Hashable

    @property
    def sender(self) -> int:
        return self.p2p.sender

    @property
    def receiver(self) -> int:
        return self.p2p.receiver


class Network:
    """The pool of in-flight point-to-point messages.

    Insertion order is preserved per destination so that deterministic
    schedulers (seeded, or the adversary's explicit flushes) are
    replayable.
    """

    def __init__(self) -> None:
        self._in_flight: dict[PointToPointId, InFlight] = {}

    def __len__(self) -> int:
        return len(self._in_flight)

    def fork(self) -> "Network":
        """An independent network with the same in-flight pool.

        The insertion order of the pool — which fixes the enumeration
        order of :meth:`deliverable` and hence the meaning of schedule
        guides — is preserved, so a forked branch and a from-scratch
        replay of the same prefix enumerate choices identically.
        """
        clone = Network()
        clone._in_flight = dict(self._in_flight)
        return clone

    def fingerprint(self) -> str:
        """A stable structural digest of the in-flight pool *in order*.

        Insertion order is part of the digest on purpose: it fixes the
        enumeration order of :meth:`deliverable` and therefore the
        meaning of schedule-guide indices, so only states whose pools
        agree as sequences may be treated as interchangeable by the
        explorer's dedup cache.
        """
        return stable_digest(
            "network",
            [(item.p2p, item.payload) for item in self._in_flight.values()],
        )

    def send(self, p2p: PointToPointId, payload: Hashable) -> InFlight:
        """Put one message in flight; sends are unique by identity."""
        if p2p in self._in_flight:
            raise ValueError(f"duplicate emission of {p2p}")
        item = InFlight(p2p, payload)
        self._in_flight[p2p] = item
        return item

    def deliverable(
        self, to: Iterator[int] | set[int] | None = None
    ) -> list[InFlight]:
        """In-flight messages, optionally filtered by destination set."""
        if to is None:
            return list(self._in_flight.values())
        destinations = set(to)
        return [
            item
            for item in self._in_flight.values()
            if item.receiver in destinations
        ]

    def receive(self, p2p: PointToPointId) -> InFlight:
        """Remove one in-flight message, committing its reception."""
        try:
            return self._in_flight.pop(p2p)
        except KeyError:
            raise ValueError(f"{p2p} is not in flight") from None

    def pending_to(self, receiver: int) -> list[InFlight]:
        """In-flight messages addressed to ``receiver``, oldest first."""
        return [
            item
            for item in self._in_flight.values()
            if item.receiver == receiver
        ]

    def pending_between(self, sender: int, receiver: int) -> list[InFlight]:
        """In-flight messages on one directed channel, oldest first."""
        return [
            item
            for item in self._in_flight.values()
            if item.sender == sender and item.receiver == receiver
        ]

"""Canonical state fingerprints — the key of the explorer's dedup cache.

Distinct decision sequences frequently converge on the *same* global
state: receptions by different processes commute, and the symmetric
script configurations the paper's constructions produce (every process
broadcasting interchangeable SYNCH messages) multiply such convergences
combinatorially.  The dedup engine of :mod:`repro.runtime.explorer`
prunes a branch when the state it just reached was already expanded, so
it needs a *canonical* digest of a :class:`~repro.runtime.simulator.SimulationRun`:
equal digests must imply equal futures (same enabled-event lists, same
subtree of schedules, same per-process observations at every descendant
terminal).

What is fingerprinted — and what deliberately is not
----------------------------------------------------

A run's future is a function of:

* each process's *input journal* (the driver-call log of
  :class:`~repro.runtime.process.ProcessRuntime`): algorithms are
  deterministic step machines, so local state is a function of the log;
* the in-flight message pool **in insertion order** — the order fixes
  the enumeration order of :meth:`~repro.runtime.network.Network.deliverable`
  and hence the meaning of schedule guides, so two states are only
  interchangeable when their pools agree as *sequences*;
* the k-SA registry (proposals/decisions so far), the message-factory
  counters, the remaining scripts, the alive set, the sync-broadcast
  gates, and the decision count (crash schedules are indexed by it).

The recorded *trace* is exactly what is **not** fingerprinted: two
converging decision sequences differ precisely in how they interleaved
the same per-process histories, and collapsing them is the point.

Digests are :func:`hashlib.blake2b` over a tagged, length-prefixed
canonical encoding — stable across processes and interpreter runs
(``hash()`` is randomized per run and is deliberately not used).

The encoder is on the hot path of every dedup lookup, so it builds the
canonical byte stream into a reusable ``bytearray`` (one hash
finalization per digest, no per-value sub-hasher objects) and memoizes
dataclass field lists per type.  Unordered containers are canonicalized
by sorting the raw element *encodings* — self-delimiting byte strings,
so concatenating them cannot alias.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
from typing import Any, Callable, Hashable, Sequence

from ..core.actions import PointToPointId
from ..core.message import Message, MessageId

__all__ = [
    "PidCanonicalizer",
    "canonical_update",
    "orbit_digest",
    "payload_digest",
    "stable_digest",
]

#: Hex-digest length: 16 bytes of blake2b — collision probability is
#: negligible at exploration scale (billions of states would be needed).
_DIGEST_SIZE = 16

#: Memoized ``dataclasses.fields`` name tuples — ``fields()`` rebuilds
#: its result list per call, and every message/identity encode pays it.
_FIELD_NAMES: dict[type, tuple[str, ...]] = {}

#: Small pool of reusable encoding buffers.  Encoding is re-entrant in
#: principle (a ``repr`` fallback could digest something itself), so
#: buffers are acquired/released rather than held in one global.
_BUFFERS: list[bytearray] = []


def _field_names(cls: type) -> tuple[str, ...]:
    names = _FIELD_NAMES.get(cls)
    if names is None:
        names = tuple(f.name for f in dataclasses.fields(cls))
        _FIELD_NAMES[cls] = names
    return names


def _acquire_buffer() -> bytearray:
    if _BUFFERS:
        return _BUFFERS.pop()
    return bytearray()


def _release_buffer(buf: bytearray) -> None:
    if len(_BUFFERS) < 8:
        buf.clear()
        _BUFFERS.append(buf)


def _put(buf: bytearray, tag: bytes, payload: bytes) -> None:
    buf += tag
    buf += len(payload).to_bytes(8, "big")
    buf += payload


def _encode_into(buf: bytearray, value: Any) -> None:
    """Append ``value``'s canonical encoding to ``buf``.

    The encoding is tagged and length-prefixed (containers carry an
    element count plus a terminator), so it is self-delimiting: no two
    structurally distinct values share an encoding, and container
    encodings can be concatenated and sorted without aliasing.
    """
    if value is None:
        _put(buf, b"N", b"")
    elif isinstance(value, bool):
        _put(buf, b"B", b"1" if value else b"0")
    elif isinstance(value, int):
        _put(buf, b"i", str(value).encode())
    elif isinstance(value, float):
        _put(buf, b"f", repr(value).encode())
    elif isinstance(value, str):
        _put(buf, b"s", value.encode())
    elif isinstance(value, bytes):
        _put(buf, b"y", value)
    elif isinstance(value, tuple):
        _put(buf, b"(", str(len(value)).encode())
        for item in value:
            _encode_into(buf, item)
        _put(buf, b")", b"")
    elif isinstance(value, list):
        # Lists carry their own tag: ``["a"]`` and ``("a",)`` are
        # structurally distinct and must not collide (they used to share
        # the tuple tag — see the regression tests).
        _put(buf, b"l", str(len(value)).encode())
        for item in value:
            _encode_into(buf, item)
        _put(buf, b")", b"")
    elif isinstance(value, (set, frozenset)):
        _put(buf, b"{", _sorted_encodings(buf, value))
    elif isinstance(value, dict):
        _put(buf, b"m", _sorted_encodings(buf, value.items()))
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        _put(buf, b"D", type(value).__qualname__.encode())
        for name in _field_names(type(value)):
            _encode_into(buf, getattr(value, name))
        _put(buf, b"d", b"")
    else:
        _put(
            buf,
            b"r",
            type(value).__qualname__.encode() + b":" + repr(value).encode(),
        )


def _sorted_encodings(buf: bytearray, items: Any) -> bytes:
    """The sorted, concatenated encodings of ``items`` (order-free).

    Elements are encoded into the tail of ``buf`` (reusing its storage),
    sliced back out, and the tail discarded — no per-element hasher.
    Element encodings are self-delimiting, so sorting and joining the
    raw byte strings never compares or aliases unlike values.
    """
    mark = len(buf)
    parts: list[bytes] = []
    for item in items:
        start = len(buf)
        _encode_into(buf, item)
        parts.append(bytes(buf[start:]))
    del buf[mark:]
    parts.sort()
    return b"".join(parts)


def _encoded(value: Any) -> bytes:
    """The standalone canonical encoding of one value, as bytes."""
    buf = _acquire_buffer()
    try:
        _encode_into(buf, value)
        return bytes(buf)
    finally:
        _release_buffer(buf)


def canonical_update(hasher: "hashlib._Hash", value: Any) -> None:
    """Feed ``value``'s canonical encoding into ``hasher``.

    The encoding is tagged and length-prefixed, so structurally distinct
    values never collide by concatenation (``("ab",)`` vs ``("a", "b")``,
    ``["a"]`` vs ``("a",)``), and unordered containers (sets, dict
    items) are canonicalized by sorting their *encodings*, which never
    compares unlike values.  Dataclasses (messages, identities, script
    entries) encode as their class name plus field values; anything else
    falls back to ``repr``, which the run state of this library never
    needs — the fallback exists for exotic user script contents and is
    tagged separately so it cannot alias a structural encoding.
    """
    buf = _acquire_buffer()
    try:
        _encode_into(buf, value)
        hasher.update(buf)
    finally:
        _release_buffer(buf)


def stable_digest(*parts: Any) -> str:
    """A stable hex digest of ``parts`` under the canonical encoding.

    This is the primitive behind every ``fingerprint()`` method in the
    runtime: components digest their own state and the
    :meth:`~repro.runtime.simulator.SimulationRun.fingerprint` combines
    the component digests, so a state digest costs one linear pass over
    the live state and nothing over the trace.  The pass builds the
    whole canonical byte stream in a reused buffer and hashes it once.
    """
    buf = _acquire_buffer()
    try:
        for part in parts:
            _encode_into(buf, part)
        return hashlib.blake2b(buf, digest_size=_DIGEST_SIZE).hexdigest()
    finally:
        _release_buffer(buf)


def payload_digest(text: str) -> str:
    """The integrity digest of one opaque serialized payload.

    Used by :mod:`repro.runtime.checkpoint` to seal checkpoint files:
    the payload is a canonical JSON string, and the digest is computed
    over it under the same tagged encoding as every other
    :func:`stable_digest` in the runtime, so it is stable across
    interpreter runs and machines (a checkpoint written on one host
    verifies on another).  The tag keeps payload digests from ever
    colliding with state fingerprints or memo keys.
    """
    return stable_digest("repro.payload", text)


class PidCanonicalizer:
    """Re-encodes run-state values under a pid permutation (symmetry).

    The explorer's renaming-symmetry reduction
    (``explore_schedules(..., symmetry="rename")``) treats two states as
    interchangeable when one is the image of the other under a
    permutation of declared-symmetric process ids *and* an injective
    renaming of message contents (the paper's Definition 3 applied to
    the state, not just the spec).  This helper produces the canonical
    encoding of state components under one candidate permutation:

    * process ids are mapped through the permutation wherever they occur
      structurally — message identities (``MessageId.sender``),
      point-to-point identities, oracle proposer keys;
    * *contents* (and any other leaf value) are replaced by opaque
      tokens numbered by first appearance in the traversal, which
      realizes an injective content renaming: two states agree on the
      canonical encoding iff they differ only by the permutation plus
      some injective relabeling of contents;
    * containers are encoded structurally (unordered ones by sorted
      sub-encodings), so the encoding never aliases distinct structure.

    One instance encodes exactly **one** state: the token table is part
    of the encoding and must start empty, so that token numbers are a
    pure function of the state (first appearance in *this* traversal).
    A reused instance carries the previous state's token table across,
    so values are numbered by ordinals of the combined history — states
    that merely share content ordinals with what came before stop being
    distinguishable from their fresh encodings, and the same state
    encodes differently depending on what was encoded first.  Either
    way the digest is no longer a function of the state and the dedup
    cache mis-collapses or splits orbits.  Callers mark the end of a
    state encoding with :meth:`seal`; any use after that raises
    :class:`RuntimeError` (``canonical_state_digest`` and
    :func:`orbit_digest` seal the instances they create).
    """

    __slots__ = ("_perm", "_tokens", "_sealed")

    def __init__(self, permutation: Sequence[int]) -> None:
        self._perm = tuple(permutation)
        self._tokens: dict[Hashable, int] = {}
        self._sealed = False

    def seal(self) -> None:
        """Mark the state encoding complete; further use raises."""
        self._sealed = True

    def _check_usable(self) -> None:
        if self._sealed:
            raise RuntimeError(
                "PidCanonicalizer instances are single-use: this one "
                "already encoded a state, and its token table would "
                "carry that state's content ordinals into the next "
                "encoding (making the digest history-dependent instead "
                "of a function of the state).  Create a fresh instance "
                "per state."
            )

    def pid(self, p: int) -> int:
        """The image of process id ``p`` under the permutation."""
        return self._perm[p]

    def token(self, value: Hashable) -> tuple:
        """The first-appearance content token standing in for ``value``."""
        self._check_usable()
        if value not in self._tokens:
            self._tokens[value] = len(self._tokens)
        return ("~", self._tokens[value])

    def value(self, value: Any) -> Any:
        """The canonical (permuted, tokenized) image of ``value``."""
        self._check_usable()
        if isinstance(value, Message):
            return ("M", self.value(value.uid), self.value(value.content))
        if isinstance(value, MessageId):
            return ("U", self._perm[value.sender], value.seq)
        if isinstance(value, PointToPointId):
            return (
                "P",
                self._perm[value.sender],
                self._perm[value.receiver],
                value.seq,
            )
        if isinstance(value, (tuple, list)):
            return tuple(self.value(item) for item in value)
        if isinstance(value, (set, frozenset)):
            return (
                "S",
                tuple(sorted(_encoded(self.value(item)) for item in value)),
            )
        if isinstance(value, dict):
            return (
                "D",
                tuple(
                    sorted(
                        _encoded((self.value(k), self.value(v)))
                        for k, v in value.items()
                    )
                ),
            )
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            return (
                "C",
                type(value).__qualname__,
                tuple(
                    self.value(getattr(value, name))
                    for name in _field_names(type(value))
                ),
            )
        return self.token(value)


# ---------------------------------------------------------------------------
# Orbit-canonical digests: canonical labelling instead of enumeration
# ---------------------------------------------------------------------------


def orbit_digest(
    groups: Sequence[Sequence[int]],
    n: int,
    profile: Callable[[int], Hashable],
    encode: Callable[[Sequence[int]], str],
) -> tuple[str, tuple[int, ...], int]:
    """One representative digest per symmetry orbit, by canonical labelling.

    Minimizing :func:`encode` (a permuted-state digest such as
    :meth:`~repro.runtime.simulator.SimulationRun.canonical_state_digest`)
    over *every* admissible pid permutation costs |perms| encodings per
    state.  This pass instead refines each symmetric ``group`` into
    cells of equal per-pid invariant (``profile``), assigns cells to the
    group's sorted positions in sorted invariant order, and searches only
    the *residual automorphism candidates* — the permutations of
    equal-invariant pids over their cell's positions.  When invariants
    separate every pid, exactly one candidate (hence ~1 encoding per
    state) remains.

    ``profile`` must be **equivariant**: computed from the state without
    reading raw pid labels, so that pid ``σ(p)`` of the σ-relabeled
    state carries the invariant of pid ``p`` (journal *tag shapes*,
    alive flags, script-remainder shapes and pool degrees qualify;
    anything mentioning a concrete peer pid or a raw content does not).
    Under that contract the candidate sets of two orbit-related states
    correspond, so the minimized digest is constant on the orbit — the
    same canonical key full enumeration would compute, at a fraction of
    the encodings.  A non-equivariant profile can only *split* orbits
    (distinct keys for related states), never merge unrelated ones:
    equal digests still certify an admissible permutation, because every
    candidate acts within the declared groups.

    Returns ``(digest, permutation, encodings)``: the orbit-canonical
    digest, the witnessing permutation achieving it, and the number of
    candidate encodings performed (the cost that was previously
    |perms|).
    """
    candidates: list[list[int]] = [list(range(n))]
    for group in groups:
        positions = sorted(set(group))
        by_invariant: dict[str, list[int]] = {}
        for p in positions:
            by_invariant.setdefault(stable_digest(profile(p)), []).append(p)
        offset = 0
        for invariant in sorted(by_invariant):
            members = by_invariant[invariant]
            targets = positions[offset : offset + len(members)]
            offset += len(members)
            if len(members) == 1:
                for candidate in candidates:
                    candidate[members[0]] = targets[0]
                continue
            extended: list[list[int]] = []
            for candidate in candidates:
                for images in itertools.permutations(targets):
                    new = list(candidate)
                    for source, image in zip(members, images):
                        new[source] = image
                    extended.append(new)
            candidates = extended
    best: str | None = None
    best_perm: tuple[int, ...] | None = None
    for candidate in candidates:
        digest = encode(candidate)
        if best is None or digest < best:
            best, best_perm = digest, tuple(candidate)
    assert best is not None and best_perm is not None
    return best, best_perm, len(candidates)

"""Canonical state fingerprints — the key of the explorer's dedup cache.

Distinct decision sequences frequently converge on the *same* global
state: receptions by different processes commute, and the symmetric
script configurations the paper's constructions produce (every process
broadcasting interchangeable SYNCH messages) multiply such convergences
combinatorially.  The dedup engine of :mod:`repro.runtime.explorer`
prunes a branch when the state it just reached was already expanded, so
it needs a *canonical* digest of a :class:`~repro.runtime.simulator.SimulationRun`:
equal digests must imply equal futures (same enabled-event lists, same
subtree of schedules, same per-process observations at every descendant
terminal).

What is fingerprinted — and what deliberately is not
----------------------------------------------------

A run's future is a function of:

* each process's *input journal* (the driver-call log of
  :class:`~repro.runtime.process.ProcessRuntime`): algorithms are
  deterministic step machines, so local state is a function of the log;
* the in-flight message pool **in insertion order** — the order fixes
  the enumeration order of :meth:`~repro.runtime.network.Network.deliverable`
  and hence the meaning of schedule guides, so two states are only
  interchangeable when their pools agree as *sequences*;
* the k-SA registry (proposals/decisions so far), the message-factory
  counters, the remaining scripts, the alive set, the sync-broadcast
  gates, and the decision count (crash schedules are indexed by it).

The recorded *trace* is exactly what is **not** fingerprinted: two
converging decision sequences differ precisely in how they interleaved
the same per-process histories, and collapsing them is the point.

Digests are :func:`hashlib.blake2b` over a tagged, length-prefixed
canonical encoding — stable across processes and interpreter runs
(``hash()`` is randomized per run and is deliberately not used).
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any, Hashable, Sequence

from ..core.actions import PointToPointId
from ..core.message import Message, MessageId

__all__ = ["PidCanonicalizer", "canonical_update", "stable_digest"]

#: Hex-digest length: 16 bytes of blake2b — collision probability is
#: negligible at exploration scale (billions of states would be needed).
_DIGEST_SIZE = 16


def _update(hasher: "hashlib._Hash", tag: bytes, payload: bytes) -> None:
    hasher.update(tag)
    hasher.update(len(payload).to_bytes(8, "big"))
    hasher.update(payload)


def _encoded(value: Any) -> bytes:
    sub = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    canonical_update(sub, value)
    return sub.digest()


def canonical_update(hasher: "hashlib._Hash", value: Any) -> None:
    """Feed ``value``'s canonical encoding into ``hasher``.

    The encoding is tagged and length-prefixed, so structurally distinct
    values never collide by concatenation (``("ab",)`` vs ``("a", "b")``),
    and unordered containers (sets, dict items) are canonicalized by
    sorting their *encodings*, which never compares unlike values.
    Dataclasses (messages, identities, script entries) encode as their
    class name plus field values; anything else falls back to ``repr``,
    which the run state of this library never needs — the fallback exists
    for exotic user script contents and is tagged separately so it cannot
    alias a structural encoding.
    """
    if value is None:
        _update(hasher, b"N", b"")
    elif isinstance(value, bool):
        _update(hasher, b"B", b"1" if value else b"0")
    elif isinstance(value, int):
        _update(hasher, b"i", str(value).encode())
    elif isinstance(value, float):
        _update(hasher, b"f", repr(value).encode())
    elif isinstance(value, str):
        _update(hasher, b"s", value.encode())
    elif isinstance(value, bytes):
        _update(hasher, b"y", value)
    elif isinstance(value, (tuple, list)):
        _update(hasher, b"(", str(len(value)).encode())
        for item in value:
            canonical_update(hasher, item)
        _update(hasher, b")", b"")
    elif isinstance(value, (set, frozenset)):
        _update(hasher, b"{", b"".join(sorted(_encoded(v) for v in value)))
    elif isinstance(value, dict):
        _update(
            hasher,
            b"m",
            b"".join(
                sorted(
                    _encoded(k) + _encoded(v) for k, v in value.items()
                )
            ),
        )
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        _update(hasher, b"D", type(value).__qualname__.encode())
        for field in dataclasses.fields(value):
            canonical_update(hasher, getattr(value, field.name))
        _update(hasher, b"d", b"")
    else:
        _update(
            hasher,
            b"r",
            type(value).__qualname__.encode() + b":" + repr(value).encode(),
        )


def stable_digest(*parts: Any) -> str:
    """A stable hex digest of ``parts`` under the canonical encoding.

    This is the primitive behind every ``fingerprint()`` method in the
    runtime: components digest their own state and the
    :meth:`~repro.runtime.simulator.SimulationRun.fingerprint` combines
    the component digests, so a state digest costs one linear pass over
    the live state and nothing over the trace.
    """
    hasher = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    for part in parts:
        canonical_update(hasher, part)
    return hasher.hexdigest()


class PidCanonicalizer:
    """Re-encodes run-state values under a pid permutation (symmetry).

    The explorer's renaming-symmetry reduction
    (``explore_schedules(..., symmetry="rename")``) treats two states as
    interchangeable when one is the image of the other under a
    permutation of declared-symmetric process ids *and* an injective
    renaming of message contents (the paper's Definition 3 applied to
    the state, not just the spec).  This helper produces the canonical
    encoding of state components under one candidate permutation:

    * process ids are mapped through the permutation wherever they occur
      structurally — message identities (``MessageId.sender``),
      point-to-point identities, oracle proposer keys;
    * *contents* (and any other leaf value) are replaced by opaque
      tokens numbered by first appearance in the traversal, which
      realizes an injective content renaming: two states agree on the
      canonical encoding iff they differ only by the permutation plus
      some injective relabeling of contents;
    * containers are encoded structurally (unordered ones by sorted
      sub-encodings), so the encoding never aliases distinct structure.

    One instance is single-use: the token table is part of the encoding
    and must start empty for each state.
    """

    def __init__(self, permutation: Sequence[int]) -> None:
        self._perm = tuple(permutation)
        self._tokens: dict[Hashable, int] = {}

    def pid(self, p: int) -> int:
        """The image of process id ``p`` under the permutation."""
        return self._perm[p]

    def token(self, value: Hashable) -> tuple:
        """The first-appearance content token standing in for ``value``."""
        if value not in self._tokens:
            self._tokens[value] = len(self._tokens)
        return ("~", self._tokens[value])

    def value(self, value: Any) -> Any:
        """The canonical (permuted, tokenized) image of ``value``."""
        if isinstance(value, Message):
            return ("M", self.value(value.uid), self.value(value.content))
        if isinstance(value, MessageId):
            return ("U", self.pid(value.sender), value.seq)
        if isinstance(value, PointToPointId):
            return (
                "P",
                self.pid(value.sender),
                self.pid(value.receiver),
                value.seq,
            )
        if isinstance(value, (tuple, list)):
            return tuple(self.value(item) for item in value)
        if isinstance(value, (set, frozenset)):
            return (
                "S",
                tuple(sorted(_encoded(self.value(item)) for item in value)),
            )
        if isinstance(value, dict):
            return (
                "D",
                tuple(
                    sorted(
                        _encoded((self.value(k), self.value(v)))
                        for k, v in value.items()
                    )
                ),
            )
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            return (
                "C",
                type(value).__qualname__,
                tuple(
                    self.value(getattr(value, field.name))
                    for field in dataclasses.fields(value)
                ),
            )
        return self.token(value)

"""Scheduling policies: shaping the asynchrony of the free simulator.

The CAMP model leaves event ordering entirely to the environment; the
simulator makes that environment explicit as a *policy* choosing, at each
point, one of the enabled events.  Policies let tests and experiments
build the schedules the paper's discussion needs:

* :class:`UniformPolicy` — seeded uniform choice (the default); explores
  "typical" asynchrony.
* :class:`LockstepPolicy` — drains local steps and pending broadcasts
  before receptions and takes everything in deterministic order,
  approximating synchronous rounds.  Under it the k-BO *attempt*
  satisfies k-BO ordering — the failure exposed by Algorithm 1 is
  genuinely adversarial.
* :class:`ChannelFifoPolicy` — receptions on each directed channel are
  forced oldest-first (the model's channels are *not* FIFO; this policy
  shows what that assumption would buy).
* :class:`TargetedDelayPolicy` — starves one victim process of incoming
  messages until a given step, a deterministic "partition" that
  manufactures causal anomalies for algorithms without causal barriers.

Policies only *choose among enabled events*; they can delay but never
suppress a reception forever (a starved event is released once nothing
else is enabled, or past the deadline), so SR-Termination is preserved.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Sequence

from .network import InFlight

__all__ = [
    "SchedulingPolicy",
    "UniformPolicy",
    "LockstepPolicy",
    "ChannelFifoPolicy",
    "TargetedDelayPolicy",
]

Choice = tuple[str, object]


class SchedulingPolicy(ABC):
    """Chooses the next event among the currently enabled ones."""

    @abstractmethod
    def select(
        self,
        choices: Sequence[Choice],
        rng: random.Random,
        step_index: int,
    ) -> Choice:
        """Pick one element of ``choices`` (non-empty)."""


class UniformPolicy(SchedulingPolicy):
    """Seeded uniform choice over all enabled events (default)."""

    def select(self, choices, rng, step_index):
        return choices[rng.randrange(len(choices))]


class LockstepPolicy(SchedulingPolicy):
    """Deterministic near-synchronous rounds: drain the network first.

    Receptions have top priority, then local algorithm steps, and a new
    broadcast starts only when the system is otherwise quiet — so every
    message is fully disseminated before the next one enters, which is
    the "lock-step pattern" of Section 3.2.  Within each class events are
    taken in their (stable) enumeration order, so the schedule is fully
    deterministic regardless of the seed.
    """

    _priority = {"recv": 0, "local": 1, "bcast": 2}

    def select(self, choices, rng, step_index):
        return min(
            choices, key=lambda choice: self._priority[choice[0]]
        )


class ChannelFifoPolicy(SchedulingPolicy):
    """Receptions happen oldest-first per directed channel.

    Among receive events, only the head of each channel is eligible
    (``Network`` preserves per-channel insertion order); the choice among
    channel heads and other events stays uniform.
    """

    def select(self, choices, rng, step_index):
        heads: dict[tuple[int, int], Choice] = {}
        eligible: list[Choice] = []
        for choice in choices:
            kind, payload = choice
            if kind != "recv":
                eligible.append(choice)
                continue
            assert isinstance(payload, InFlight)
            channel = (payload.sender, payload.receiver)
            if channel not in heads:
                heads[channel] = choice
        eligible.extend(heads.values())
        return eligible[rng.randrange(len(eligible))]


class TargetedDelayPolicy(SchedulingPolicy):
    """Starve ``victim`` of incoming messages until ``until_step``.

    Other events proceed uniformly; once past the deadline — or when the
    starved receptions are the only enabled events — the embargo lifts,
    preserving liveness.
    """

    def __init__(self, victim: int, until_step: int) -> None:
        self.victim = victim
        self.until_step = until_step

    def _starved(self, choice: Choice) -> bool:
        kind, payload = choice
        return (
            kind == "recv"
            and isinstance(payload, InFlight)
            and payload.receiver == self.victim
        )

    def select(self, choices, rng, step_index):
        if step_index < self.until_step:
            allowed = [c for c in choices if not self._starved(c)]
            if allowed:
                return allowed[rng.randrange(len(allowed))]
        return choices[rng.randrange(len(choices))]

"""Exhaustive schedule exploration: bounded model checking for CAMP runs.

Seeded simulation samples schedules; the :func:`explore_schedules`
explorer *enumerates* them.  It performs a depth-first search over the
tree of scheduling decisions — at every point, every enabled event (a
local step, a reception, a broadcast start) is a branch — and evaluates
a property at each terminal (quiescent) schedule, reporting every
violating schedule together with the decision sequence that reproduces
it (replayable via ``Simulator.run(..., guide=...)``).

Engines
-------

Two engines explore the *same* tree in the same depth-first order and
produce identical results:

* ``engine="incremental"`` (default) — the search runs on resumable
  :class:`~repro.runtime.simulator.SimulationRun` handles: extending a
  prefix by one event costs one event, and branch points are covered by
  forking the handle (a state snapshot) instead of re-running the
  prefix.  Each edge of the schedule tree is executed exactly once,
  turning the replay cost from O(nodes × depth) events into O(edges).
* ``engine="replay"`` — the historical engine: every DFS prefix is
  re-run from scratch through a guided :meth:`Simulator.run`.  Kept as
  the differential-testing oracle and as the benchmark baseline; the
  per-node depth factor it pays is reported in
  :attr:`ExplorationResult.events_replayed`.

``workers > 1`` shards the top of the schedule tree across a
``multiprocessing`` pool (fork start method): the tree is expanded
breadth-first until enough independent subtrees exist, each worker runs
the incremental engine on its subtree, and the per-shard outcomes are
merged back *in depth-first order*, so an exhaustive parallel run
returns exactly the sequential result (same terminal count, same
violations in the same order).  On budget-capped runs the merged
``terminal_schedules`` and ``violations`` still match the sequential
engine; ``schedules_explored``/event counters reflect the work actually
performed, which can be larger because every worker receives the full
budget.  Where the ``fork`` start method is unavailable the call falls
back to a single worker.

Properties
----------

Properties are callables receiving the terminal
:class:`~repro.runtime.simulator.SimulationResult` and returning a list
of violation strings; :func:`spec_property` and :func:`channels_property`
adapt the library's checkers.  Property objects may additionally expose
``tracker(n)`` returning a :class:`PropertyTracker`, in which case the
incremental engine feeds them *step deltas* along each branch instead of
whole executions per terminal: :func:`channels_property` checks the SR
channel axioms this way (via :class:`repro.core.model.ChannelTracker`),
scanning every step once per tree edge rather than once per
terminal-times-depth.  Spec properties are whole-execution judgements
and stay terminal-evaluated.

Bounds
------

``max_schedules`` bounds the number of terminal schedules visited,
turning the explorer into a systematic falsifier that finds
minimal-depth counterexamples before random testing would;
``max_depth`` bounds the decision depth.  A search cut short by either
bound — or aborted by ``stop_at_first_violation`` — reports
``exhausted=False`` (and ``aborted=True`` for the stop case); subtrees
pruned at ``max_depth`` are *not* property-checked, since their runs are
truncated mid-flight.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping, Sequence

from ..core.broadcast_spec import BroadcastSpec
from ..core.model import ChannelTracker, check_channels
from ..core.steps import Step
from .crash import CrashSchedule
from .simulator import SimulationResult, SimulationRun, Simulator

__all__ = [
    "Violation",
    "ExplorationResult",
    "explore_schedules",
    "spec_property",
    "channels_property",
    "combine_properties",
    "PropertyTracker",
]

Property = Callable[[SimulationResult], list[str]]


@dataclass(frozen=True)
class Violation:
    """One violating schedule: the guide that reproduces it, and why."""

    guide: tuple[int, ...]
    problems: tuple[str, ...]

    def __str__(self) -> str:
        return (
            f"schedule {list(self.guide)}: "
            + "; ".join(self.problems[:3])
        )


@dataclass
class ExplorationResult:
    """Outcome of one exhaustive (or budget-capped) exploration."""

    schedules_explored: int
    terminal_schedules: int
    violations: list[Violation] = field(default_factory=list)
    exhausted: bool = True
    max_depth_seen: int = 0
    #: True when ``stop_at_first_violation`` cut the search short.  An
    #: aborted search is never exhaustive: schedules after the first
    #: violation were deliberately not visited.
    aborted: bool = False
    #: Scheduled events committed over the whole search, including any
    #: re-execution (the replay engine re-runs each prefix; the parallel
    #: engine re-runs shard prefixes once per worker).
    events_executed: int = 0
    #: The subset of ``events_executed`` that re-executed work already
    #: performed earlier in the search — the quantity the incremental
    #: engine exists to eliminate.  For the incremental engine this also
    #: counts local steps re-executed by journal-replay forks.
    events_replayed: int = 0
    #: Worker processes that actually ran the search.
    workers: int = 1

    @property
    def ok(self) -> bool:
        return not self.violations

    def __str__(self) -> str:
        if self.aborted:
            coverage = "aborted"
        elif self.exhausted:
            coverage = "exhaustive"
        else:
            coverage = "budget-capped"
        verdict = (
            "no violation"
            if self.ok
            else f"{len(self.violations)} violating schedule(s)"
        )
        return (
            f"{coverage} exploration: {self.terminal_schedules} terminal "
            f"schedules ({self.schedules_explored} prefixes, depth ≤ "
            f"{self.max_depth_seen}): {verdict}"
        )


# ---------------------------------------------------------------------------
# Properties and their incremental trackers
# ---------------------------------------------------------------------------


class PropertyTracker:
    """Terminal-state property evaluation fed step deltas along a branch.

    The incremental engine holds one tracker per search-tree node:
    :meth:`observe` receives the trace steps appended since the parent
    node, :meth:`fork` snapshots the tracker at a branch point, and
    :meth:`at_terminal` produces the violation list at a quiescent
    schedule.  This base class is the *stateless* adapter: it ignores
    deltas and evaluates a plain property callable on the terminal
    result, so forks can share the one instance.
    """

    def __init__(self, check: Property) -> None:
        self._check = check

    def observe(self, steps: Sequence[Step]) -> None:
        """Account trace steps appended since the previous call."""

    def fork(self) -> "PropertyTracker":
        """A tracker for a diverging branch (self when stateless)."""
        return self

    def at_terminal(self, result: SimulationResult) -> list[str]:
        """Violations of the property at a terminal schedule."""
        return self._check(result)


class _ChannelsTracker(PropertyTracker):
    """SR channel axioms maintained incrementally along a branch."""

    def __init__(self, n: int, *, assume_complete: bool) -> None:
        self._tracker = ChannelTracker(n)
        self._assume_complete = assume_complete

    def observe(self, steps: Sequence[Step]) -> None:
        for step in steps:
            self._tracker.observe(step)

    def fork(self) -> "_ChannelsTracker":
        clone = object.__new__(_ChannelsTracker)
        clone._tracker = self._tracker.fork()
        clone._assume_complete = self._assume_complete
        return clone

    def at_terminal(self, result: SimulationResult) -> list[str]:
        return self._tracker.report(
            assume_complete=self._assume_complete
        ).all_violations()


class _CombinedTracker(PropertyTracker):
    """Conjunction of several trackers (problems concatenated in order)."""

    def __init__(self, trackers: list[PropertyTracker]) -> None:
        self._trackers = trackers

    def observe(self, steps: Sequence[Step]) -> None:
        for tracker in self._trackers:
            tracker.observe(steps)

    def fork(self) -> "_CombinedTracker":
        return _CombinedTracker([t.fork() for t in self._trackers])

    def at_terminal(self, result: SimulationResult) -> list[str]:
        problems: list[str] = []
        for tracker in self._trackers:
            problems.extend(tracker.at_terminal(result))
        return problems


class _TerminalProperty:
    """A property with no incremental structure: evaluated at terminals."""

    def __init__(self, check: Property) -> None:
        self._check = check

    def __call__(self, result: SimulationResult) -> list[str]:
        return self._check(result)

    def tracker(self, n: int) -> PropertyTracker:
        return PropertyTracker(self._check)


class _ChannelsProperty:
    """The SR channel axioms, incremental when used by the explorer."""

    def __init__(self, *, assume_complete: bool) -> None:
        self._assume_complete = assume_complete

    def __call__(self, result: SimulationResult) -> list[str]:
        return check_channels(
            result.execution, assume_complete=self._assume_complete
        ).all_violations()

    def tracker(self, n: int) -> PropertyTracker:
        return _ChannelsTracker(n, assume_complete=self._assume_complete)


class _CombinedProperty:
    """Conjunction of several properties."""

    def __init__(self, properties: tuple[object, ...]) -> None:
        self._properties = [_as_property(p) for p in properties]

    def __call__(self, result: SimulationResult) -> list[str]:
        problems: list[str] = []
        for prop in self._properties:
            problems.extend(prop(result))
        return problems

    def tracker(self, n: int) -> PropertyTracker:
        return _CombinedTracker(
            [p.tracker(n) for p in self._properties]
        )


def _as_property(prop: object):
    """Normalize a plain callable into a tracker-capable property."""
    if hasattr(prop, "tracker") and callable(getattr(prop, "tracker")):
        return prop
    if not callable(prop):
        raise TypeError(f"property must be callable, got {prop!r}")
    return _TerminalProperty(prop)


def spec_property(
    spec: BroadcastSpec, *, assume_complete: bool = True
) -> Property:
    """Adapt a broadcast specification into a terminal-state property."""

    def check(result: SimulationResult) -> list[str]:
        verdict = spec.admits(
            result.execution.broadcast_projection(),
            assume_complete=assume_complete,
        )
        return verdict.all_violations()

    return _TerminalProperty(check)


def channels_property(*, assume_complete: bool = True) -> Property:
    """The SR channel axioms as a terminal-state property.

    When passed to :func:`explore_schedules` this property is evaluated
    *incrementally*: the explorer feeds it step deltas along each DFS
    branch, so each trace step is scanned once per tree edge instead of
    once per terminal-times-depth.
    """
    return _ChannelsProperty(assume_complete=assume_complete)


def combine_properties(*properties: Property) -> Property:
    """Conjunction of several properties (incremental where they are)."""
    return _CombinedProperty(tuple(properties))


# ---------------------------------------------------------------------------
# The incremental engine
# ---------------------------------------------------------------------------


class _Cursor:
    """One search-tree node: a run handle plus its property tracker."""

    __slots__ = ("handle", "tracker", "mark")

    def __init__(
        self, handle: SimulationRun, tracker: PropertyTracker, mark: int
    ) -> None:
        self.handle = handle
        self.tracker = tracker
        self.mark = mark

    def fork(self) -> "_Cursor":
        return _Cursor(self.handle.fork(), self.tracker.fork(), self.mark)

    def sync(self) -> None:
        """Feed the tracker every trace step recorded since last sync."""
        new_steps = self.handle.trace.since(self.mark)
        if new_steps:
            self.tracker.observe(new_steps)
            self.mark += len(new_steps)


@dataclass
class _SubtreeOutcome:
    """Result of exploring one subtree (picklable, for worker returns).

    ``violations`` carries each violation together with the ordinal of
    its terminal within the subtree's depth-first terminal sequence, so
    the merge step can truncate precisely at a global budget.
    """

    schedules_explored: int = 0
    terminal_schedules: int = 0
    violations: list[tuple[int, Violation]] = field(default_factory=list)
    exhausted: bool = True
    aborted: bool = False
    max_depth_seen: int = 0
    events_executed: int = 0
    events_replayed: int = 0


def _explore_subtree(
    simulator: Simulator,
    scripts: Mapping[int, Sequence[Hashable]],
    property_check: object,
    crash_schedule: CrashSchedule | None,
    prefix: tuple[int, ...],
    max_schedules: int,
    max_depth: int,
    stop_at_first_violation: bool,
) -> _SubtreeOutcome:
    """Incremental DFS below ``prefix`` (replayed once to materialize)."""
    out = _SubtreeOutcome()
    prop = _as_property(property_check)
    handle = simulator.begin(scripts, crash_schedule=crash_schedule)
    for branch in prefix:
        handle.choices()
        handle.advance(branch)
    out.events_executed += len(prefix)
    out.events_replayed += len(prefix)
    cursor = _Cursor(handle, prop.tracker(simulator.n), 0)
    path = list(prefix)

    def dfs(cursor: _Cursor, depth: int) -> bool:
        """Returns False to abort the whole search."""
        if out.terminal_schedules >= max_schedules:
            out.exhausted = False
            return False
        out.schedules_explored += 1
        out.max_depth_seen = max(out.max_depth_seen, depth)
        choices = cursor.handle.choices()
        cursor.sync()
        if not choices:
            ordinal = out.terminal_schedules
            out.terminal_schedules += 1
            problems = cursor.tracker.at_terminal(cursor.handle.result())
            if problems:
                out.violations.append(
                    (ordinal, Violation(tuple(path), tuple(problems)))
                )
                if stop_at_first_violation:
                    out.aborted = True
                    out.exhausted = False
                    return False
            return True
        if depth >= max_depth:
            out.exhausted = False
            return True
        last = len(choices) - 1
        for branch in range(len(choices)):
            if branch < last:
                child = cursor.fork()
                out.events_replayed += child.handle.replayed_steps
            else:
                child = cursor  # the last branch extends this node in place
            child.handle.advance(branch)
            out.events_executed += 1
            path.append(branch)
            keep_going = dfs(child, depth + 1)
            path.pop()
            if not keep_going:
                return False
        return True

    dfs(cursor, len(prefix))
    return out


# ---------------------------------------------------------------------------
# The replay engine (differential oracle and benchmark baseline)
# ---------------------------------------------------------------------------


def _explore_replay(
    simulator: Simulator,
    scripts: Mapping[int, Sequence[Hashable]],
    property_check: object,
    crash_schedule: CrashSchedule | None,
    max_schedules: int,
    max_depth: int,
    stop_at_first_violation: bool,
) -> ExplorationResult:
    """The from-scratch engine: each prefix re-run via a guided run."""
    prop = _as_property(property_check)
    result = ExplorationResult(schedules_explored=0, terminal_schedules=0)

    def run_prefix(prefix: list[int]) -> SimulationResult:
        return simulator.run(
            scripts,
            crash_schedule=crash_schedule,
            guide=prefix,
            max_steps=max_depth + 1,
        )

    def dfs(prefix: list[int]) -> bool:
        """Returns False to abort the whole search."""
        if result.terminal_schedules >= max_schedules:
            result.exhausted = False
            return False
        result.schedules_explored += 1
        result.max_depth_seen = max(result.max_depth_seen, len(prefix))
        outcome = run_prefix(prefix)
        result.events_executed += len(prefix)
        result.events_replayed += max(0, len(prefix) - 1)
        if outcome.pending_choices == 0:
            result.terminal_schedules += 1
            problems = prop(outcome)
            if problems:
                result.violations.append(
                    Violation(tuple(prefix), tuple(problems))
                )
                if stop_at_first_violation:
                    result.aborted = True
                    result.exhausted = False
                    return False
            return True
        if len(prefix) >= max_depth:
            result.exhausted = False
            return True
        for branch in range(outcome.pending_choices):
            prefix.append(branch)
            keep_going = dfs(prefix)
            prefix.pop()
            if not keep_going:
                return False
        return True

    dfs([])
    return result


# ---------------------------------------------------------------------------
# Parallel sharding
# ---------------------------------------------------------------------------

#: Work description inherited by forked pool workers (never pickled).
_SHARD_STATE: tuple | None = None


def _explore_shard(index: int) -> _SubtreeOutcome:
    """Pool worker entry point: explore the ``index``-th shard subtree."""
    assert _SHARD_STATE is not None
    (
        simulator,
        scripts,
        property_check,
        crash_schedule,
        prefixes,
        max_schedules,
        max_depth,
        stop_at_first_violation,
    ) = _SHARD_STATE
    return _explore_subtree(
        simulator,
        scripts,
        property_check,
        crash_schedule,
        prefixes[index],
        max_schedules,
        max_depth,
        stop_at_first_violation,
    )


def _expand_frontier(
    simulator: Simulator,
    scripts: Mapping[int, Sequence[Hashable]],
    property_check: object,
    crash_schedule: CrashSchedule | None,
    max_depth: int,
    target_shards: int,
    result: ExplorationResult,
) -> list[tuple]:
    """Expand the tree breadth-first until enough subtrees exist.

    Returns the frontier as an *ordered* work list whose order is the
    depth-first visiting order of the remaining work: entries are either
    ``("terminal", prefix, problems)`` — a shallow terminal already
    evaluated here — or ``("shard", prefix, cursor)`` — a subtree for a
    worker.  Interior nodes visited during expansion are accounted
    directly into ``result``.
    """
    prop = _as_property(property_check)
    root = _Cursor(
        simulator.begin(scripts, crash_schedule=crash_schedule),
        prop.tracker(simulator.n),
        0,
    )
    entries: list[tuple] = [("shard", (), root)]
    for _round in range(8):
        shard_count = sum(1 for e in entries if e[0] == "shard")
        if shard_count >= target_shards:
            break
        new_entries: list[tuple] = []
        expanded = False
        for entry in entries:
            if entry[0] == "terminal":
                new_entries.append(entry)
                continue
            _, prefix, cursor = entry
            choices = cursor.handle.choices()
            cursor.sync()
            result.schedules_explored += 1
            result.max_depth_seen = max(
                result.max_depth_seen, len(prefix)
            )
            if not choices:
                problems = cursor.tracker.at_terminal(
                    cursor.handle.result()
                )
                new_entries.append(("terminal", prefix, tuple(problems)))
                continue
            if len(prefix) >= max_depth:
                result.exhausted = False
                continue
            expanded = True
            last = len(choices) - 1
            for branch in range(len(choices)):
                if branch < last:
                    child = cursor.fork()
                    result.events_replayed += child.handle.replayed_steps
                else:
                    child = cursor
                child.handle.advance(branch)
                result.events_executed += 1
                new_entries.append(
                    ("shard", prefix + (branch,), child)
                )
        entries = new_entries
        if not expanded:
            break
    return entries


def _explore_parallel(
    simulator: Simulator,
    scripts: Mapping[int, Sequence[Hashable]],
    property_check: object,
    crash_schedule: CrashSchedule | None,
    max_schedules: int,
    max_depth: int,
    stop_at_first_violation: bool,
    workers: int,
) -> ExplorationResult:
    """Shard the tree over a worker pool and merge in DFS order."""
    global _SHARD_STATE
    result = ExplorationResult(
        schedules_explored=0, terminal_schedules=0, workers=workers
    )
    entries = _expand_frontier(
        simulator,
        scripts,
        property_check,
        crash_schedule,
        max_depth,
        target_shards=workers * 4,
        result=result,
    )
    prefixes = [e[1] for e in entries if e[0] == "shard"]
    ctx = multiprocessing.get_context("fork")
    _SHARD_STATE = (
        simulator,
        scripts,
        property_check,
        crash_schedule,
        prefixes,
        max_schedules,
        max_depth,
        stop_at_first_violation,
    )
    try:
        with ctx.Pool(processes=workers) as pool:
            shard_outcomes = pool.imap(_explore_shard, range(len(prefixes)))
            for entry in entries:
                if result.terminal_schedules >= max_schedules:
                    result.exhausted = False
                    break
                if entry[0] == "terminal":
                    _, prefix, problems = entry
                    result.terminal_schedules += 1
                    if problems:
                        result.violations.append(
                            Violation(tuple(prefix), tuple(problems))
                        )
                        if stop_at_first_violation:
                            result.aborted = True
                            result.exhausted = False
                            break
                    continue
                sub = next(shard_outcomes)
                result.schedules_explored += sub.schedules_explored
                result.events_executed += sub.events_executed
                result.events_replayed += sub.events_replayed
                result.max_depth_seen = max(
                    result.max_depth_seen, sub.max_depth_seen
                )
                budget_left = max_schedules - result.terminal_schedules
                take = min(sub.terminal_schedules, budget_left)
                for ordinal, violation in sub.violations:
                    if ordinal < take:
                        result.violations.append(violation)
                result.terminal_schedules += take
                if take < sub.terminal_schedules or not sub.exhausted:
                    result.exhausted = False
                if sub.aborted:
                    result.aborted = True
                    result.exhausted = False
                    break
    finally:
        _SHARD_STATE = None
    return result


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def explore_schedules(
    simulator: Simulator,
    scripts: Mapping[int, Sequence[Hashable]],
    property_check: Property,
    *,
    crash_schedule: CrashSchedule | None = None,
    max_schedules: int = 100_000,
    max_depth: int = 400,
    stop_at_first_violation: bool = False,
    engine: str = "incremental",
    workers: int = 1,
) -> ExplorationResult:
    """Enumerate every schedule of the configuration and check each.

    ``simulator`` provides the system (its seed/policy are ignored —
    scheduling is exhaustive, and local computation is made atomic, the
    sound reduction described on
    :class:`~repro.runtime.simulator.Simulator`); ``max_schedules``
    bounds the number of *terminal* schedules visited, ``max_depth`` the
    decision depth.  ``engine`` selects the incremental engine (default)
    or the historical from-scratch ``"replay"`` engine; ``workers > 1``
    runs the incremental engine sharded over a process pool (see the
    module docstring for the merge semantics).
    """
    if engine not in ("incremental", "replay"):
        raise ValueError(
            f"unknown engine {engine!r}: expected 'incremental' or 'replay'"
        )
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if workers > 1 and engine != "incremental":
        raise ValueError("parallel exploration requires the incremental engine")
    simulator = Simulator(
        simulator.n,
        simulator.algorithm_factory,
        k=simulator.k,
        ksa_policy=simulator.ksa_policy,
        sync_broadcasts=simulator.sync_broadcasts,
        atomic_local=True,
    )
    if engine == "replay":
        return _explore_replay(
            simulator,
            scripts,
            property_check,
            crash_schedule,
            max_schedules,
            max_depth,
            stop_at_first_violation,
        )
    if workers > 1:
        try:
            multiprocessing.get_context("fork")
        except ValueError:
            workers = 1  # platform without fork: degrade gracefully
    if workers > 1:
        return _explore_parallel(
            simulator,
            scripts,
            property_check,
            crash_schedule,
            max_schedules,
            max_depth,
            stop_at_first_violation,
            workers,
        )
    sub = _explore_subtree(
        simulator,
        scripts,
        property_check,
        crash_schedule,
        (),
        max_schedules,
        max_depth,
        stop_at_first_violation,
    )
    return ExplorationResult(
        schedules_explored=sub.schedules_explored,
        terminal_schedules=sub.terminal_schedules,
        violations=[v for _, v in sub.violations],
        exhausted=sub.exhausted,
        max_depth_seen=sub.max_depth_seen,
        aborted=sub.aborted,
        events_executed=sub.events_executed,
        events_replayed=sub.events_replayed,
        workers=1,
    )

"""Exhaustive schedule exploration: bounded model checking for CAMP runs.

Seeded simulation samples schedules; the :func:`explore_schedules`
explorer *enumerates* them.  It performs a depth-first search over the
tree of scheduling decisions — at every point, every enabled event (a
local step, a reception, a broadcast start) is a branch — and evaluates
a property at each terminal (quiescent) schedule, reporting every
violating schedule together with the decision sequence that reproduces
it (replayable via ``Simulator.run(..., guide=...)``).

Engines
-------

Three engines explore the *same* tree in the same depth-first order and
produce identical violations and terminal verdicts:

* ``engine="incremental"`` (default) — the search runs on resumable
  :class:`~repro.runtime.simulator.SimulationRun` handles: extending a
  prefix by one event costs one event, and branch points are covered by
  forking the handle (a state snapshot) instead of re-running the
  prefix.  Each edge of the schedule tree is executed exactly once,
  turning the replay cost from O(nodes × depth) events into O(edges).
* ``engine="dedup"`` (equivalently ``dedup=True`` on the incremental
  engine) — the incremental engine plus a transposition cache keyed by
  canonical state fingerprints
  (:meth:`~repro.runtime.simulator.SimulationRun.fingerprint`): when
  distinct decision sequences converge on the same global state, the
  subtree below it is explored once and every later arrival *replays*
  the recorded subtree summary — terminal counts and violations, with
  reproduction guides rebased onto the new prefix — instead of
  re-expanding it.  The cost drops from O(tree edges) to O(unique-state
  graph edges), the dominant saving on symmetric script configurations
  where interchangeable broadcasts make most interleavings converge.
  :attr:`ExplorationResult.states_seen` / ``states_deduped`` report the
  cache's effect.  See *Soundness of deduplication* below.
* ``engine="replay"`` — the historical engine: every DFS prefix is
  re-run from scratch through a guided :meth:`Simulator.run`.  Kept as
  the differential-testing oracle and as the benchmark baseline; the
  per-node depth factor it pays is reported in
  :attr:`ExplorationResult.events_replayed`.

Pre-step reductions
-------------------

Two opt-in reductions prune branches *before* the run handle is forked,
composing with (and multiplying) the dedup cache's savings:

* ``sleep_sets=True`` — the sleep-set partial-order reduction: when two
  enabled events are *independent* (recorded footprints touching
  disjoint processes, no emissions, no oracle, no crash — see
  :mod:`repro.runtime.independence`), exploring ``a`` then ``b``'s
  subtree makes re-exploring ``b`` then ``a`` redundant, so ``a`` is
  put to sleep below ``b`` and the slept branch is skipped outright
  (:attr:`ExplorationResult.states_pruned_sleep`).  Terminal states and
  therefore violations are preserved; slept interleavings are simply
  not re-counted.  Under dedup the sleep set is *not* part of the cache
  key: a cached subtree recorded under sleep set ``Z0`` stands in for
  any later arrival at the same state whose sleep set is a superset of
  ``Z0`` (the stored subtree explored everything the arrival may, plus
  some commutation-redundant interleavings whose terminals repeat
  observations the arrival would have produced anyway) — the
  *subset-reuse* rule.  An arrival sleeping *less* than the stored
  entry re-expands and, its subtree being the more reusable of the two,
  takes over the cache slot.
* ``symmetry="rename"`` — renaming-symmetry reduction over the dedup
  cache: states equal up to a permutation of interchangeable process
  ids plus an injective renaming of message contents (Definition 3
  lifted to states) share one cache slot, keyed by the orbit-canonical
  digest of :meth:`~repro.runtime.simulator.SimulationRun.orbit_key` —
  canonical labelling (refine the symmetric pids by equivariant per-pid
  invariants, then search only the residual automorphism candidates)
  rather than minimization over every admissible permutation, so a
  state usually costs a single canonical encoding
  (:attr:`ExplorationResult.orbit_encodings` counts them).  Gated on
  the algorithm's ``symmetric_processes()`` declaration and a
  pid-uniform oracle policy; merged arrivals are counted in
  :attr:`ExplorationResult.states_merged_symmetry` and replay the
  representative's violations with the witnessing permutation recorded
  on :attr:`Violation.permutation`.

Soundness of deduplication
--------------------------

A state fingerprint pins each process's *input journal*, the ordered
in-flight pool, the oracle registry, remaining scripts, the alive set
and the decision count — everything the scheduling loop reads — so two
converged nodes enable the same events in the same order forever after:
the subtrees below them are isomorphic, decision for decision.  Their
*traces* differ only in the prefix, and only up to commutation of
independent events (the same per-process histories, interleaved
differently).  Replaying a cached subtree summary is therefore exact
for properties whose verdict is a function of per-process observations
(every spec in :mod:`repro.specs`; delivery sequences, decided values
and returns are all per-process state).  Step-tracked properties stay
compatible too: :func:`channels_property`'s tracker state at a deduped
node is determined by per-process send/receive projections, which the
fingerprint pins — the deduped arrival's prefix was already checked
step by step on its own branch, and the suffix verdicts recorded in the
cache coincide with what re-expansion would have computed.  A custom
property that inspects the *global interleaving* of the terminal trace
(cross-process real-time order, say) is outside this envelope — use the
plain incremental engine for those.

``workers > 1`` shards the top of the schedule tree across a
``multiprocessing`` pool (fork start method): the tree is expanded
breadth-first until enough independent subtrees exist, each worker runs
the incremental engine on its subtree, and the per-shard outcomes are
merged back *in depth-first order*, so an exhaustive parallel run
returns exactly the sequential result (same terminal count, same
violations in the same order).  On budget-capped runs the merged
``terminal_schedules`` and ``violations`` still match the sequential
engine; ``schedules_explored``/event counters reflect the work actually
performed, which can be larger because every worker receives the full
budget.  Where the ``fork`` start method is unavailable the call falls
back to a single worker.  Under ``dedup=True`` the workers share
nothing: each shard builds its own private cache, so merged results
remain deterministic and identical to the sequential dedup engine
(cross-shard convergences are simply not pruned).  With sleep sets on
top, the *covered-terminal count* may differ from the sequential run —
subset-reuse replays whatever summary the local cache recorded first,
and per-shard caches record different representatives — but the set of
distinct terminal observations and violations is the same.

Properties
----------

Properties are callables receiving the terminal
:class:`~repro.runtime.simulator.SimulationResult` and returning a list
of violation strings; :func:`spec_property` and :func:`channels_property`
adapt the library's checkers.  Property objects may additionally expose
``tracker(n)`` returning a :class:`PropertyTracker`, in which case the
incremental engine feeds them *step deltas* along each branch instead of
whole executions per terminal: :func:`channels_property` checks the SR
channel axioms this way (via :class:`repro.core.model.ChannelTracker`),
scanning every step once per tree edge rather than once per
terminal-times-depth.  Spec properties are whole-execution judgements
and stay terminal-evaluated.

Bounds
------

``max_schedules`` bounds the number of terminal schedules visited,
turning the explorer into a systematic falsifier that finds
minimal-depth counterexamples before random testing would;
``max_depth`` bounds the decision depth.  A search cut short by either
bound — or aborted by ``stop_at_first_violation`` — reports
``exhausted=False`` (and ``aborted=True`` for the stop case); subtrees
pruned at ``max_depth`` are *not* property-checked, since their runs are
truncated mid-flight.

Checkpoint and resume
---------------------

``checkpoint_to=path`` makes the incremental engines durable: every
``checkpoint_every`` node expansions (and whenever a cooperative
``cancel`` token fires) the search serializes its complete restartable
state — the DFS frontier as a stack of per-level frames (taken branch,
sleep set, explored-sibling footprints, and under dedup the level's
partial summary and cache key), the transposition cache, and the
partial counters — into a versioned, integrity-sealed checkpoint file
written atomically (:mod:`repro.runtime.checkpoint`).
``resume_from=path`` restores it: the resume descent replays the
recorded branch at each checkpointed level *without re-counting it*
(the restored counters already include that node's expansion), then
re-enters normal DFS at the interruption point, so the resumed search
reaches a result construction-identical to an uninterrupted run — same
violations digest, same state counters, same per-depth maps.  The only
honest exceptions are ``events_executed``/``events_replayed``, which
additionally count the prefix replay the resume itself pays, exactly
as the parallel engine's shard prefixes do.  Checkpoints are bound to
their configuration by a :func:`~repro.runtime.checkpoint.config_digest`
over everything that shapes the tree; resuming against anything else
raises :class:`~repro.runtime.checkpoint.CheckpointError`.  Under
``workers > 1`` the parent writes a parallel checkpoint of merged
per-shard outcomes and each shard checkpoints its own subtree to
``<path>.shard-<i>``; a resumed parallel run re-expands the (cheap,
deterministic) frontier and skips every shard whose outcome was already
merged.  ``cancel`` accepts any object with a ``threading.Event``-style
``is_set()`` method, is polled at node entry, and makes the search
return promptly with ``interrupted=True`` (after writing a final
checkpoint when one was requested).  Forked shard workers see a *fork
snapshot* of the token: an inherited pre-fork state is honored, and the
merging parent polls the live token between shard merges either way.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping, Sequence

from ..core.broadcast_spec import BroadcastSpec
from ..core.model import ChannelTracker, check_channels
from ..core.steps import Step
from .checkpoint import (
    CheckpointError,
    config_digest,
    read_checkpoint,
    sleep_from_json,
    sleep_to_json,
    write_checkpoint,
)
from .checkpoint import key_from_json as _key_from_json
from .checkpoint import key_to_json as _key_to_json
from .crash import CrashSchedule
from .fingerprint import stable_digest
from .independence import (
    Footprint,
    choice_key,
    classify,
    conservative_independent,
)
from .simulator import Gated, SimulationResult, SimulationRun, Simulator


class _IndependenceOracle:
    """Memoizing, stats-counting commutation oracle for one exploration.

    The sleep-set recurrence consults the independence relation once
    per (slept event, taken event) pair per tree edge — by far the
    hottest call site of the DFS inner loop.  This oracle owns the
    allocation-light datapath for it:

    * **footprint interning** — footprints are value-interned into
      small ints (one dict hash per recorded event; value-equal
      footprints are interchangeable because the relation is a pure
      function of footprint values), so a verdict is memoized on a
      packed int pair and repeat queries skip the field-by-field
      checks entirely.  Memoizing on choice *keys* alone would be
      unsound: the same key names different footprints on different
      branches (a URB first copy forwards, its duplicate does not).
    * **choice-key interning** — ``choice_key`` tuples are interned
      per exploration into consecutive small ints; live sleep sets are
      keyed by them and cached sleep-key *sets* become int bitmasks,
      turning the subset-reuse test into ``stored & ~arrival == 0``.

    Verdicts come from the crash-aware dynamic relation
    (:func:`~repro.runtime.independence.classify`) — or its
    pre-crash-aware form when ``crash_aware=False`` — with an optional
    :class:`~repro.statics.independence.StaticIndependence` table as
    the fallback refiner, and every verdict is counted by the argument
    that carried it (``stats``).
    """

    __slots__ = (
        "_static", "_crash_aware", "_fp_ids", "_verdicts",
        "_key_ids", "_key_tuples", "stats",
    )

    def __init__(self, static_independence=None, *,
                 crash_aware: bool = True) -> None:
        self._static = static_independence
        self._crash_aware = crash_aware
        self._fp_ids: dict[Footprint, int] = {}
        #: packed (hi << 30 | lo) interned-footprint pair → (verdict, source)
        self._verdicts: dict[int, tuple[bool, str]] = {}
        self._key_ids: dict[tuple, int] = {}
        self._key_tuples: list[tuple] = []
        self.stats: dict[str, int] = {
            "dynamic": 0,
            "crash_proof": 0,
            "static_table": 0,
            "conservative": 0,
            "memo_queries": 0,
            "memo_hits": 0,
        }

    # -- the relation ----------------------------------------------------

    def __call__(
        self, a: Footprint | None, b: Footprint | None
    ) -> bool:
        stats = self.stats
        if a is None or b is None:
            stats["conservative"] += 1
            return False
        fp_ids = self._fp_ids
        ia = fp_ids.setdefault(a, len(fp_ids))
        ib = fp_ids.setdefault(b, len(fp_ids))
        packed = (ia << 30) | ib if ia >= ib else (ib << 30) | ia
        stats["memo_queries"] += 1
        cached = self._verdicts.get(packed)
        if cached is not None:
            stats["memo_hits"] += 1
            verdict, source = cached
        else:
            if self._crash_aware:
                verdict, source = classify(a, b)
            elif conservative_independent(a, b):
                verdict, source = True, "dynamic"
            else:
                verdict, source = False, "conservative"
            if (
                not verdict
                and self._static is not None
                and self._static.proves(a, b)
            ):
                verdict, source = True, "static_table"
            self._verdicts[packed] = (verdict, source)
        stats[source] += 1
        return verdict

    # -- choice-key interning and bitmask sleep-key sets -----------------

    def intern_key(self, key: tuple) -> int:
        """The small-int id of a choice key, minted on first sight."""
        kid = self._key_ids.get(key)
        if kid is None:
            kid = len(self._key_tuples)
            self._key_ids[key] = kid
            self._key_tuples.append(key)
        return kid

    def key_tuple(self, kid: int) -> tuple:
        """The choice-key tuple behind an interned id (codec boundary)."""
        return self._key_tuples[kid]

    def mask_of(self, kids) -> int:
        """The bitmask of an iterable of interned key ids."""
        mask = 0
        for kid in kids:
            mask |= 1 << kid
        return mask

    def canonical_mask(
        self, mask: int, permutation: Sequence[int] | None
    ) -> int:
        """A sleep-key bitmask mapped into the canonical pid frame.

        Sleep keys are pid-indexed, so comparing an arrival's sleep set
        against a cached representative's (the subset-reuse test) is
        only meaningful after both are pushed through their own
        canonicalizing permutations.  Without symmetry
        (``permutation is None``) masks compare verbatim.
        """
        if permutation is None:
            return mask
        out = 0
        while mask:
            bit = mask & -mask
            mask ^= bit
            key = self._key_tuples[bit.bit_length() - 1]
            out |= 1 << self.intern_key(_map_sleep_key(key, permutation))
        return out

__all__ = [
    "Violation",
    "ExplorationResult",
    "ProgressSnapshot",
    "RESULT_SCHEMA",
    "explore_schedules",
    "spec_property",
    "channels_property",
    "combine_properties",
    "PropertyTracker",
]

Property = Callable[[SimulationResult], list[str]]


def _now() -> float:
    """Wall clock for progress telemetry; the search never reads it."""
    return time.perf_counter()  # repro-lint: disable=REP001 -- telemetry only; exploration order and results never depend on it


#: Schema version stamped into serialized :class:`ExplorationResult` and
#: :class:`ProgressSnapshot` payloads.  Version 1 payloads predate the
#: stamp (its absence reads as 1); decoding tolerates older schemas by
#: defaulting the fields they lack, and rejects newer ones loudly.
#: Schema 3 adds ``independence_stats``.
RESULT_SCHEMA = 3


def _require_schema(data: Mapping, kind: str) -> None:
    """Reject payloads written by a newer serializer than this reader.

    Older payloads decode tolerantly (missing newer fields take their
    defaults); a *newer* schema means fields this reader has never heard
    of may carry semantics it cannot honor, so the decode fails with a
    clear error instead of a silently lossy one.
    """
    schema = int(data.get("schema", 1))
    if schema > RESULT_SCHEMA:
        raise ValueError(
            f"{kind} payload has schema {schema}, newer than the "
            f"supported {RESULT_SCHEMA} — decode it with a newer engine"
        )


@dataclass(frozen=True)
class Violation:
    """One violating schedule: the guide that reproduces it, and why."""

    guide: tuple[int, ...]
    problems: tuple[str, ...]
    #: Set only on violations re-emitted through a symmetry merge
    #: (``symmetry="rename"``): ``permutation[p]`` is the process id in
    #: the run reproduced by ``guide`` that plays the role of process
    #: ``p`` at the merged arrival where the violation was reported.
    #: ``None`` everywhere else (the guide is in the violation's own
    #: frame).
    permutation: tuple[int, ...] | None = None

    def __str__(self) -> str:
        renamed = (
            ""
            if self.permutation is None
            else f" (via renaming {list(self.permutation)})"
        )
        return (
            f"schedule {list(self.guide)}{renamed}: "
            + "; ".join(self.problems[:3])
        )

    def to_json(self) -> dict:
        """A lossless JSON-compatible dict; inverse of :meth:`from_json`."""
        return {
            "guide": list(self.guide),
            "problems": list(self.problems),
            "permutation": (
                None if self.permutation is None else list(self.permutation)
            ),
        }

    @classmethod
    def from_json(cls, data: Mapping) -> "Violation":
        """Rebuild a :class:`Violation` from its :meth:`to_json` dict."""
        permutation = data.get("permutation")
        return cls(
            guide=tuple(int(entry) for entry in data["guide"]),
            problems=tuple(str(problem) for problem in data["problems"]),
            permutation=(
                None
                if permutation is None
                else tuple(int(p) for p in permutation)
            ),
        )


@dataclass
class ExplorationResult:
    """Outcome of one exhaustive (or budget-capped) exploration."""

    schedules_explored: int
    terminal_schedules: int
    violations: list[Violation] = field(default_factory=list)
    exhausted: bool = True
    max_depth_seen: int = 0
    #: True when ``stop_at_first_violation`` cut the search short.  An
    #: aborted search is never exhaustive: schedules after the first
    #: violation were deliberately not visited.
    aborted: bool = False
    #: True when a cooperative ``cancel`` token stopped the search
    #: mid-flight.  An interrupted search is never exhaustive; when
    #: ``checkpoint_to`` was set, a checkpoint capturing the frontier
    #: was written just before the cut, so ``resume_from`` can finish
    #: the remainder construction-identically.
    interrupted: bool = False
    #: Scheduled events committed over the whole search, including any
    #: re-execution (the replay engine re-runs each prefix; the parallel
    #: engine re-runs shard prefixes once per worker).
    events_executed: int = 0
    #: The subset of ``events_executed`` that re-executed work already
    #: performed earlier in the search — the quantity the incremental
    #: engine exists to eliminate.  For the incremental engine this also
    #: counts local steps re-executed by journal-replay forks.
    events_replayed: int = 0
    #: Worker processes that actually ran the search.
    workers: int = 1
    #: Distinct states (orbits, under symmetry) expanded by the dedup
    #: engine; 0 for the non-dedup engines.  ``schedules_explored``
    #: counts every expansion, which can exceed this when a sleep-set
    #: arrival incompatible with the cached entry re-expands a state
    #: (the subset-reuse rule; the re-expansion takes over the cache
    #: slot); pruned arrivals are counted in :attr:`states_deduped` /
    #: :attr:`states_merged_symmetry` instead.
    states_seen: int = 0
    #: Branches pruned because their post-event state was already
    #: expanded — each one stood in for a whole re-explored subtree.
    states_deduped: int = 0
    #: Enabled branches skipped by the sleep-set reduction
    #: (``sleep_sets=True``): each skipped branch starts an interleaving
    #: of independent events that an already-explored sibling order
    #: covers state-for-state.
    states_pruned_sleep: int = 0
    #: Dedup-cache hits where the arriving state matched the cached
    #: representative only up to a pid permutation plus an injective
    #: content renaming (``symmetry="rename"``), not verbatim; the
    #: witnessing permutation is recorded on each replayed
    #: :class:`Violation`.
    states_merged_symmetry: int = 0
    #: Canonical state encodings paid by ``symmetry="rename"``: one per
    #: residual automorphism candidate per fingerprinted node (the
    #: canonical-labelling pass of
    #: :meth:`~repro.runtime.simulator.SimulationRun.orbit_key`; the
    #: enumeration this replaced paid |perms| per node).  0 without
    #: symmetry.
    orbit_encodings: int = 0
    #: Node expansions per decision depth (incremental engines only).
    expansions_by_depth: dict[int, int] = field(default_factory=dict)
    #: Dedup-cache hits (identity or symmetry) per decision depth.
    dedup_hits_by_depth: dict[int, int] = field(default_factory=dict)
    #: Independence-relation telemetry (``sleep_sets=True`` only):
    #: verdicts by the argument that carried them — ``dynamic``
    #: (independent, no pending crash), ``crash_proof`` (independent by
    #: the crash-aware victim-disjointness argument), ``static_table``
    #: (the static fallback proved a declined pair), ``conservative``
    #: (dependent, branch kept) — plus the memoization counters
    #: ``memo_queries``/``memo_hits`` of the interned-footprint verdict
    #: cache.  Like :attr:`events_executed`, these are telemetry, not
    #: part of the construction-identity contract: a resumed run
    #: re-consults the relation along its restored frontier path.
    independence_stats: dict[str, int] = field(default_factory=dict)
    #: Errors raised by the ``progress`` callback, as
    #: ``"ExceptionType: message"`` strings.  A raising callback is
    #: disabled after its first error and the search continues
    #: unperturbed — telemetry must never abort or reorder exploration,
    #: so the result is identical to a run without the callback except
    #: for this record.
    progress_errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def __str__(self) -> str:
        if self.aborted:
            coverage = "aborted"
        elif self.interrupted:
            coverage = "interrupted"
        elif self.exhausted:
            coverage = "exhaustive"
        else:
            coverage = "budget-capped"
        verdict = (
            "no violation"
            if self.ok
            else f"{len(self.violations)} violating schedule(s)"
        )
        return (
            f"{coverage} exploration: {self.terminal_schedules} terminal "
            f"schedules ({self.schedules_explored} prefixes, depth ≤ "
            f"{self.max_depth_seen}): {verdict}"
        )

    def violations_digest(self) -> str:
        """Order- and permutation-independent digest of the violation set.

        Hashes the sorted *set* of problem tuples: reductions may
        collapse redundant violating interleavings (fewer
        :class:`Violation` rows) and rename pids (different guides), but
        the distinct problem sets they report must survive — equal
        digests across engine variants is the reduction-soundness check,
        and the verification service's memo-equality check.
        """
        return stable_digest(
            "violations", sorted({v.problems for v in self.violations})
        )

    def to_json(self) -> dict:
        """A lossless JSON-compatible dict; inverse of :meth:`from_json`.

        Every field survives the round trip — violation guides and
        permutations, the per-depth counter maps (JSON object keys are
        strings; :meth:`from_json` restores the ``int`` depths), state
        and event counters, and recorded progress-callback errors — so a
        deserialized result is construction-identical (``==``) to the
        original.  This is the wire format of :mod:`repro.server` and
        the at-rest format of its memo store.
        """
        return {
            "schema": RESULT_SCHEMA,
            "schedules_explored": self.schedules_explored,
            "terminal_schedules": self.terminal_schedules,
            "violations": [v.to_json() for v in self.violations],
            "exhausted": self.exhausted,
            "max_depth_seen": self.max_depth_seen,
            "aborted": self.aborted,
            "interrupted": self.interrupted,
            "events_executed": self.events_executed,
            "events_replayed": self.events_replayed,
            "workers": self.workers,
            "states_seen": self.states_seen,
            "states_deduped": self.states_deduped,
            "states_pruned_sleep": self.states_pruned_sleep,
            "states_merged_symmetry": self.states_merged_symmetry,
            "orbit_encodings": self.orbit_encodings,
            "expansions_by_depth": {
                str(depth): count
                for depth, count in sorted(self.expansions_by_depth.items())
            },
            "dedup_hits_by_depth": {
                str(depth): count
                for depth, count in sorted(self.dedup_hits_by_depth.items())
            },
            "independence_stats": {
                source: count
                for source, count in sorted(self.independence_stats.items())
            },
            "progress_errors": list(self.progress_errors),
        }

    @classmethod
    def from_json(cls, data: Mapping) -> "ExplorationResult":
        """Rebuild an :class:`ExplorationResult` from :meth:`to_json`.

        Payloads are schema-versioned: fields introduced after a
        payload's schema take their defaults (a result recorded before
        ``interrupted`` existed simply was not interrupted; a schema-1
        result without ``workers`` ran on one), a payload from a *newer*
        schema than this engine understands is rejected with a clear
        :class:`ValueError`, and a payload missing a *core* field is
        reported by name instead of surfacing as a bare ``KeyError``.
        """
        _require_schema(data, "ExplorationResult")
        try:
            return cls(
                schedules_explored=int(data["schedules_explored"]),
                terminal_schedules=int(data["terminal_schedules"]),
                violations=[
                    Violation.from_json(v) for v in data["violations"]
                ],
                exhausted=bool(data["exhausted"]),
                max_depth_seen=int(data["max_depth_seen"]),
                aborted=bool(data["aborted"]),
                interrupted=bool(data.get("interrupted", False)),
                events_executed=int(data["events_executed"]),
                events_replayed=int(data["events_replayed"]),
                workers=int(data.get("workers", 1)),
                states_seen=int(data.get("states_seen", 0)),
                states_deduped=int(data.get("states_deduped", 0)),
                states_pruned_sleep=int(data.get("states_pruned_sleep", 0)),
                states_merged_symmetry=int(
                    data.get("states_merged_symmetry", 0)
                ),
                orbit_encodings=int(data.get("orbit_encodings", 0)),
                expansions_by_depth={
                    int(depth): int(count)
                    for depth, count in data.get(
                        "expansions_by_depth", {}
                    ).items()
                },
                dedup_hits_by_depth={
                    int(depth): int(count)
                    for depth, count in data.get(
                        "dedup_hits_by_depth", {}
                    ).items()
                },
                independence_stats={
                    str(source): int(count)
                    for source, count in data.get(
                        "independence_stats", {}
                    ).items()
                },
                progress_errors=[
                    str(e) for e in data.get("progress_errors", [])
                ],
            )
        except KeyError as exc:
            raise ValueError(
                f"ExplorationResult payload is missing required field "
                f"{exc.args[0]!r}"
            ) from exc


@dataclass(frozen=True)
class ProgressSnapshot:
    """One progress report from a running exploration.

    Delivered to the ``progress`` callback of :func:`explore_schedules`
    every ``progress_every`` node expansions.  ``elapsed`` and
    ``states_per_second`` are wall-clock telemetry; they never feed back
    into the search, which stays deterministic.
    """

    #: Nodes expanded so far (``schedules_explored``).
    expansions: int
    #: Terminal schedules visited so far.
    terminals: int
    #: Decision depth of the node whose expansion triggered this report.
    depth: int
    #: Wall-clock seconds since the exploration started.
    elapsed: float
    #: Expansions divided by ``elapsed`` (0.0 while the clock reads 0).
    states_per_second: float
    #: Snapshot of per-depth expansion counts (depth → count).
    expansions_by_depth: Mapping[int, int]
    #: Snapshot of per-depth dedup-cache hit counts (depth → count).
    dedup_hits_by_depth: Mapping[int, int]
    #: Snapshot of independence-verdict counters by source (see
    #: :attr:`ExplorationResult.independence_stats`); empty without the
    #: sleep-set reduction.
    independence_stats: Mapping[str, int] = field(default_factory=dict)

    def to_json(self) -> dict:
        """A lossless JSON-compatible dict; inverse of :meth:`from_json`.

        The wire format of the verification service's progress streams
        (:mod:`repro.server`): per-depth counter keys become strings in
        JSON and are restored to ``int`` on the way back.
        """
        return {
            "schema": RESULT_SCHEMA,
            "expansions": self.expansions,
            "terminals": self.terminals,
            "depth": self.depth,
            "elapsed": self.elapsed,
            "states_per_second": self.states_per_second,
            "expansions_by_depth": {
                str(depth): count
                for depth, count in sorted(self.expansions_by_depth.items())
            },
            "dedup_hits_by_depth": {
                str(depth): count
                for depth, count in sorted(self.dedup_hits_by_depth.items())
            },
            "independence_stats": {
                source: count
                for source, count in sorted(self.independence_stats.items())
            },
        }

    @classmethod
    def from_json(cls, data: Mapping) -> "ProgressSnapshot":
        """Rebuild a :class:`ProgressSnapshot` from :meth:`to_json`.

        Schema-versioned like :meth:`ExplorationResult.from_json`: older
        payloads default the fields they lack, newer schemas are
        rejected with a clear error, and a missing core field is
        reported by name rather than as a bare ``KeyError``.
        """
        _require_schema(data, "ProgressSnapshot")
        try:
            return cls(
                expansions=int(data["expansions"]),
                terminals=int(data["terminals"]),
                depth=int(data["depth"]),
                elapsed=float(data.get("elapsed", 0.0)),
                states_per_second=float(data.get("states_per_second", 0.0)),
                expansions_by_depth={
                    int(depth): int(count)
                    for depth, count in data.get(
                        "expansions_by_depth", {}
                    ).items()
                },
                dedup_hits_by_depth={
                    int(depth): int(count)
                    for depth, count in data.get(
                        "dedup_hits_by_depth", {}
                    ).items()
                },
                independence_stats={
                    str(source): int(count)
                    for source, count in data.get(
                        "independence_stats", {}
                    ).items()
                },
            )
        except KeyError as exc:
            raise ValueError(
                f"ProgressSnapshot payload is missing required field "
                f"{exc.args[0]!r}"
            ) from exc


ProgressCallback = Callable[[ProgressSnapshot], None]


# ---------------------------------------------------------------------------
# Properties and their incremental trackers
# ---------------------------------------------------------------------------


class PropertyTracker:
    """Terminal-state property evaluation fed step deltas along a branch.

    The incremental engine holds one tracker per search-tree node:
    :meth:`observe` receives the trace steps appended since the parent
    node, :meth:`fork` snapshots the tracker at a branch point, and
    :meth:`at_terminal` produces the violation list at a quiescent
    schedule.  This base class is the *stateless* adapter: it ignores
    deltas and evaluates a plain property callable on the terminal
    result, so forks can share the one instance.
    """

    def __init__(self, check: Property) -> None:
        self._check = check

    def observe(self, steps: Sequence[Step]) -> None:
        """Account trace steps appended since the previous call."""

    def fork(self) -> "PropertyTracker":
        """A tracker for a diverging branch (self when stateless)."""
        return self

    def at_terminal(self, result: SimulationResult) -> list[str]:
        """Violations of the property at a terminal schedule."""
        return self._check(result)


class _ChannelsTracker(PropertyTracker):
    """SR channel axioms maintained incrementally along a branch."""

    def __init__(self, n: int, *, assume_complete: bool) -> None:
        self._tracker = ChannelTracker(n)
        self._assume_complete = assume_complete

    def observe(self, steps: Sequence[Step]) -> None:
        for step in steps:
            self._tracker.observe(step)

    def fork(self) -> "_ChannelsTracker":
        clone = object.__new__(_ChannelsTracker)
        clone._tracker = self._tracker.fork()
        clone._assume_complete = self._assume_complete
        return clone

    def at_terminal(self, result: SimulationResult) -> list[str]:
        return self._tracker.report(
            assume_complete=self._assume_complete
        ).all_violations()


class _CombinedTracker(PropertyTracker):
    """Conjunction of several trackers (problems concatenated in order)."""

    def __init__(self, trackers: list[PropertyTracker]) -> None:
        self._trackers = trackers

    def observe(self, steps: Sequence[Step]) -> None:
        for tracker in self._trackers:
            tracker.observe(steps)

    def fork(self) -> "_CombinedTracker":
        return _CombinedTracker([t.fork() for t in self._trackers])

    def at_terminal(self, result: SimulationResult) -> list[str]:
        problems: list[str] = []
        for tracker in self._trackers:
            problems.extend(tracker.at_terminal(result))
        return problems


class _TerminalProperty:
    """A property with no incremental structure: evaluated at terminals."""

    def __init__(self, check: Property) -> None:
        self._check = check

    def __call__(self, result: SimulationResult) -> list[str]:
        return self._check(result)

    def tracker(self, n: int) -> PropertyTracker:
        return PropertyTracker(self._check)


class _ChannelsProperty:
    """The SR channel axioms, incremental when used by the explorer."""

    def __init__(self, *, assume_complete: bool) -> None:
        self._assume_complete = assume_complete

    def __call__(self, result: SimulationResult) -> list[str]:
        return check_channels(
            result.execution, assume_complete=self._assume_complete
        ).all_violations()

    def tracker(self, n: int) -> PropertyTracker:
        return _ChannelsTracker(n, assume_complete=self._assume_complete)


class _CombinedProperty:
    """Conjunction of several properties."""

    def __init__(self, properties: tuple[object, ...]) -> None:
        self._properties = [_as_property(p) for p in properties]

    def __call__(self, result: SimulationResult) -> list[str]:
        problems: list[str] = []
        for prop in self._properties:
            problems.extend(prop(result))
        return problems

    def tracker(self, n: int) -> PropertyTracker:
        return _CombinedTracker(
            [p.tracker(n) for p in self._properties]
        )


def _as_property(prop: object):
    """Normalize a plain callable into a tracker-capable property."""
    if hasattr(prop, "tracker") and callable(getattr(prop, "tracker")):
        return prop
    if not callable(prop):
        raise TypeError(f"property must be callable, got {prop!r}")
    return _TerminalProperty(prop)


def spec_property(
    spec: BroadcastSpec, *, assume_complete: bool = True
) -> Property:
    """Adapt a broadcast specification into a terminal-state property."""

    def check(result: SimulationResult) -> list[str]:
        verdict = spec.admits(
            result.execution.broadcast_projection(),
            assume_complete=assume_complete,
        )
        return verdict.all_violations()

    return _TerminalProperty(check)


def channels_property(*, assume_complete: bool = True) -> Property:
    """The SR channel axioms as a terminal-state property.

    When passed to :func:`explore_schedules` this property is evaluated
    *incrementally*: the explorer feeds it step deltas along each DFS
    branch, so each trace step is scanned once per tree edge instead of
    once per terminal-times-depth.
    """
    return _ChannelsProperty(assume_complete=assume_complete)


def combine_properties(*properties: Property) -> Property:
    """Conjunction of several properties (incremental where they are)."""
    return _CombinedProperty(tuple(properties))


# ---------------------------------------------------------------------------
# The incremental engine
# ---------------------------------------------------------------------------


class _Cursor:
    """One search-tree node: a run handle plus its property tracker."""

    __slots__ = ("handle", "tracker", "mark")

    def __init__(
        self, handle: SimulationRun, tracker: PropertyTracker, mark: int
    ) -> None:
        self.handle = handle
        self.tracker = tracker
        self.mark = mark

    def fork(self) -> "_Cursor":
        return _Cursor(self.handle.fork(), self.tracker.fork(), self.mark)

    def sync(self) -> None:
        """Feed the tracker every trace step recorded since last sync."""
        new_steps = self.handle.trace.since(self.mark)
        if new_steps:
            self.tracker.observe(new_steps)
            self.mark += len(new_steps)


@dataclass
class _SubtreeOutcome:
    """Result of exploring one subtree (picklable, for worker returns).

    ``violations`` carries each violation together with the ordinal of
    its terminal within the subtree's depth-first terminal sequence, so
    the merge step can truncate precisely at a global budget.
    """

    schedules_explored: int = 0
    terminal_schedules: int = 0
    violations: list[tuple[int, Violation]] = field(default_factory=list)
    exhausted: bool = True
    aborted: bool = False
    interrupted: bool = False
    max_depth_seen: int = 0
    events_executed: int = 0
    events_replayed: int = 0
    states_seen: int = 0
    states_deduped: int = 0
    states_pruned_sleep: int = 0
    states_merged_symmetry: int = 0
    orbit_encodings: int = 0
    expansions_by_depth: dict[int, int] = field(default_factory=dict)
    dedup_hits_by_depth: dict[int, int] = field(default_factory=dict)
    independence_stats: dict[str, int] = field(default_factory=dict)
    progress_errors: list[str] = field(default_factory=list)


@dataclass
class _Summary:
    """One fully-explored subtree, relative to its root (the cache value).

    ``violations`` holds ``(ordinal, guide, problems, permutation)``
    tuples: ``ordinal`` is the violating terminal's position in the
    subtree's depth-first terminal sequence.  Without symmetry,
    ``guide`` is the decision *suffix* from the subtree root (rebased
    onto each arrival's own prefix on replay) and ``permutation`` is
    always ``None``.  Under ``symmetry="rename"``, guides are stored
    *absolute* — the full decision path of the run that first discovered
    the violation — because an arrival that matches only up to renaming
    enumerates its choices in a different order, so suffix rebasing
    would produce an inexecutable guide; ``permutation`` then maps the
    subtree root's frame onto the guide run's frame.  ``height`` is the
    relative depth of the deepest descendant; ``truncated`` marks a
    subtree some branch of which was cut at ``max_depth`` (its shape
    depends on the remaining depth budget, so reuse is restricted — see
    :func:`_entry_reusable`).
    """

    terminals: int = 0
    violations: list[
        tuple[int, tuple[int, ...], tuple[str, ...], tuple[int, ...] | None]
    ] = field(default_factory=list)
    height: int = 0
    truncated: bool = False


@dataclass
class _CacheEntry:
    """One dedup-cache slot: a summary plus what identifies arrivals.

    ``raw`` is the representative's verbatim fingerprint — an arrival
    matching it is an *identity* hit (classic dedup, guides rebased); an
    arrival matching only the orbit-canonical cache key is a *symmetry*
    merge, replayed through the witnessing permutation against ``perm``
    (the representative's canonicalizing permutation).  ``base`` is the
    representative's absolute decision path, the base of symmetry-mode
    guides.  ``sleep_keys`` is the key set of the sleep set the summary
    was recorded under, in the representative's own frame: the summary
    stands in for an arrival iff the arrival's sleep set is a superset,
    the bitwise test ``stored & ~arrival == 0`` on the interned-key
    bitmasks of :meth:`_IndependenceOracle.mask_of` (the subset-reuse
    rule — the recorded subtree explored at least
    everything the arrival may explore).
    """

    depth: int
    summary: _Summary
    base: tuple[int, ...]
    raw: str
    sleep_keys: int
    perm: tuple[int, ...] | None


# -- sleep sets and symmetry: key and witness helpers -----------------------

#: A sleep set: *interned* choice identity (``choice_key`` through
#: :meth:`_IndependenceOracle.intern_key`) → the footprint the event had
#: when it was explored and put to sleep.  Footprints persist while the
#: event stays asleep: every event taken since was independent of it, so
#: what it touches cannot have changed.  Interned ids are
#: per-exploration and not run-stable, so every serialization boundary
#: (checkpoints, shard handoff) carries key *tuples* and re-interns on
#: the way in.
_SleepSet = dict[int, Footprint]

#: A tuple-keyed sleep set: the at-rest / cross-process form, and the
#: working form of the breadth-first frontier expansion.
_PortableSleepSet = dict[tuple, Footprint]


def _map_sleep_key(key: tuple, permutation: Sequence[int]) -> tuple:
    """The image of a sleep-set key under a pid permutation."""
    if key[0] == "recv":
        _, sender, receiver, seq = key
        return ("recv", permutation[sender], permutation[receiver], seq)
    kind, pid = key
    return (kind, permutation[pid])


def _witness_permutation(
    arrival: Sequence[int], representative: Sequence[int]
) -> tuple[int, ...]:
    """The pid map from an arriving state onto its cached representative.

    The arrival canonicalizes under ``arrival`` and the representative
    under ``representative`` onto the same encoding, so arrival pid
    ``p`` plays the role of representative pid ``w[p]`` with
    ``representative[w[p]] == arrival[p]``.
    """
    inverse = [0] * len(representative)
    for source, image in enumerate(representative):
        inverse[image] = source
    return tuple(inverse[arrival[p]] for p in range(len(arrival)))


def _transform_summary(summary: _Summary, witness: Sequence[int]) -> _Summary:
    """Re-frame a cached summary for an arrival related by ``witness``.

    Guides are absolute (symmetry mode) and stay unchanged; each
    violation's permutation is composed so it maps the *arrival's* frame
    onto the guide run's frame.
    """
    violations = [
        (
            ordinal,
            guide,
            problems,
            tuple(witness)
            if perm is None
            else tuple(perm[witness[p]] for p in range(len(witness))),
        )
        for ordinal, guide, problems, perm in summary.violations
    ]
    return _Summary(
        terminals=summary.terminals,
        violations=violations,
        height=summary.height,
        truncated=summary.truncated,
    )


def _renaming_groups(
    simulator: Simulator,
    scripts: Mapping[int, Sequence[Hashable]],
    crash_schedule: CrashSchedule | None,
) -> tuple[tuple[int, ...], ...]:
    """The interchangeable-pid groups ``symmetry="rename"`` may act on.

    Gated on the algorithm's own declaration
    (:meth:`~repro.runtime.process.BroadcastProcess.symmetric_processes`)
    and on a pid-uniform oracle policy — without either, the reduction
    is inert (no groups, classic dedup).  Declared groups are then
    refined by what the *configuration* distinguishes: crash-faulty pids
    are pinned (crash schedules are pid-keyed and not relabeled), as are
    pids with :class:`~repro.runtime.simulator.Gated` script entries
    (gates couple pids through content), and pids only stay
    interchangeable when their scripts have the same shape (contents are
    handled by the injective renaming; arity is not).  The groups are
    further refined *per state* by the canonical-labelling pass
    (:meth:`~repro.runtime.simulator.SimulationRun.orbit_key`), which
    splits them by per-pid invariants before encoding — the permutations
    themselves are never enumerated here.
    """
    declared = simulator.algorithm_factory(0, simulator.n).symmetric_processes()
    if declared is None:
        return ()
    if not simulator.ksa_policy.pid_uniform:
        return ()
    faulty = (
        crash_schedule.faulty() if crash_schedule is not None else frozenset()
    )

    def shape(p: int) -> tuple[str, ...]:
        return tuple(
            "gated" if isinstance(entry, Gated) else "plain"
            for entry in scripts.get(p, ())
        )

    groups: list[tuple[int, ...]] = []
    for group in declared:
        by_shape: dict[tuple[str, ...], list[int]] = {}
        for p in group:
            if p in faulty or "gated" in shape(p):
                continue
            by_shape.setdefault(shape(p), []).append(p)
        groups.extend(
            tuple(g) for g in by_shape.values() if len(g) > 1
        )
    return tuple(groups)


def _entry_reusable(
    entry: _Summary, cached_depth: int, depth: int, max_depth: int
) -> bool:
    """May this cached summary stand in for expansion at ``depth``?

    Fingerprints include the decision count, so a hit is necessarily at
    the depth the entry was recorded (converged sequences consumed the
    same number of decisions) and these guards are defensive: a
    depth-truncated subtree is only reused at the exact recording depth
    (elsewhere the ``max_depth`` cut would fall differently), and an
    untruncated one only where its height still fits under the bound.
    Together they enforce the same-or-shallower-depth discipline of
    classic stateful search.
    """
    if entry.truncated:
        return cached_depth == depth
    return depth + entry.height <= max_depth


# -- checkpoint encoding of engine-private search state ---------------------
#
# The leaf codecs (footprints, keys, sleep sets) live in
# repro.runtime.checkpoint; the structures below are private to this
# engine, so their JSON forms are too.


def _summary_to_json(summary: _Summary) -> dict:
    return {
        "terminals": summary.terminals,
        "violations": [
            [
                ordinal,
                list(guide),
                list(problems),
                None if perm is None else list(perm),
            ]
            for ordinal, guide, problems, perm in summary.violations
        ],
        "height": summary.height,
        "truncated": summary.truncated,
    }


def _summary_from_json(data: Mapping) -> _Summary:
    return _Summary(
        terminals=int(data["terminals"]),
        violations=[
            (
                int(ordinal),
                tuple(int(b) for b in guide),
                tuple(str(p) for p in problems),
                None if perm is None else tuple(int(p) for p in perm),
            )
            for ordinal, guide, problems, perm in data["violations"]
        ],
        height=int(data["height"]),
        truncated=bool(data["truncated"]),
    )


def _mask_to_keys(mask: int, oracle: _IndependenceOracle) -> list[tuple]:
    """The key tuples behind a sleep-key bitmask (codec boundary)."""
    keys: list[tuple] = []
    while mask:
        bit = mask & -mask
        mask ^= bit
        keys.append(oracle.key_tuple(bit.bit_length() - 1))
    return keys


def _cache_to_json(
    cache: Mapping[str, _CacheEntry], oracle: _IndependenceOracle
) -> list:
    # Interned ids are per-exploration, so the at-rest form carries the
    # key tuples behind each entry's sleep-key bitmask; resume re-interns.
    return [
        [
            key,
            {
                "depth": entry.depth,
                "summary": _summary_to_json(entry.summary),
                "base": list(entry.base),
                "raw": entry.raw,
                "sleep_keys": sorted(
                    (
                        _key_to_json(k)
                        for k in _mask_to_keys(entry.sleep_keys, oracle)
                    ),
                    key=repr,
                ),
                "perm": None if entry.perm is None else list(entry.perm),
            },
        ]
        for key, entry in sorted(cache.items())
    ]


def _cache_from_json(
    data: list, oracle: _IndependenceOracle
) -> dict[str, _CacheEntry]:
    cache: dict[str, _CacheEntry] = {}
    for key, entry in data:
        cache[str(key)] = _CacheEntry(
            depth=int(entry["depth"]),
            summary=_summary_from_json(entry["summary"]),
            base=tuple(int(b) for b in entry["base"]),
            raw=str(entry["raw"]),
            sleep_keys=oracle.mask_of(
                oracle.intern_key(_key_from_json(k))
                for k in entry["sleep_keys"]
            ),
            perm=(
                None
                if entry["perm"] is None
                else tuple(int(p) for p in entry["perm"])
            ),
        )
    return cache


def _outcome_to_json(out: _SubtreeOutcome) -> dict:
    return {
        "schedules_explored": out.schedules_explored,
        "terminal_schedules": out.terminal_schedules,
        "violations": [
            [ordinal, violation.to_json()]
            for ordinal, violation in out.violations
        ],
        "exhausted": out.exhausted,
        "aborted": out.aborted,
        "interrupted": out.interrupted,
        "max_depth_seen": out.max_depth_seen,
        "events_executed": out.events_executed,
        "events_replayed": out.events_replayed,
        "states_seen": out.states_seen,
        "states_deduped": out.states_deduped,
        "states_pruned_sleep": out.states_pruned_sleep,
        "states_merged_symmetry": out.states_merged_symmetry,
        "orbit_encodings": out.orbit_encodings,
        "expansions_by_depth": {
            str(d): c for d, c in sorted(out.expansions_by_depth.items())
        },
        "dedup_hits_by_depth": {
            str(d): c for d, c in sorted(out.dedup_hits_by_depth.items())
        },
        "independence_stats": {
            s: c for s, c in sorted(out.independence_stats.items())
        },
        "progress_errors": list(out.progress_errors),
    }


def _outcome_from_json(data: Mapping) -> _SubtreeOutcome:
    return _SubtreeOutcome(
        schedules_explored=int(data["schedules_explored"]),
        terminal_schedules=int(data["terminal_schedules"]),
        violations=[
            (int(ordinal), Violation.from_json(violation))
            for ordinal, violation in data["violations"]
        ],
        exhausted=bool(data["exhausted"]),
        aborted=bool(data["aborted"]),
        interrupted=bool(data["interrupted"]),
        max_depth_seen=int(data["max_depth_seen"]),
        events_executed=int(data["events_executed"]),
        events_replayed=int(data["events_replayed"]),
        states_seen=int(data["states_seen"]),
        states_deduped=int(data["states_deduped"]),
        states_pruned_sleep=int(data["states_pruned_sleep"]),
        states_merged_symmetry=int(data["states_merged_symmetry"]),
        orbit_encodings=int(data["orbit_encodings"]),
        expansions_by_depth={
            int(d): int(c) for d, c in data["expansions_by_depth"].items()
        },
        dedup_hits_by_depth={
            int(d): int(c) for d, c in data["dedup_hits_by_depth"].items()
        },
        independence_stats={
            str(s): int(c)
            for s, c in data.get("independence_stats", {}).items()
        },
        progress_errors=[str(e) for e in data["progress_errors"]],
    )


class _LiveFrame:
    """One in-progress DFS level, captured for checkpoint serialization.

    Holds *references* to the level's live sleep/explored dicts (and,
    under dedup, its partial summary): frames are only serialized at a
    descendant's node entry, where those objects' current contents are
    exactly the level's state as of the recorded branch.
    """

    __slots__ = (
        "branch", "sleep", "explored", "key", "raw", "perm", "summary"
    )

    def __init__(
        self,
        branch: int,
        sleep: _SleepSet,
        explored: _SleepSet,
        key: str | None = None,
        raw: str | None = None,
        perm: tuple[int, ...] | None = None,
        summary: _Summary | None = None,
    ) -> None:
        self.branch = branch
        self.sleep = sleep
        self.explored = explored
        self.key = key
        self.raw = raw
        self.perm = perm
        self.summary = summary

    def to_json(self, oracle: _IndependenceOracle) -> dict:
        level: dict = {
            "branch": self.branch,
            "sleep": sleep_to_json(
                {oracle.key_tuple(k): fp for k, fp in self.sleep.items()}
            ),
            "explored": sleep_to_json(
                {oracle.key_tuple(k): fp for k, fp in self.explored.items()}
            ),
        }
        if self.summary is not None:
            level["dedup"] = {
                "key": self.key,
                "raw": self.raw,
                "perm": None if self.perm is None else list(self.perm),
                "summary": _summary_to_json(self.summary),
            }
        return level


class _ResumeLevel:
    """One decoded checkpoint frame, consumed during the resume descent."""

    __slots__ = (
        "branch", "sleep", "explored", "key", "raw", "perm", "summary"
    )

    def __init__(self, data: Mapping) -> None:
        self.branch = int(data["branch"])
        self.sleep = sleep_from_json(data["sleep"])
        self.explored = sleep_from_json(data["explored"])
        dedup = data.get("dedup")
        if dedup is None:
            self.key: str | None = None
            self.raw: str | None = None
            self.perm: tuple[int, ...] | None = None
            self.summary: _Summary | None = None
        else:
            self.key = str(dedup["key"])
            self.raw = str(dedup["raw"])
            self.perm = (
                None
                if dedup["perm"] is None
                else tuple(int(p) for p in dedup["perm"])
            )
            self.summary = _summary_from_json(dedup["summary"])


def _explore_subtree(
    simulator: Simulator,
    scripts: Mapping[int, Sequence[Hashable]],
    property_check: object,
    crash_schedule: CrashSchedule | None,
    prefix: tuple[int, ...],
    max_schedules: int,
    max_depth: int,
    stop_at_first_violation: bool,
    dedup: bool = False,
    sleep_sets: bool = False,
    groups: Sequence[tuple[int, ...]] = (),
    initial_sleep: _PortableSleepSet | None = None,
    progress: ProgressCallback | None = None,
    progress_every: int = 1000,
    static_independence=None,
    crash_aware: bool = True,
    cancel=None,
    checkpoint_to: str | None = None,
    checkpoint_every: int = 1000,
    resume: Mapping | None = None,
    config: str = "",
) -> _SubtreeOutcome:
    """Incremental DFS below ``prefix`` (replayed once to materialize).

    With ``dedup=True`` the DFS consults a per-call transposition cache:
    a node whose state fingerprint was already fully expanded is pruned,
    and the cached subtree summary is replayed in its place, reproducing
    the exact terminal counts and violations of a re-expansion.

    ``sleep_sets=True`` adds the sleep-set partial-order reduction: a
    branch whose choice is asleep (its footprint independent of every
    event taken since a sibling order explored it) is skipped before
    forking; ``initial_sleep`` seeds the root's sleep set (parallel
    shards inherit theirs from the frontier expansion).  Cached
    summaries are reused under the subset-reuse rule: the sleep set is
    not part of the cache key, and an entry stands in for any arrival
    sleeping at least what the entry slept.
    ``static_independence`` refines the independence relation with a
    proven-commutation table and ``crash_aware`` selects between the
    crash-aware dynamic relation (default) and its pre-crash-aware
    blanket form (see :class:`_IndependenceOracle`).  A non-empty
    ``groups`` tuple
    switches the dedup cache to orbit-canonical keys (see
    :meth:`~repro.runtime.simulator.SimulationRun.orbit_key`).

    ``cancel``/``checkpoint_to``/``checkpoint_every``/``resume`` are the
    durability hooks (module docstring, *Checkpoint and resume*):
    ``resume`` is an already-verified checkpoint body whose recorded
    frame stack is replayed branch-for-branch without re-counting, and
    ``config`` is the configuration digest stamped into every
    checkpoint this call writes.  The caller is responsible for having
    matched ``config`` against a resumed body's own stamp.
    """
    if resume is not None and resume.get("complete"):
        # The interrupted search had already finished (the final
        # checkpoint landed); its outcome is the whole answer.
        return _outcome_from_json(resume["outcome"])
    indep = _IndependenceOracle(static_independence, crash_aware=crash_aware)
    if resume is not None:
        out = _outcome_from_json(resume["outcome"])
        cache = _cache_from_json(resume["cache"], indep)
        resume_stack = [_ResumeLevel(level) for level in resume["frames"]]
    else:
        out = _SubtreeOutcome()
        cache = {}
        resume_stack = []
    # Verdict counters accumulated before a resume; the oracle's own
    # counters are merged on top at every flush.
    stats_base = dict(out.independence_stats)

    def flush_stats() -> None:
        merged = dict(stats_base)
        for source, count in indep.stats.items():
            if count:
                merged[source] = merged.get(source, 0) + count
        out.independence_stats = merged

    prop = _as_property(property_check)
    handle = simulator.begin(scripts, crash_schedule=crash_schedule)
    for branch in prefix:
        handle.choices()
        handle.advance(branch)
    out.events_executed += len(prefix)
    out.events_replayed += len(prefix)
    cursor = _Cursor(handle, prop.tracker(simulator.n), 0)
    path = list(prefix)
    started = _now() if progress is not None else 0.0
    frames: list[_LiveFrame] = []
    ckpt_mark = out.schedules_explored

    def snapshot(*, complete: bool) -> None:
        """Write the current search state to the checkpoint file.

        Captured at a node's entry, *before* that node is counted: the
        serialized counters plus the frame stack describe exactly the
        work completed so far, and the resume descent re-enters the
        frontier node as a normal (fully counted) expansion.
        """
        if checkpoint_to is None:
            return
        flush_stats()
        body: dict = {
            "kind": "subtree",
            "config": config,
            "complete": complete,
            "outcome": _outcome_to_json(out),
            "frames": (
                [] if complete else [f.to_json(indep) for f in frames]
            ),
            "cache": (
                _cache_to_json(cache, indep)
                if dedup and not complete
                else []
            ),
        }
        write_checkpoint(checkpoint_to, body)

    def checkpoint_due() -> bool:
        nonlocal ckpt_mark
        if checkpoint_to is None:
            return False
        if out.schedules_explored - ckpt_mark < checkpoint_every:
            return False
        ckpt_mark = out.schedules_explored
        return True

    def interrupt() -> None:
        """Persist the frontier, then mark the partial result.

        Order matters: the checkpoint captures the honest pre-cut state
        (``interrupted`` stays False inside it — a resumed search is not
        interrupted), and only the value *returned* from this run
        carries the interruption flags.
        """
        snapshot(complete=False)
        out.interrupted = True
        out.exhausted = False

    def note_expansion(depth: int) -> None:
        """Per-depth accounting plus the periodic progress callback.

        A raising callback must not abort the search mid-subtree (it
        used to, leaving engine-dependent partial state): the error is
        caught, recorded on the outcome, and the callback is disabled —
        exploration continues exactly as it would have without it.
        """
        nonlocal progress
        out.expansions_by_depth[depth] = (
            out.expansions_by_depth.get(depth, 0) + 1
        )
        if (
            progress is not None
            and out.schedules_explored % progress_every == 0
        ):
            elapsed = _now() - started
            flush_stats()
            snapshot = ProgressSnapshot(
                expansions=out.schedules_explored,
                terminals=out.terminal_schedules,
                depth=depth,
                elapsed=elapsed,
                states_per_second=(
                    out.schedules_explored / elapsed
                    if elapsed > 0
                    else 0.0
                ),
                expansions_by_depth=dict(out.expansions_by_depth),
                dedup_hits_by_depth=dict(out.dedup_hits_by_depth),
                independence_stats=dict(out.independence_stats),
            )
            try:
                progress(snapshot)
            except Exception as exc:
                out.progress_errors.append(f"{type(exc).__name__}: {exc}")
                progress = None

    def visit_terminal(cursor: _Cursor) -> tuple[tuple[str, ...], bool]:
        """Account one terminal; returns (problems, keep_going)."""
        ordinal = out.terminal_schedules
        out.terminal_schedules += 1
        problems = tuple(
            cursor.tracker.at_terminal(cursor.handle.result())
        )
        if problems:
            out.violations.append((ordinal, Violation(tuple(path), problems)))
            if stop_at_first_violation:
                out.aborted = True
                out.exhausted = False
                return problems, False
        return problems, True

    intern_key = indep.intern_key

    def active_branches(
        choices: list, sleep: _SleepSet
    ) -> tuple[list[int], list[int]]:
        """The non-slept branch indices, and every branch's interned key."""
        keys = [intern_key(choice_key(choice)) for choice in choices]
        active = [b for b in range(len(choices)) if keys[b] not in sleep]
        out.states_pruned_sleep += len(choices) - len(active)
        return active, keys

    def child_sleep_set(
        child: _Cursor, sleep: _SleepSet, explored: _SleepSet
    ) -> tuple[_SleepSet, Footprint | None]:
        """The sleep set below ``child``, and the taken event's footprint.

        The child keeps every slept or earlier-explored sibling event
        that is independent of the event just taken (Godefroid's
        sleep-set recurrence); a dependent event wakes up.
        """
        child.handle.choices()  # prelude: finalizes the footprint
        taken = child.handle.last_footprint
        kept = {
            key: footprint
            for candidates in (sleep, explored)
            for key, footprint in candidates.items()
            if indep(footprint, taken)
        }
        return kept, taken

    def restored_structure(
        cursor: _Cursor, level: _ResumeLevel
    ) -> tuple[_SleepSet, list[int], list[int], list[int], _SleepSet]:
        """Recompute a checkpointed node's choice structure on re-entry.

        Everything per-level is a deterministic function of the node's
        state and the restored sleep set, so only the sleep set itself
        (dedup's subset-reuse rule may have shrunk it at entry, a
        history-dependent mutation) and the explored-sibling footprints
        come from the checkpoint — both re-interned here, because
        interned key ids are not stable across runs.  Nothing is
        counted — the restored counters already include this node's
        expansion.
        """
        choices = cursor.handle.choices()
        cursor.sync()
        sleep = {
            intern_key(key): fp for key, fp in level.sleep.items()
        }
        if sleep_sets:
            keys = [intern_key(choice_key(choice)) for choice in choices]
            active = [
                b for b in range(len(choices)) if keys[b] not in sleep
            ]
        else:
            keys = []
            active = list(range(len(choices)))
        if level.branch not in active:
            raise CheckpointError(
                f"checkpoint frame at depth {cursor.handle.decisions} "
                f"records branch {level.branch}, which is not enabled at "
                f"the restored node — the checkpoint does not match this "
                f"configuration"
            )
        pending = active[active.index(level.branch):]
        explored = {
            intern_key(key): fp for key, fp in level.explored.items()
        }
        return sleep, keys, active, pending, explored

    def dfs(
        cursor: _Cursor,
        depth: int,
        sleep: _SleepSet,
        resume_level: _ResumeLevel | None = None,
        resume_rest: "Sequence[_ResumeLevel] | None" = None,
    ) -> bool:
        """Returns False to abort the whole search.

        A non-``None`` ``resume_level`` re-enters a checkpointed node:
        its structure is restored instead of counted (the restored
        counters already include it), the recorded branch is taken
        first, and ``resume_rest`` descends the rest of the recorded
        frontier the same way.
        """
        if resume_level is None:
            if cancel is not None and cancel.is_set():
                interrupt()
                return False
            if checkpoint_due():
                snapshot(complete=False)
            if out.terminal_schedules >= max_schedules:
                out.exhausted = False
                return False
            out.schedules_explored += 1
            note_expansion(depth)
            out.max_depth_seen = max(out.max_depth_seen, depth)
            choices = cursor.handle.choices()
            cursor.sync()
            if not choices:
                _, keep_going = visit_terminal(cursor)
                return keep_going
            if depth >= max_depth:
                out.exhausted = False
                return True
            if sleep_sets:
                active, keys = active_branches(choices, sleep)
            else:
                active, keys = list(range(len(choices))), []
            explored: _SleepSet = {}
            pending = active
        else:
            sleep, keys, active, pending, explored = restored_structure(
                cursor, resume_level
            )
        last = active[-1] if active else None
        descend = resume_rest
        for branch in pending:
            if branch != last:
                child = cursor.fork()
                out.events_replayed += child.handle.replayed_steps
            else:
                child = cursor  # the last branch extends this node in place
            child.handle.advance(branch)
            out.events_executed += 1
            if sleep_sets:
                child_sleep, taken = child_sleep_set(child, sleep, explored)
            else:
                child_sleep, taken = sleep, None
            path.append(branch)
            frames.append(_LiveFrame(branch, sleep, explored))
            if descend:
                keep_going = dfs(
                    child, depth + 1, child_sleep, descend[0], descend[1:]
                )
            else:
                keep_going = dfs(child, depth + 1, child_sleep)
            descend = None  # only the recorded branch resumes a frame
            frames.pop()
            path.pop()
            if not keep_going:
                return False
            if sleep_sets and taken is not None:
                explored[keys[branch]] = taken
        return True

    def replay(summary: _Summary, base: tuple[int, ...] | None) -> bool:
        """Emit a cached subtree's terminals and violations.

        ``base`` is the arrival's own path when the summary carries
        relative suffixes (classic dedup: guides are rebased onto it),
        or ``None`` when it carries absolute guides (symmetry mode).
        Mirrors what depth-first re-expansion would have reported: the
        schedule budget can cut the virtual subtree mid-way, and
        ``stop_at_first_violation`` aborts at its first violating
        terminal.  Returns False to abort the whole search.
        """
        budget_left = max_schedules - out.terminal_schedules
        take = min(summary.terminals, budget_left)
        start = out.terminal_schedules
        for ordinal, guide, problems, perm in summary.violations:
            if ordinal >= take:
                break
            full = guide if base is None else base + guide
            out.violations.append(
                (start + ordinal, Violation(full, problems, perm))
            )
            if stop_at_first_violation:
                out.terminal_schedules = start + ordinal + 1
                out.aborted = True
                out.exhausted = False
                return False
        out.terminal_schedules = start + take
        if take < summary.terminals:
            out.exhausted = False
            return False
        return True

    def dedup_dfs(
        cursor: _Cursor,
        depth: int,
        sleep: _SleepSet,
        resume_level: _ResumeLevel | None = None,
        resume_rest: "Sequence[_ResumeLevel] | None" = None,
    ) -> _Summary | None:
        """DFS with transposition pruning (plus sleep/symmetry, if on).

        Returns the subtree's summary — cached for later arrivals at the
        same state, re-framed through the witnessing permutation on
        symmetry merges — or ``None`` when the search was cut (budget,
        abort, cancellation): partial summaries are never cached.
        Resume parameters as on ``dfs``; a re-entered node restores its
        cache key, canonicalizing permutation, and partial summary from
        the checkpoint frame instead of recomputing (and recounting)
        them.
        """

        def remember(summary: _Summary) -> None:
            """Store the summary — unless the cached one covers more.

            A slot is taken over only when the new summary is at least
            as reusable as the stored one: recorded under a subset of
            its sleep keys (every arrival the stored entry served, plus
            the less-slept ones that had to re-expand) and not newly
            truncated.  Anything else would shrink the compatible class.
            """
            existing = cache.get(key)
            if existing is not None:
                if summary.truncated and not existing.summary.truncated:
                    return
                if sleep_sets:
                    own = indep.canonical_mask(indep.mask_of(sleep), perm)
                    stored = indep.canonical_mask(
                        existing.sleep_keys, existing.perm
                    )
                    if own & ~stored:
                        return
            cache[key] = _CacheEntry(
                depth, summary, tuple(path), raw, indep.mask_of(sleep), perm
            )

        if resume_level is None:
            if cancel is not None and cancel.is_set():
                interrupt()
                return None
            if checkpoint_due():
                snapshot(complete=False)
            if out.terminal_schedules >= max_schedules:
                out.exhausted = False
                return None
            choices = cursor.handle.choices()  # prelude before fingerprinting
            cursor.sync()
            raw = cursor.handle.fingerprint()
            if groups:
                key, perm, encodings = cursor.handle.orbit_key(groups)
                out.orbit_encodings += encodings
            else:
                key, perm = raw, None
            entry = cache.get(key)
            if entry is not None and _entry_reusable(
                entry.summary, entry.depth, depth, max_depth
            ):
                # Subset-reuse: the stored subtree covers this arrival
                # iff the arrival sleeps at least what the
                # representative slept (compared in the canonical frame
                # under symmetry).  A less slept arrival needs subtrees
                # the entry skipped, so it falls through and re-expands
                # — under the *intersection* of the two sleep sets, so
                # the replacing summary serves the stored entry's
                # arrival pattern as well as this one and the slot
                # stabilizes after at most one re-expansion.
                stored_mask = indep.canonical_mask(
                    entry.sleep_keys, entry.perm
                )
                compatible = not sleep_sets or not (
                    stored_mask
                    & ~indep.canonical_mask(indep.mask_of(sleep), perm)
                )
                if not compatible:
                    sleep = {
                        k: fp
                        for k, fp in sleep.items()
                        if stored_mask
                        >> (
                            k
                            if perm is None
                            else intern_key(
                                _map_sleep_key(indep.key_tuple(k), perm)
                            )
                        )
                        & 1
                    }
                if compatible:
                    if entry.raw == raw:
                        out.states_deduped += 1
                        summary = entry.summary
                        base = None if groups else tuple(path)
                    else:
                        out.states_merged_symmetry += 1
                        assert perm is not None and entry.perm is not None
                        witness = _witness_permutation(perm, entry.perm)
                        summary = _transform_summary(entry.summary, witness)
                        base = None
                    out.dedup_hits_by_depth[depth] = (
                        out.dedup_hits_by_depth.get(depth, 0) + 1
                    )
                    out.max_depth_seen = max(
                        out.max_depth_seen, depth + summary.height
                    )
                    if summary.truncated:
                        out.exhausted = False
                    if not replay(summary, base):
                        return None
                    return summary
            out.schedules_explored += 1
            if entry is None:
                out.states_seen += 1  # first expansion of this state/orbit
            note_expansion(depth)
            out.max_depth_seen = max(out.max_depth_seen, depth)
            if not choices:
                problems, keep_going = visit_terminal(cursor)
                summary = _Summary(terminals=1)
                if problems:
                    own = tuple(path) if groups else ()
                    summary.violations.append((0, own, problems, None))
                if not keep_going:
                    return None
                remember(summary)
                return summary
            if depth >= max_depth:
                out.exhausted = False
                summary = _Summary(truncated=True)
                remember(summary)
                return summary
            summary = _Summary()
            if sleep_sets:
                active, keys = active_branches(choices, sleep)
            else:
                active, keys = list(range(len(choices))), []
            explored: _SleepSet = {}
            pending = active
        else:
            sleep, keys, active, pending, explored = restored_structure(
                cursor, resume_level
            )
            key, raw = resume_level.key, resume_level.raw
            perm = resume_level.perm
            assert resume_level.summary is not None
            summary = resume_level.summary
        last = active[-1] if active else None
        descend = resume_rest
        for branch in pending:
            if branch != last:
                child = cursor.fork()
                out.events_replayed += child.handle.replayed_steps
            else:
                child = cursor  # the last branch extends this node in place
            child.handle.advance(branch)
            out.events_executed += 1
            if sleep_sets:
                child_sleep, taken = child_sleep_set(child, sleep, explored)
            else:
                child_sleep, taken = sleep, None
            path.append(branch)
            frames.append(
                _LiveFrame(branch, sleep, explored, key, raw, perm, summary)
            )
            if descend:
                child_summary = dedup_dfs(
                    child, depth + 1, child_sleep, descend[0], descend[1:]
                )
            else:
                child_summary = dedup_dfs(child, depth + 1, child_sleep)
            descend = None  # only the recorded branch resumes a frame
            frames.pop()
            path.pop()
            if child_summary is None:
                return None
            for ordinal, guide, problems, vperm in child_summary.violations:
                summary.violations.append(
                    (
                        summary.terminals + ordinal,
                        guide if groups else (branch,) + guide,
                        problems,
                        vperm,
                    )
                )
            summary.terminals += child_summary.terminals
            summary.height = max(summary.height, child_summary.height + 1)
            summary.truncated = summary.truncated or child_summary.truncated
            if sleep_sets and taken is not None:
                explored[keys[branch]] = taken
        remember(summary)
        return summary

    root_sleep: _SleepSet = {
        intern_key(key): fp for key, fp in (initial_sleep or {}).items()
    }
    head = resume_stack[0] if resume_stack else None
    rest = resume_stack[1:] if resume_stack else None
    if dedup:
        dedup_dfs(cursor, len(prefix), root_sleep, head, rest)
    else:
        dfs(cursor, len(prefix), root_sleep, head, rest)
    flush_stats()
    if not out.interrupted:
        snapshot(complete=True)
    return out


# ---------------------------------------------------------------------------
# The replay engine (differential oracle and benchmark baseline)
# ---------------------------------------------------------------------------


def _explore_replay(
    simulator: Simulator,
    scripts: Mapping[int, Sequence[Hashable]],
    property_check: object,
    crash_schedule: CrashSchedule | None,
    max_schedules: int,
    max_depth: int,
    stop_at_first_violation: bool,
) -> ExplorationResult:
    """The from-scratch engine: each prefix re-run via a guided run."""
    prop = _as_property(property_check)
    result = ExplorationResult(schedules_explored=0, terminal_schedules=0)

    def run_prefix(prefix: list[int]) -> SimulationResult:
        return simulator.run(
            scripts,
            crash_schedule=crash_schedule,
            guide=prefix,
            max_steps=max_depth + 1,
        )

    def dfs(prefix: list[int]) -> bool:
        """Returns False to abort the whole search."""
        if result.terminal_schedules >= max_schedules:
            result.exhausted = False
            return False
        result.schedules_explored += 1
        result.max_depth_seen = max(result.max_depth_seen, len(prefix))
        outcome = run_prefix(prefix)
        result.events_executed += len(prefix)
        result.events_replayed += max(0, len(prefix) - 1)
        if outcome.pending_choices == 0:
            result.terminal_schedules += 1
            problems = prop(outcome)
            if problems:
                result.violations.append(
                    Violation(tuple(prefix), tuple(problems))
                )
                if stop_at_first_violation:
                    result.aborted = True
                    result.exhausted = False
                    return False
            return True
        if len(prefix) >= max_depth:
            result.exhausted = False
            return True
        for branch in range(outcome.pending_choices):
            prefix.append(branch)
            keep_going = dfs(prefix)
            prefix.pop()
            if not keep_going:
                return False
        return True

    dfs([])
    return result


# ---------------------------------------------------------------------------
# Parallel sharding
# ---------------------------------------------------------------------------

#: Work description inherited by forked pool workers (never pickled).
_SHARD_STATE: tuple | None = None


def _explore_shard(index: int) -> _SubtreeOutcome:
    """Pool worker entry point: explore the ``index``-th shard subtree.

    With checkpointing on, each shard owns ``<path>.shard-<index>``: it
    resumes from it when a valid one exists (a corrupt or
    mismatched-config file means a cold start for that shard, never an
    error — the shard's work is self-contained) and checkpoints its own
    subtree into it.  The forked worker sees a fork-time *snapshot* of
    the cancel token; the merging parent polls the live token.
    """
    assert _SHARD_STATE is not None
    (
        simulator,
        scripts,
        property_check,
        crash_schedule,
        shard_work,
        max_schedules,
        max_depth,
        stop_at_first_violation,
        dedup,
        sleep_sets,
        groups,
        static_independence,
        crash_aware,
        cancel,
        checkpoint_to,
        checkpoint_every,
        config,
    ) = _SHARD_STATE
    prefix, initial_sleep = shard_work[index]
    shard_path = None
    shard_config = ""
    resume_body = None
    if checkpoint_to is not None:
        shard_path = f"{checkpoint_to}.shard-{index}"
        shard_config = stable_digest(
            "repro.checkpoint.shard", config, prefix
        )
        if os.path.exists(shard_path):
            try:
                body = read_checkpoint(shard_path)
            except CheckpointError:
                body = None  # corrupt or stale: start this shard cold
            if (
                body is not None
                and body.get("kind") == "subtree"
                and body.get("config") == shard_config
            ):
                resume_body = body
    return _explore_subtree(
        simulator,
        scripts,
        property_check,
        crash_schedule,
        prefix,
        max_schedules,
        max_depth,
        stop_at_first_violation,
        dedup=dedup,
        sleep_sets=sleep_sets,
        groups=groups,
        initial_sleep=initial_sleep,
        static_independence=static_independence,
        crash_aware=crash_aware,
        cancel=cancel,
        checkpoint_to=shard_path,
        checkpoint_every=checkpoint_every,
        resume=resume_body,
        config=shard_config,
    )


def _expand_frontier(
    simulator: Simulator,
    scripts: Mapping[int, Sequence[Hashable]],
    property_check: object,
    crash_schedule: CrashSchedule | None,
    max_depth: int,
    target_shards: int,
    result: ExplorationResult,
    sleep_sets: bool = False,
    static_independence=None,
    crash_aware: bool = True,
) -> list[tuple]:
    """Expand the tree breadth-first until enough subtrees exist.

    Returns the frontier as an *ordered* work list whose order is the
    depth-first visiting order of the remaining work: entries are either
    ``("terminal", prefix, problems)`` — a shallow terminal already
    evaluated here — or ``("shard", prefix, cursor, sleep)`` — a subtree
    for a worker, with the sleep set its root inherits when the
    sleep-set reduction is on.  Interior nodes visited during expansion
    are accounted directly into ``result``; slept branches are pruned
    here exactly as the sequential DFS would prune them.
    """
    prop = _as_property(property_check)
    indep = _IndependenceOracle(
        static_independence, crash_aware=crash_aware
    )
    root = _Cursor(
        simulator.begin(scripts, crash_schedule=crash_schedule),
        prop.tracker(simulator.n),
        0,
    )
    entries: list[tuple] = [("shard", (), root, {})]
    for _round in range(8):
        shard_count = sum(1 for e in entries if e[0] == "shard")
        if shard_count >= target_shards:
            break
        new_entries: list[tuple] = []
        expanded = False
        for entry in entries:
            if entry[0] == "terminal":
                new_entries.append(entry)
                continue
            _, prefix, cursor, sleep = entry
            choices = cursor.handle.choices()
            cursor.sync()
            result.schedules_explored += 1
            result.expansions_by_depth[len(prefix)] = (
                result.expansions_by_depth.get(len(prefix), 0) + 1
            )
            result.max_depth_seen = max(
                result.max_depth_seen, len(prefix)
            )
            if not choices:
                problems = cursor.tracker.at_terminal(
                    cursor.handle.result()
                )
                new_entries.append(("terminal", prefix, tuple(problems)))
                continue
            if len(prefix) >= max_depth:
                result.exhausted = False
                continue
            expanded = True
            if sleep_sets:
                keys = [choice_key(choice) for choice in choices]
                active = [
                    b for b in range(len(choices)) if keys[b] not in sleep
                ]
                result.states_pruned_sleep += len(choices) - len(active)
            else:
                keys = []
                active = list(range(len(choices)))
            explored: _PortableSleepSet = {}
            last = active[-1] if active else None
            for branch in active:
                if branch != last:
                    child = cursor.fork()
                    result.events_replayed += child.handle.replayed_steps
                else:
                    child = cursor
                child.handle.advance(branch)
                result.events_executed += 1
                if sleep_sets:
                    child.handle.choices()  # finalize the footprint
                    taken = child.handle.last_footprint
                    child_sleep = {
                        key: footprint
                        for candidates in (sleep, explored)
                        for key, footprint in candidates.items()
                        if indep(footprint, taken)
                    }
                    if taken is not None:
                        explored[keys[branch]] = taken
                else:
                    child_sleep = {}
                new_entries.append(
                    ("shard", prefix + (branch,), child, child_sleep)
                )
        entries = new_entries
        if not expanded:
            break
    for source, count in indep.stats.items():
        if count:
            result.independence_stats[source] = (
                result.independence_stats.get(source, 0) + count
            )
    return entries


def _explore_parallel(
    simulator: Simulator,
    scripts: Mapping[int, Sequence[Hashable]],
    property_check: object,
    crash_schedule: CrashSchedule | None,
    max_schedules: int,
    max_depth: int,
    stop_at_first_violation: bool,
    workers: int,
    dedup: bool,
    sleep_sets: bool = False,
    groups: Sequence[tuple[int, ...]] = (),
    static_independence=None,
    crash_aware: bool = True,
    cancel=None,
    checkpoint_to: str | None = None,
    checkpoint_every: int = 1000,
    resume: Mapping | None = None,
    config: str = "",
) -> ExplorationResult:
    """Shard the tree over a worker pool and merge in DFS order.

    Under ``dedup`` each shard worker keeps a private transposition
    cache (shared-nothing): merged results stay deterministic and equal
    to the sequential dedup engine, only cross-shard convergences go
    unpruned.  Sleep sets shard cleanly too — each frontier subtree
    carries the sleep set its root would have had sequentially — and
    symmetry canonicalization is per-shard, so cross-shard orbits go
    unmerged the same way cross-shard states go undeduplicated.

    With checkpointing on, the parent owns ``checkpoint_to``: its body
    maps shard indices to already-merged outcomes, rewritten after each
    merge, while each shard worker checkpoints its own subtree to
    ``<path>.shard-<i>`` (see :func:`_explore_shard`).  A resumed run
    re-expands the frontier — deterministic and cheap, so its counters
    are recomputed rather than stored — then skips every shard whose
    outcome the previous run already merged; unfinished shards resume
    from their own files.
    """
    global _SHARD_STATE
    if resume is not None and resume.get("complete"):
        return ExplorationResult.from_json(resume["result"])
    stored: dict[str, dict] = (
        dict(resume["shards"]) if resume is not None else {}
    )
    result = ExplorationResult(
        schedules_explored=0, terminal_schedules=0, workers=workers
    )
    entries = _expand_frontier(
        simulator,
        scripts,
        property_check,
        crash_schedule,
        max_depth,
        target_shards=workers * 4,
        result=result,
        sleep_sets=sleep_sets,
        static_independence=static_independence,
        crash_aware=crash_aware,
    )
    if dedup:
        # frontier nodes were expanded here, before any cache existed
        result.states_seen = result.schedules_explored
    shard_work = [(e[1], e[3]) for e in entries if e[0] == "shard"]
    pending_indices = [
        i for i in range(len(shard_work)) if str(i) not in stored
    ]
    ctx = multiprocessing.get_context("fork")
    _SHARD_STATE = (
        simulator,
        scripts,
        property_check,
        crash_schedule,
        shard_work,
        max_schedules,
        max_depth,
        stop_at_first_violation,
        dedup,
        sleep_sets,
        groups,
        static_independence,
        crash_aware,
        cancel,
        checkpoint_to,
        checkpoint_every,
        config,
    )

    def parent_snapshot(*, complete: bool) -> None:
        if checkpoint_to is None:
            return
        body: dict = {"kind": "parallel", "config": config,
                      "complete": complete}
        if complete:
            body["result"] = result.to_json()
        else:
            body["shards"] = stored
        write_checkpoint(checkpoint_to, body)

    try:
        with ctx.Pool(processes=workers) as pool:
            shard_outcomes = pool.imap(_explore_shard, pending_indices)
            shard_index = -1
            for entry in entries:
                if result.terminal_schedules >= max_schedules:
                    result.exhausted = False
                    break
                if entry[0] == "terminal":
                    _, prefix, problems = entry
                    result.terminal_schedules += 1
                    if problems:
                        result.violations.append(
                            Violation(tuple(prefix), tuple(problems))
                        )
                        if stop_at_first_violation:
                            result.aborted = True
                            result.exhausted = False
                            break
                    continue
                shard_index += 1
                reused = str(shard_index) in stored
                if reused:
                    sub = _outcome_from_json(stored[str(shard_index)])
                else:
                    sub = next(shard_outcomes)
                if sub.interrupted or (
                    not reused and cancel is not None and cancel.is_set()
                ):
                    # A shard hit its (fork-inherited) cancel token, or
                    # the live token fired parent-side.  A shard that
                    # *completed* before the cut still counts: store it
                    # so the resume skips it, but do not merge it — the
                    # merge order is the construction-identity contract
                    # and the resumed run will merge it in sequence.
                    if not sub.interrupted and checkpoint_to is not None:
                        stored[str(shard_index)] = _outcome_to_json(sub)
                    result.interrupted = True
                    result.exhausted = False
                    parent_snapshot(complete=False)
                    break
                if not reused and checkpoint_to is not None:
                    stored[str(shard_index)] = _outcome_to_json(sub)
                    parent_snapshot(complete=False)
                result.schedules_explored += sub.schedules_explored
                result.events_executed += sub.events_executed
                result.events_replayed += sub.events_replayed
                result.progress_errors.extend(sub.progress_errors)
                result.states_seen += sub.states_seen
                result.states_deduped += sub.states_deduped
                result.states_pruned_sleep += sub.states_pruned_sleep
                result.states_merged_symmetry += sub.states_merged_symmetry
                result.orbit_encodings += sub.orbit_encodings
                for depth, count in sub.expansions_by_depth.items():
                    result.expansions_by_depth[depth] = (
                        result.expansions_by_depth.get(depth, 0) + count
                    )
                for depth, count in sub.dedup_hits_by_depth.items():
                    result.dedup_hits_by_depth[depth] = (
                        result.dedup_hits_by_depth.get(depth, 0) + count
                    )
                for source, count in sub.independence_stats.items():
                    result.independence_stats[source] = (
                        result.independence_stats.get(source, 0) + count
                    )
                result.max_depth_seen = max(
                    result.max_depth_seen, sub.max_depth_seen
                )
                budget_left = max_schedules - result.terminal_schedules
                take = min(sub.terminal_schedules, budget_left)
                for ordinal, violation in sub.violations:
                    if ordinal < take:
                        result.violations.append(violation)
                result.terminal_schedules += take
                if take < sub.terminal_schedules or not sub.exhausted:
                    result.exhausted = False
                if sub.aborted:
                    result.aborted = True
                    result.exhausted = False
                    break
    finally:
        _SHARD_STATE = None
    if not result.interrupted:
        parent_snapshot(complete=True)
    return result


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def explore_schedules(
    simulator: Simulator,
    scripts: Mapping[int, Sequence[Hashable]],
    property_check: Property,
    *,
    crash_schedule: CrashSchedule | None = None,
    max_schedules: int = 100_000,
    max_depth: int = 400,
    stop_at_first_violation: bool = False,
    engine: str = "incremental",
    dedup: bool = False,
    workers: int = 1,
    sleep_sets: bool = False,
    static_independence=None,
    crash_aware: bool = True,
    symmetry: str = "none",
    progress: ProgressCallback | None = None,
    progress_every: int = 1000,
    cancel=None,
    checkpoint_to: str | None = None,
    checkpoint_every: int = 1000,
    resume_from: str | None = None,
) -> ExplorationResult:
    """Enumerate every schedule of the configuration and check each.

    ``simulator`` provides the system (its seed/policy are ignored —
    scheduling is exhaustive, and local computation is made atomic, the
    sound reduction described on
    :class:`~repro.runtime.simulator.Simulator`); ``max_schedules``
    bounds the number of *terminal* schedules visited, ``max_depth`` the
    decision depth.  ``engine`` selects the incremental engine
    (default), the state-deduplicating ``"dedup"`` engine (the
    incremental engine with a fingerprint transposition cache —
    equivalently pass ``dedup=True``), or the historical from-scratch
    ``"replay"`` engine; ``workers > 1`` runs the incremental engine
    sharded over a process pool (see the module docstring for the merge
    semantics; with dedup, caches are per-shard).

    Two pre-step reductions compose with the cache.  ``sleep_sets=True``
    (incremental engines) prunes a branch before forking when the event
    it takes is *asleep*: an already-explored sibling order covers every
    interleaving it would start, by the recorded-footprint independence
    relation of :mod:`repro.runtime.independence`.  Slept terminals are
    not re-counted, so ``terminal_schedules`` reports covered-distinct
    schedules, not raw interleavings — and under dedup a cached subtree
    recorded with a smaller sleep set stands in for later, more-slept
    arrivals (the subset-reuse rule), so the count may include
    commutation-redundant terminals a from-scratch sleep-set search
    would have skipped; the set of distinct terminal observations and
    violations is unaffected.  The recorded-footprint relation is
    *crash-aware* by default: a pending crash fires at a fixed global
    decision count that adjacent swaps preserve, so a pair commutes
    when neither event touched a still-alive victim (see
    :mod:`repro.runtime.independence`); ``crash_aware=False`` restores
    the historical blanket that kept every pair dependent while a
    crash was pending (the before/after benchmark axis).
    ``static_independence`` (requires ``sleep_sets``) further refines
    the relation with a proven-commutation table from the algorithm's
    static effect summary (:mod:`repro.statics.independence`) — a
    fallback the crash-aware relation subsumes in practice, kept for
    the historical comparison and for ``crash_aware=False`` runs; pass
    ``True`` to infer the table from the algorithm (raises
    :class:`ValueError` when no closed summary can be proven) or a
    prebuilt :class:`~repro.statics.independence.StaticIndependence`
    instance.  Per-source verdict counts land in
    :attr:`ExplorationResult.independence_stats`.  ``symmetry="rename"`` (requires
    dedup) additionally merges states equal up to a permutation of
    interchangeable process ids plus an injective renaming of message
    contents (the paper's Definition 3 applied to states); states are
    keyed by the orbit-canonical digest of
    :meth:`~repro.runtime.simulator.SimulationRun.orbit_key` (canonical
    labelling, ~1 encoding per state —
    :attr:`ExplorationResult.orbit_encodings`).  It is gated
    on the algorithm declaring
    :meth:`~repro.runtime.process.BroadcastProcess.symmetric_processes`
    and is violation-complete — violations found through a merge carry
    the witnessing pid permutation on
    :attr:`Violation.permutation`, with guides in the cached
    representative's frame.

    ``progress`` (sequential engines only) is invoked every
    ``progress_every`` node expansions with a :class:`ProgressSnapshot`
    of counters and wall-clock telemetry.

    ``checkpoint_to=path`` (incremental engines) writes a versioned,
    integrity-sealed checkpoint of the complete search state every
    ``checkpoint_every`` node expansions, on cancellation, and once more
    at completion; ``resume_from=path`` restores one and continues to a
    result construction-identical to an uninterrupted run (module
    docstring, *Checkpoint and resume*).  ``cancel`` is a cooperative
    stop token (any object with a ``threading.Event``-style
    ``is_set()``): once set, the search writes a final checkpoint (when
    one was requested) and returns promptly with ``interrupted=True``.
    A checkpoint records its configuration digest; ``resume_from`` with
    a different configuration — including a different ``workers`` count
    — raises :class:`~repro.runtime.checkpoint.CheckpointError`.
    """
    if engine not in ("incremental", "dedup", "replay"):
        raise ValueError(
            f"unknown engine {engine!r}: expected 'incremental', "
            f"'dedup' or 'replay'"
        )
    if engine == "dedup":
        engine, dedup = "incremental", True
    if dedup and engine != "incremental":
        raise ValueError(
            "state deduplication requires the incremental engine"
        )
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if workers > 1 and engine != "incremental":
        raise ValueError("parallel exploration requires the incremental engine")
    if symmetry not in ("none", "rename"):
        raise ValueError(
            f"unknown symmetry {symmetry!r}: expected 'none' or 'rename'"
        )
    if symmetry == "rename" and not dedup:
        raise ValueError(
            "symmetry reduction requires the dedup engine (its merges "
            "live in the transposition cache)"
        )
    if sleep_sets and engine != "incremental":
        raise ValueError(
            "sleep-set reduction requires the incremental engine"
        )
    if static_independence and not sleep_sets:
        raise ValueError(
            "static_independence refines the sleep-set reduction; pass "
            "sleep_sets=True as well"
        )
    if progress_every < 1:
        raise ValueError(
            f"progress_every must be >= 1, got {progress_every}"
        )
    if progress is not None and engine == "replay":
        raise ValueError("progress reporting requires the incremental engine")
    if progress is not None and workers > 1:
        raise ValueError("progress reporting requires workers=1")
    if checkpoint_every < 1:
        raise ValueError(
            f"checkpoint_every must be >= 1, got {checkpoint_every}"
        )
    if engine == "replay" and (
        cancel is not None
        or checkpoint_to is not None
        or resume_from is not None
    ):
        raise ValueError(
            "checkpoint/resume and cooperative cancellation require the "
            "incremental engine"
        )
    simulator = Simulator(
        simulator.n,
        simulator.algorithm_factory,
        k=simulator.k,
        ksa_policy=simulator.ksa_policy,
        sync_broadcasts=simulator.sync_broadcasts,
        atomic_local=True,
        validate_footprints=simulator.validate_footprints,
    )
    if static_independence is True:
        from ..statics.independence import StaticIndependence

        static_independence = StaticIndependence.for_simulator(simulator)
        if static_independence is None or not static_independence.usable:
            raise ValueError(
                "static_independence=True, but no closed effect summary "
                "could be proven for this algorithm (run `python -m "
                "repro.statics` on it to see the open reasons); pass a "
                "prebuilt table or drop the option"
            )
    elif static_independence is not None and not static_independence.usable:
        # A prebuilt but unusable table proves nothing; drop it so the
        # engines skip the per-pair indirection entirely.
        static_independence = None
    if engine == "replay":
        return _explore_replay(
            simulator,
            scripts,
            property_check,
            crash_schedule,
            max_schedules,
            max_depth,
            stop_at_first_violation,
        )
    groups = (
        _renaming_groups(simulator, scripts, crash_schedule)
        if symmetry == "rename"
        else ()
    )
    if workers > 1:
        try:
            multiprocessing.get_context("fork")
        except ValueError:
            workers = 1  # platform without fork: degrade gracefully
    config = ""
    if checkpoint_to is not None or resume_from is not None:
        # Everything that shapes the search tree or the result
        # semantics.  The algorithm is identified by its class name: the
        # factory itself has no stable encoding, and a renamed or
        # swapped algorithm must invalidate old checkpoints.
        config = config_digest(
            n=simulator.n,
            k=simulator.k,
            algorithm=type(
                simulator.algorithm_factory(0, simulator.n)
            ).__qualname__,
            sync_broadcasts=simulator.sync_broadcasts,
            scripts=tuple(
                sorted(
                    (pid, tuple(entries))
                    for pid, entries in scripts.items()
                )
            ),
            crash_schedule=crash_schedule,
            dedup=dedup,
            sleep_sets=sleep_sets,
            static_independence=static_independence is not None,
            crash_aware=crash_aware,
            groups=tuple(groups),
            max_schedules=max_schedules,
            max_depth=max_depth,
            stop_at_first_violation=stop_at_first_violation,
            workers=workers,
        )
    resume_body = None
    if resume_from is not None:
        resume_body = read_checkpoint(resume_from)
        if resume_body.get("config") != config:
            raise CheckpointError(
                f"checkpoint at {resume_from!r} was written for a "
                f"different exploration configuration (system, scripts, "
                f"engine options, bounds, or workers changed)"
            )
        expected_kind = "parallel" if workers > 1 else "subtree"
        if resume_body.get("kind") != expected_kind:
            raise CheckpointError(
                f"checkpoint at {resume_from!r} has kind "
                f"{resume_body.get('kind')!r}, expected "
                f"{expected_kind!r}"
            )
    if workers > 1:
        return _explore_parallel(
            simulator,
            scripts,
            property_check,
            crash_schedule,
            max_schedules,
            max_depth,
            stop_at_first_violation,
            workers,
            dedup,
            sleep_sets=sleep_sets,
            groups=groups,
            static_independence=static_independence,
            crash_aware=crash_aware,
            cancel=cancel,
            checkpoint_to=checkpoint_to,
            checkpoint_every=checkpoint_every,
            resume=resume_body,
            config=config,
        )
    sub = _explore_subtree(
        simulator,
        scripts,
        property_check,
        crash_schedule,
        (),
        max_schedules,
        max_depth,
        stop_at_first_violation,
        dedup=dedup,
        sleep_sets=sleep_sets,
        groups=groups,
        progress=progress,
        progress_every=progress_every,
        static_independence=static_independence,
        crash_aware=crash_aware,
        cancel=cancel,
        checkpoint_to=checkpoint_to,
        checkpoint_every=checkpoint_every,
        resume=resume_body,
        config=config,
    )
    return ExplorationResult(
        schedules_explored=sub.schedules_explored,
        terminal_schedules=sub.terminal_schedules,
        violations=[v for _, v in sub.violations],
        exhausted=sub.exhausted,
        max_depth_seen=sub.max_depth_seen,
        aborted=sub.aborted,
        interrupted=sub.interrupted,
        events_executed=sub.events_executed,
        events_replayed=sub.events_replayed,
        workers=1,
        states_seen=sub.states_seen,
        states_deduped=sub.states_deduped,
        states_pruned_sleep=sub.states_pruned_sleep,
        states_merged_symmetry=sub.states_merged_symmetry,
        orbit_encodings=sub.orbit_encodings,
        expansions_by_depth=dict(sub.expansions_by_depth),
        dedup_hits_by_depth=dict(sub.dedup_hits_by_depth),
        independence_stats=dict(sub.independence_stats),
        progress_errors=list(sub.progress_errors),
    )

"""Exhaustive schedule exploration: bounded model checking for CAMP runs.

Seeded simulation samples schedules; the :func:`explore_schedules`
explorer *enumerates* them.  It performs a depth-first search over the
tree of scheduling decisions — at every point, every enabled event (a
local step, a reception, a broadcast start) is a branch — and evaluates
a property at each terminal (quiescent) schedule, reporting every
violating schedule together with the decision sequence that reproduces
it (replayable via ``Simulator.run(..., guide=...)``).

The search replays each prefix from scratch (runs are deterministic), so
no state snapshotting is needed; the price is a depth factor on the node
count, which is irrelevant at the system sizes where exhaustive
exploration is feasible anyway (2–3 processes, 1–2 broadcasts each).
``max_schedules`` bounds the search for larger configurations, turning
the explorer into a systematic (breadth-biased-DFS) falsifier that finds
*minimal-depth* counterexamples before random testing would.

Properties are callables receiving the terminal
:class:`~repro.runtime.simulator.SimulationResult` and returning a list
of violation strings; :func:`spec_property` and :func:`channels_property`
adapt the library's checkers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping, Sequence

from ..core.broadcast_spec import BroadcastSpec
from ..core.model import check_channels
from .crash import CrashSchedule
from .simulator import SimulationResult, Simulator

__all__ = [
    "Violation",
    "ExplorationResult",
    "explore_schedules",
    "spec_property",
    "channels_property",
    "combine_properties",
]

Property = Callable[[SimulationResult], list[str]]


@dataclass(frozen=True)
class Violation:
    """One violating schedule: the guide that reproduces it, and why."""

    guide: tuple[int, ...]
    problems: tuple[str, ...]

    def __str__(self) -> str:
        return (
            f"schedule {list(self.guide)}: "
            + "; ".join(self.problems[:3])
        )


@dataclass
class ExplorationResult:
    """Outcome of one exhaustive (or budget-capped) exploration."""

    schedules_explored: int
    terminal_schedules: int
    violations: list[Violation] = field(default_factory=list)
    exhausted: bool = True
    max_depth_seen: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def __str__(self) -> str:
        coverage = "exhaustive" if self.exhausted else "budget-capped"
        verdict = (
            "no violation"
            if self.ok
            else f"{len(self.violations)} violating schedule(s)"
        )
        return (
            f"{coverage} exploration: {self.terminal_schedules} terminal "
            f"schedules ({self.schedules_explored} prefixes, depth ≤ "
            f"{self.max_depth_seen}): {verdict}"
        )


def spec_property(
    spec: BroadcastSpec, *, assume_complete: bool = True
) -> Property:
    """Adapt a broadcast specification into a terminal-state property."""

    def check(result: SimulationResult) -> list[str]:
        verdict = spec.admits(
            result.execution.broadcast_projection(),
            assume_complete=assume_complete,
        )
        return verdict.all_violations()

    return check


def channels_property(*, assume_complete: bool = True) -> Property:
    """The SR channel axioms as a terminal-state property."""

    def check(result: SimulationResult) -> list[str]:
        return check_channels(
            result.execution, assume_complete=assume_complete
        ).all_violations()

    return check


def combine_properties(*properties: Property) -> Property:
    """Conjunction of several properties."""

    def check(result: SimulationResult) -> list[str]:
        problems: list[str] = []
        for prop in properties:
            problems.extend(prop(result))
        return problems

    return check


def explore_schedules(
    simulator: Simulator,
    scripts: Mapping[int, Sequence[Hashable]],
    property_check: Property,
    *,
    crash_schedule: CrashSchedule | None = None,
    max_schedules: int = 100_000,
    max_depth: int = 400,
    stop_at_first_violation: bool = False,
) -> ExplorationResult:
    """Enumerate every schedule of the configuration and check each.

    ``simulator`` provides the system (its seed/policy are ignored —
    scheduling is exhaustive, and local computation is made atomic, the
    sound reduction described on
    :class:`~repro.runtime.simulator.Simulator`); ``max_schedules``
    bounds the number of *terminal* schedules visited, ``max_depth`` the
    decision depth.
    """
    simulator = Simulator(
        simulator.n,
        simulator.algorithm_factory,
        k=simulator.k,
        ksa_policy=simulator.ksa_policy,
        sync_broadcasts=simulator.sync_broadcasts,
        atomic_local=True,
    )
    result = ExplorationResult(schedules_explored=0, terminal_schedules=0)

    def run_prefix(prefix: list[int]) -> SimulationResult:
        return simulator.run(
            scripts,
            crash_schedule=crash_schedule,
            guide=prefix,
            max_steps=max_depth,
        )

    def dfs(prefix: list[int]) -> bool:
        """Returns False to abort the whole search."""
        if result.terminal_schedules >= max_schedules:
            result.exhausted = False
            return False
        if len(prefix) > max_depth:
            result.exhausted = False
            return True
        result.schedules_explored += 1
        result.max_depth_seen = max(result.max_depth_seen, len(prefix))
        outcome = run_prefix(prefix)
        if outcome.pending_choices == 0:
            result.terminal_schedules += 1
            problems = property_check(outcome)
            if problems:
                result.violations.append(
                    Violation(tuple(prefix), tuple(problems))
                )
                if stop_at_first_violation:
                    return False
            return True
        for branch in range(outcome.pending_choices):
            prefix.append(branch)
            keep_going = dfs(prefix)
            prefix.pop()
            if not keep_going:
                return False
        return True

    dfs([])
    return result

"""Exhaustive schedule exploration: bounded model checking for CAMP runs.

Seeded simulation samples schedules; the :func:`explore_schedules`
explorer *enumerates* them.  It performs a depth-first search over the
tree of scheduling decisions — at every point, every enabled event (a
local step, a reception, a broadcast start) is a branch — and evaluates
a property at each terminal (quiescent) schedule, reporting every
violating schedule together with the decision sequence that reproduces
it (replayable via ``Simulator.run(..., guide=...)``).

Engines
-------

Three engines explore the *same* tree in the same depth-first order and
produce identical violations and terminal verdicts:

* ``engine="incremental"`` (default) — the search runs on resumable
  :class:`~repro.runtime.simulator.SimulationRun` handles: extending a
  prefix by one event costs one event, and branch points are covered by
  forking the handle (a state snapshot) instead of re-running the
  prefix.  Each edge of the schedule tree is executed exactly once,
  turning the replay cost from O(nodes × depth) events into O(edges).
* ``engine="dedup"`` (equivalently ``dedup=True`` on the incremental
  engine) — the incremental engine plus a transposition cache keyed by
  canonical state fingerprints
  (:meth:`~repro.runtime.simulator.SimulationRun.fingerprint`): when
  distinct decision sequences converge on the same global state, the
  subtree below it is explored once and every later arrival *replays*
  the recorded subtree summary — terminal counts and violations, with
  reproduction guides rebased onto the new prefix — instead of
  re-expanding it.  The cost drops from O(tree edges) to O(unique-state
  graph edges), the dominant saving on symmetric script configurations
  where interchangeable broadcasts make most interleavings converge.
  :attr:`ExplorationResult.states_seen` / ``states_deduped`` report the
  cache's effect.  See *Soundness of deduplication* below.
* ``engine="replay"`` — the historical engine: every DFS prefix is
  re-run from scratch through a guided :meth:`Simulator.run`.  Kept as
  the differential-testing oracle and as the benchmark baseline; the
  per-node depth factor it pays is reported in
  :attr:`ExplorationResult.events_replayed`.

Soundness of deduplication
--------------------------

A state fingerprint pins each process's *input journal*, the ordered
in-flight pool, the oracle registry, remaining scripts, the alive set
and the decision count — everything the scheduling loop reads — so two
converged nodes enable the same events in the same order forever after:
the subtrees below them are isomorphic, decision for decision.  Their
*traces* differ only in the prefix, and only up to commutation of
independent events (the same per-process histories, interleaved
differently).  Replaying a cached subtree summary is therefore exact
for properties whose verdict is a function of per-process observations
(every spec in :mod:`repro.specs`; delivery sequences, decided values
and returns are all per-process state).  Step-tracked properties stay
compatible too: :func:`channels_property`'s tracker state at a deduped
node is determined by per-process send/receive projections, which the
fingerprint pins — the deduped arrival's prefix was already checked
step by step on its own branch, and the suffix verdicts recorded in the
cache coincide with what re-expansion would have computed.  A custom
property that inspects the *global interleaving* of the terminal trace
(cross-process real-time order, say) is outside this envelope — use the
plain incremental engine for those.

``workers > 1`` shards the top of the schedule tree across a
``multiprocessing`` pool (fork start method): the tree is expanded
breadth-first until enough independent subtrees exist, each worker runs
the incremental engine on its subtree, and the per-shard outcomes are
merged back *in depth-first order*, so an exhaustive parallel run
returns exactly the sequential result (same terminal count, same
violations in the same order).  On budget-capped runs the merged
``terminal_schedules`` and ``violations`` still match the sequential
engine; ``schedules_explored``/event counters reflect the work actually
performed, which can be larger because every worker receives the full
budget.  Where the ``fork`` start method is unavailable the call falls
back to a single worker.  Under ``dedup=True`` the workers share
nothing: each shard builds its own private cache, so merged results
remain deterministic and identical to the sequential dedup engine
(cross-shard convergences are simply not pruned).

Properties
----------

Properties are callables receiving the terminal
:class:`~repro.runtime.simulator.SimulationResult` and returning a list
of violation strings; :func:`spec_property` and :func:`channels_property`
adapt the library's checkers.  Property objects may additionally expose
``tracker(n)`` returning a :class:`PropertyTracker`, in which case the
incremental engine feeds them *step deltas* along each branch instead of
whole executions per terminal: :func:`channels_property` checks the SR
channel axioms this way (via :class:`repro.core.model.ChannelTracker`),
scanning every step once per tree edge rather than once per
terminal-times-depth.  Spec properties are whole-execution judgements
and stay terminal-evaluated.

Bounds
------

``max_schedules`` bounds the number of terminal schedules visited,
turning the explorer into a systematic falsifier that finds
minimal-depth counterexamples before random testing would;
``max_depth`` bounds the decision depth.  A search cut short by either
bound — or aborted by ``stop_at_first_violation`` — reports
``exhausted=False`` (and ``aborted=True`` for the stop case); subtrees
pruned at ``max_depth`` are *not* property-checked, since their runs are
truncated mid-flight.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping, Sequence

from ..core.broadcast_spec import BroadcastSpec
from ..core.model import ChannelTracker, check_channels
from ..core.steps import Step
from .crash import CrashSchedule
from .simulator import SimulationResult, SimulationRun, Simulator

__all__ = [
    "Violation",
    "ExplorationResult",
    "explore_schedules",
    "spec_property",
    "channels_property",
    "combine_properties",
    "PropertyTracker",
]

Property = Callable[[SimulationResult], list[str]]


@dataclass(frozen=True)
class Violation:
    """One violating schedule: the guide that reproduces it, and why."""

    guide: tuple[int, ...]
    problems: tuple[str, ...]

    def __str__(self) -> str:
        return (
            f"schedule {list(self.guide)}: "
            + "; ".join(self.problems[:3])
        )


@dataclass
class ExplorationResult:
    """Outcome of one exhaustive (or budget-capped) exploration."""

    schedules_explored: int
    terminal_schedules: int
    violations: list[Violation] = field(default_factory=list)
    exhausted: bool = True
    max_depth_seen: int = 0
    #: True when ``stop_at_first_violation`` cut the search short.  An
    #: aborted search is never exhaustive: schedules after the first
    #: violation were deliberately not visited.
    aborted: bool = False
    #: Scheduled events committed over the whole search, including any
    #: re-execution (the replay engine re-runs each prefix; the parallel
    #: engine re-runs shard prefixes once per worker).
    events_executed: int = 0
    #: The subset of ``events_executed`` that re-executed work already
    #: performed earlier in the search — the quantity the incremental
    #: engine exists to eliminate.  For the incremental engine this also
    #: counts local steps re-executed by journal-replay forks.
    events_replayed: int = 0
    #: Worker processes that actually ran the search.
    workers: int = 1
    #: Distinct states expanded by the dedup engine (cache insertions);
    #: 0 for the non-dedup engines.  With dedup on,
    #: ``schedules_explored`` counts the same expansions, while pruned
    #: arrivals are counted in :attr:`states_deduped` instead.
    states_seen: int = 0
    #: Branches pruned because their post-event state was already
    #: expanded — each one stood in for a whole re-explored subtree.
    states_deduped: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def __str__(self) -> str:
        if self.aborted:
            coverage = "aborted"
        elif self.exhausted:
            coverage = "exhaustive"
        else:
            coverage = "budget-capped"
        verdict = (
            "no violation"
            if self.ok
            else f"{len(self.violations)} violating schedule(s)"
        )
        return (
            f"{coverage} exploration: {self.terminal_schedules} terminal "
            f"schedules ({self.schedules_explored} prefixes, depth ≤ "
            f"{self.max_depth_seen}): {verdict}"
        )


# ---------------------------------------------------------------------------
# Properties and their incremental trackers
# ---------------------------------------------------------------------------


class PropertyTracker:
    """Terminal-state property evaluation fed step deltas along a branch.

    The incremental engine holds one tracker per search-tree node:
    :meth:`observe` receives the trace steps appended since the parent
    node, :meth:`fork` snapshots the tracker at a branch point, and
    :meth:`at_terminal` produces the violation list at a quiescent
    schedule.  This base class is the *stateless* adapter: it ignores
    deltas and evaluates a plain property callable on the terminal
    result, so forks can share the one instance.
    """

    def __init__(self, check: Property) -> None:
        self._check = check

    def observe(self, steps: Sequence[Step]) -> None:
        """Account trace steps appended since the previous call."""

    def fork(self) -> "PropertyTracker":
        """A tracker for a diverging branch (self when stateless)."""
        return self

    def at_terminal(self, result: SimulationResult) -> list[str]:
        """Violations of the property at a terminal schedule."""
        return self._check(result)


class _ChannelsTracker(PropertyTracker):
    """SR channel axioms maintained incrementally along a branch."""

    def __init__(self, n: int, *, assume_complete: bool) -> None:
        self._tracker = ChannelTracker(n)
        self._assume_complete = assume_complete

    def observe(self, steps: Sequence[Step]) -> None:
        for step in steps:
            self._tracker.observe(step)

    def fork(self) -> "_ChannelsTracker":
        clone = object.__new__(_ChannelsTracker)
        clone._tracker = self._tracker.fork()
        clone._assume_complete = self._assume_complete
        return clone

    def at_terminal(self, result: SimulationResult) -> list[str]:
        return self._tracker.report(
            assume_complete=self._assume_complete
        ).all_violations()


class _CombinedTracker(PropertyTracker):
    """Conjunction of several trackers (problems concatenated in order)."""

    def __init__(self, trackers: list[PropertyTracker]) -> None:
        self._trackers = trackers

    def observe(self, steps: Sequence[Step]) -> None:
        for tracker in self._trackers:
            tracker.observe(steps)

    def fork(self) -> "_CombinedTracker":
        return _CombinedTracker([t.fork() for t in self._trackers])

    def at_terminal(self, result: SimulationResult) -> list[str]:
        problems: list[str] = []
        for tracker in self._trackers:
            problems.extend(tracker.at_terminal(result))
        return problems


class _TerminalProperty:
    """A property with no incremental structure: evaluated at terminals."""

    def __init__(self, check: Property) -> None:
        self._check = check

    def __call__(self, result: SimulationResult) -> list[str]:
        return self._check(result)

    def tracker(self, n: int) -> PropertyTracker:
        return PropertyTracker(self._check)


class _ChannelsProperty:
    """The SR channel axioms, incremental when used by the explorer."""

    def __init__(self, *, assume_complete: bool) -> None:
        self._assume_complete = assume_complete

    def __call__(self, result: SimulationResult) -> list[str]:
        return check_channels(
            result.execution, assume_complete=self._assume_complete
        ).all_violations()

    def tracker(self, n: int) -> PropertyTracker:
        return _ChannelsTracker(n, assume_complete=self._assume_complete)


class _CombinedProperty:
    """Conjunction of several properties."""

    def __init__(self, properties: tuple[object, ...]) -> None:
        self._properties = [_as_property(p) for p in properties]

    def __call__(self, result: SimulationResult) -> list[str]:
        problems: list[str] = []
        for prop in self._properties:
            problems.extend(prop(result))
        return problems

    def tracker(self, n: int) -> PropertyTracker:
        return _CombinedTracker(
            [p.tracker(n) for p in self._properties]
        )


def _as_property(prop: object):
    """Normalize a plain callable into a tracker-capable property."""
    if hasattr(prop, "tracker") and callable(getattr(prop, "tracker")):
        return prop
    if not callable(prop):
        raise TypeError(f"property must be callable, got {prop!r}")
    return _TerminalProperty(prop)


def spec_property(
    spec: BroadcastSpec, *, assume_complete: bool = True
) -> Property:
    """Adapt a broadcast specification into a terminal-state property."""

    def check(result: SimulationResult) -> list[str]:
        verdict = spec.admits(
            result.execution.broadcast_projection(),
            assume_complete=assume_complete,
        )
        return verdict.all_violations()

    return _TerminalProperty(check)


def channels_property(*, assume_complete: bool = True) -> Property:
    """The SR channel axioms as a terminal-state property.

    When passed to :func:`explore_schedules` this property is evaluated
    *incrementally*: the explorer feeds it step deltas along each DFS
    branch, so each trace step is scanned once per tree edge instead of
    once per terminal-times-depth.
    """
    return _ChannelsProperty(assume_complete=assume_complete)


def combine_properties(*properties: Property) -> Property:
    """Conjunction of several properties (incremental where they are)."""
    return _CombinedProperty(tuple(properties))


# ---------------------------------------------------------------------------
# The incremental engine
# ---------------------------------------------------------------------------


class _Cursor:
    """One search-tree node: a run handle plus its property tracker."""

    __slots__ = ("handle", "tracker", "mark")

    def __init__(
        self, handle: SimulationRun, tracker: PropertyTracker, mark: int
    ) -> None:
        self.handle = handle
        self.tracker = tracker
        self.mark = mark

    def fork(self) -> "_Cursor":
        return _Cursor(self.handle.fork(), self.tracker.fork(), self.mark)

    def sync(self) -> None:
        """Feed the tracker every trace step recorded since last sync."""
        new_steps = self.handle.trace.since(self.mark)
        if new_steps:
            self.tracker.observe(new_steps)
            self.mark += len(new_steps)


@dataclass
class _SubtreeOutcome:
    """Result of exploring one subtree (picklable, for worker returns).

    ``violations`` carries each violation together with the ordinal of
    its terminal within the subtree's depth-first terminal sequence, so
    the merge step can truncate precisely at a global budget.
    """

    schedules_explored: int = 0
    terminal_schedules: int = 0
    violations: list[tuple[int, Violation]] = field(default_factory=list)
    exhausted: bool = True
    aborted: bool = False
    max_depth_seen: int = 0
    events_executed: int = 0
    events_replayed: int = 0
    states_seen: int = 0
    states_deduped: int = 0


@dataclass
class _Summary:
    """One fully-explored subtree, relative to its root (the cache value).

    ``violations`` holds ``(ordinal, suffix, problems)`` triples:
    ``ordinal`` is the violating terminal's position in the subtree's
    depth-first terminal sequence and ``suffix`` the decision path from
    the subtree root, so a later arrival at the same state replays the
    exact violations re-expansion would have produced, with guides
    rebased onto its own prefix.  ``height`` is the relative depth of
    the deepest descendant; ``truncated`` marks a subtree some branch of
    which was cut at ``max_depth`` (its shape depends on the remaining
    depth budget, so reuse is restricted — see :func:`_entry_reusable`).
    """

    terminals: int = 0
    violations: list[tuple[int, tuple[int, ...], tuple[str, ...]]] = field(
        default_factory=list
    )
    height: int = 0
    truncated: bool = False


def _entry_reusable(
    entry: _Summary, cached_depth: int, depth: int, max_depth: int
) -> bool:
    """May this cached summary stand in for expansion at ``depth``?

    Fingerprints include the decision count, so a hit is necessarily at
    the depth the entry was recorded (converged sequences consumed the
    same number of decisions) and these guards are defensive: a
    depth-truncated subtree is only reused at the exact recording depth
    (elsewhere the ``max_depth`` cut would fall differently), and an
    untruncated one only where its height still fits under the bound.
    Together they enforce the same-or-shallower-depth discipline of
    classic stateful search.
    """
    if entry.truncated:
        return cached_depth == depth
    return depth + entry.height <= max_depth


def _explore_subtree(
    simulator: Simulator,
    scripts: Mapping[int, Sequence[Hashable]],
    property_check: object,
    crash_schedule: CrashSchedule | None,
    prefix: tuple[int, ...],
    max_schedules: int,
    max_depth: int,
    stop_at_first_violation: bool,
    dedup: bool = False,
) -> _SubtreeOutcome:
    """Incremental DFS below ``prefix`` (replayed once to materialize).

    With ``dedup=True`` the DFS consults a per-call transposition cache:
    a node whose state fingerprint was already fully expanded is pruned,
    and the cached subtree summary is replayed in its place, reproducing
    the exact terminal counts and violations of a re-expansion.
    """
    out = _SubtreeOutcome()
    prop = _as_property(property_check)
    handle = simulator.begin(scripts, crash_schedule=crash_schedule)
    for branch in prefix:
        handle.choices()
        handle.advance(branch)
    out.events_executed += len(prefix)
    out.events_replayed += len(prefix)
    cursor = _Cursor(handle, prop.tracker(simulator.n), 0)
    path = list(prefix)

    def visit_terminal(cursor: _Cursor) -> tuple[tuple[str, ...], bool]:
        """Account one terminal; returns (problems, keep_going)."""
        ordinal = out.terminal_schedules
        out.terminal_schedules += 1
        problems = tuple(
            cursor.tracker.at_terminal(cursor.handle.result())
        )
        if problems:
            out.violations.append((ordinal, Violation(tuple(path), problems)))
            if stop_at_first_violation:
                out.aborted = True
                out.exhausted = False
                return problems, False
        return problems, True

    def dfs(cursor: _Cursor, depth: int) -> bool:
        """Returns False to abort the whole search."""
        if out.terminal_schedules >= max_schedules:
            out.exhausted = False
            return False
        out.schedules_explored += 1
        out.max_depth_seen = max(out.max_depth_seen, depth)
        choices = cursor.handle.choices()
        cursor.sync()
        if not choices:
            _, keep_going = visit_terminal(cursor)
            return keep_going
        if depth >= max_depth:
            out.exhausted = False
            return True
        last = len(choices) - 1
        for branch in range(len(choices)):
            if branch < last:
                child = cursor.fork()
                out.events_replayed += child.handle.replayed_steps
            else:
                child = cursor  # the last branch extends this node in place
            child.handle.advance(branch)
            out.events_executed += 1
            path.append(branch)
            keep_going = dfs(child, depth + 1)
            path.pop()
            if not keep_going:
                return False
        return True

    cache: dict[str, tuple[int, _Summary]] = {}

    def replay(entry: _Summary) -> bool:
        """Emit a cached subtree's terminals and violations under ``path``.

        Mirrors what depth-first re-expansion would have reported: the
        schedule budget can cut the virtual subtree mid-way, and
        ``stop_at_first_violation`` aborts at its first violating
        terminal.  Returns False to abort the whole search.
        """
        budget_left = max_schedules - out.terminal_schedules
        take = min(entry.terminals, budget_left)
        base = out.terminal_schedules
        for ordinal, suffix, problems in entry.violations:
            if ordinal >= take:
                break
            out.violations.append(
                (base + ordinal, Violation(tuple(path) + suffix, problems))
            )
            if stop_at_first_violation:
                out.terminal_schedules = base + ordinal + 1
                out.aborted = True
                out.exhausted = False
                return False
        out.terminal_schedules = base + take
        if take < entry.terminals:
            out.exhausted = False
            return False
        return True

    def dedup_dfs(cursor: _Cursor, depth: int) -> _Summary | None:
        """DFS with transposition pruning.

        Returns the subtree's summary — cached for later arrivals at the
        same state — or ``None`` when the search was cut (budget, abort):
        partial summaries are never cached.
        """
        if out.terminal_schedules >= max_schedules:
            out.exhausted = False
            return None
        choices = cursor.handle.choices()  # prelude before fingerprinting
        cursor.sync()
        fingerprint = cursor.handle.fingerprint()
        cached = cache.get(fingerprint)
        if cached is not None:
            cached_depth, entry = cached
            if _entry_reusable(entry, cached_depth, depth, max_depth):
                out.states_deduped += 1
                out.max_depth_seen = max(
                    out.max_depth_seen, depth + entry.height
                )
                if entry.truncated:
                    out.exhausted = False
                if not replay(entry):
                    return None
                return entry
        out.schedules_explored += 1
        out.states_seen += 1
        out.max_depth_seen = max(out.max_depth_seen, depth)
        if not choices:
            problems, keep_going = visit_terminal(cursor)
            summary = _Summary(terminals=1)
            if problems:
                summary.violations.append((0, (), problems))
            if not keep_going:
                return None
            cache[fingerprint] = (depth, summary)
            return summary
        if depth >= max_depth:
            out.exhausted = False
            summary = _Summary(truncated=True)
            cache[fingerprint] = (depth, summary)
            return summary
        summary = _Summary()
        last = len(choices) - 1
        for branch in range(len(choices)):
            if branch < last:
                child = cursor.fork()
                out.events_replayed += child.handle.replayed_steps
            else:
                child = cursor  # the last branch extends this node in place
            child.handle.advance(branch)
            out.events_executed += 1
            path.append(branch)
            child_summary = dedup_dfs(child, depth + 1)
            path.pop()
            if child_summary is None:
                return None
            for ordinal, suffix, problems in child_summary.violations:
                summary.violations.append(
                    (summary.terminals + ordinal, (branch,) + suffix, problems)
                )
            summary.terminals += child_summary.terminals
            summary.height = max(summary.height, child_summary.height + 1)
            summary.truncated = summary.truncated or child_summary.truncated
        cache[fingerprint] = (depth, summary)
        return summary

    if dedup:
        dedup_dfs(cursor, len(prefix))
    else:
        dfs(cursor, len(prefix))
    return out


# ---------------------------------------------------------------------------
# The replay engine (differential oracle and benchmark baseline)
# ---------------------------------------------------------------------------


def _explore_replay(
    simulator: Simulator,
    scripts: Mapping[int, Sequence[Hashable]],
    property_check: object,
    crash_schedule: CrashSchedule | None,
    max_schedules: int,
    max_depth: int,
    stop_at_first_violation: bool,
) -> ExplorationResult:
    """The from-scratch engine: each prefix re-run via a guided run."""
    prop = _as_property(property_check)
    result = ExplorationResult(schedules_explored=0, terminal_schedules=0)

    def run_prefix(prefix: list[int]) -> SimulationResult:
        return simulator.run(
            scripts,
            crash_schedule=crash_schedule,
            guide=prefix,
            max_steps=max_depth + 1,
        )

    def dfs(prefix: list[int]) -> bool:
        """Returns False to abort the whole search."""
        if result.terminal_schedules >= max_schedules:
            result.exhausted = False
            return False
        result.schedules_explored += 1
        result.max_depth_seen = max(result.max_depth_seen, len(prefix))
        outcome = run_prefix(prefix)
        result.events_executed += len(prefix)
        result.events_replayed += max(0, len(prefix) - 1)
        if outcome.pending_choices == 0:
            result.terminal_schedules += 1
            problems = prop(outcome)
            if problems:
                result.violations.append(
                    Violation(tuple(prefix), tuple(problems))
                )
                if stop_at_first_violation:
                    result.aborted = True
                    result.exhausted = False
                    return False
            return True
        if len(prefix) >= max_depth:
            result.exhausted = False
            return True
        for branch in range(outcome.pending_choices):
            prefix.append(branch)
            keep_going = dfs(prefix)
            prefix.pop()
            if not keep_going:
                return False
        return True

    dfs([])
    return result


# ---------------------------------------------------------------------------
# Parallel sharding
# ---------------------------------------------------------------------------

#: Work description inherited by forked pool workers (never pickled).
_SHARD_STATE: tuple | None = None


def _explore_shard(index: int) -> _SubtreeOutcome:
    """Pool worker entry point: explore the ``index``-th shard subtree."""
    assert _SHARD_STATE is not None
    (
        simulator,
        scripts,
        property_check,
        crash_schedule,
        prefixes,
        max_schedules,
        max_depth,
        stop_at_first_violation,
        dedup,
    ) = _SHARD_STATE
    return _explore_subtree(
        simulator,
        scripts,
        property_check,
        crash_schedule,
        prefixes[index],
        max_schedules,
        max_depth,
        stop_at_first_violation,
        dedup=dedup,
    )


def _expand_frontier(
    simulator: Simulator,
    scripts: Mapping[int, Sequence[Hashable]],
    property_check: object,
    crash_schedule: CrashSchedule | None,
    max_depth: int,
    target_shards: int,
    result: ExplorationResult,
) -> list[tuple]:
    """Expand the tree breadth-first until enough subtrees exist.

    Returns the frontier as an *ordered* work list whose order is the
    depth-first visiting order of the remaining work: entries are either
    ``("terminal", prefix, problems)`` — a shallow terminal already
    evaluated here — or ``("shard", prefix, cursor)`` — a subtree for a
    worker.  Interior nodes visited during expansion are accounted
    directly into ``result``.
    """
    prop = _as_property(property_check)
    root = _Cursor(
        simulator.begin(scripts, crash_schedule=crash_schedule),
        prop.tracker(simulator.n),
        0,
    )
    entries: list[tuple] = [("shard", (), root)]
    for _round in range(8):
        shard_count = sum(1 for e in entries if e[0] == "shard")
        if shard_count >= target_shards:
            break
        new_entries: list[tuple] = []
        expanded = False
        for entry in entries:
            if entry[0] == "terminal":
                new_entries.append(entry)
                continue
            _, prefix, cursor = entry
            choices = cursor.handle.choices()
            cursor.sync()
            result.schedules_explored += 1
            result.max_depth_seen = max(
                result.max_depth_seen, len(prefix)
            )
            if not choices:
                problems = cursor.tracker.at_terminal(
                    cursor.handle.result()
                )
                new_entries.append(("terminal", prefix, tuple(problems)))
                continue
            if len(prefix) >= max_depth:
                result.exhausted = False
                continue
            expanded = True
            last = len(choices) - 1
            for branch in range(len(choices)):
                if branch < last:
                    child = cursor.fork()
                    result.events_replayed += child.handle.replayed_steps
                else:
                    child = cursor
                child.handle.advance(branch)
                result.events_executed += 1
                new_entries.append(
                    ("shard", prefix + (branch,), child)
                )
        entries = new_entries
        if not expanded:
            break
    return entries


def _explore_parallel(
    simulator: Simulator,
    scripts: Mapping[int, Sequence[Hashable]],
    property_check: object,
    crash_schedule: CrashSchedule | None,
    max_schedules: int,
    max_depth: int,
    stop_at_first_violation: bool,
    workers: int,
    dedup: bool,
) -> ExplorationResult:
    """Shard the tree over a worker pool and merge in DFS order.

    Under ``dedup`` each shard worker keeps a private transposition
    cache (shared-nothing): merged results stay deterministic and equal
    to the sequential dedup engine, only cross-shard convergences go
    unpruned.
    """
    global _SHARD_STATE
    result = ExplorationResult(
        schedules_explored=0, terminal_schedules=0, workers=workers
    )
    entries = _expand_frontier(
        simulator,
        scripts,
        property_check,
        crash_schedule,
        max_depth,
        target_shards=workers * 4,
        result=result,
    )
    if dedup:
        # frontier nodes were expanded here, before any cache existed
        result.states_seen = result.schedules_explored
    prefixes = [e[1] for e in entries if e[0] == "shard"]
    ctx = multiprocessing.get_context("fork")
    _SHARD_STATE = (
        simulator,
        scripts,
        property_check,
        crash_schedule,
        prefixes,
        max_schedules,
        max_depth,
        stop_at_first_violation,
        dedup,
    )
    try:
        with ctx.Pool(processes=workers) as pool:
            shard_outcomes = pool.imap(_explore_shard, range(len(prefixes)))
            for entry in entries:
                if result.terminal_schedules >= max_schedules:
                    result.exhausted = False
                    break
                if entry[0] == "terminal":
                    _, prefix, problems = entry
                    result.terminal_schedules += 1
                    if problems:
                        result.violations.append(
                            Violation(tuple(prefix), tuple(problems))
                        )
                        if stop_at_first_violation:
                            result.aborted = True
                            result.exhausted = False
                            break
                    continue
                sub = next(shard_outcomes)
                result.schedules_explored += sub.schedules_explored
                result.events_executed += sub.events_executed
                result.events_replayed += sub.events_replayed
                result.states_seen += sub.states_seen
                result.states_deduped += sub.states_deduped
                result.max_depth_seen = max(
                    result.max_depth_seen, sub.max_depth_seen
                )
                budget_left = max_schedules - result.terminal_schedules
                take = min(sub.terminal_schedules, budget_left)
                for ordinal, violation in sub.violations:
                    if ordinal < take:
                        result.violations.append(violation)
                result.terminal_schedules += take
                if take < sub.terminal_schedules or not sub.exhausted:
                    result.exhausted = False
                if sub.aborted:
                    result.aborted = True
                    result.exhausted = False
                    break
    finally:
        _SHARD_STATE = None
    return result


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def explore_schedules(
    simulator: Simulator,
    scripts: Mapping[int, Sequence[Hashable]],
    property_check: Property,
    *,
    crash_schedule: CrashSchedule | None = None,
    max_schedules: int = 100_000,
    max_depth: int = 400,
    stop_at_first_violation: bool = False,
    engine: str = "incremental",
    dedup: bool = False,
    workers: int = 1,
) -> ExplorationResult:
    """Enumerate every schedule of the configuration and check each.

    ``simulator`` provides the system (its seed/policy are ignored —
    scheduling is exhaustive, and local computation is made atomic, the
    sound reduction described on
    :class:`~repro.runtime.simulator.Simulator`); ``max_schedules``
    bounds the number of *terminal* schedules visited, ``max_depth`` the
    decision depth.  ``engine`` selects the incremental engine
    (default), the state-deduplicating ``"dedup"`` engine (the
    incremental engine with a fingerprint transposition cache —
    equivalently pass ``dedup=True``), or the historical from-scratch
    ``"replay"`` engine; ``workers > 1`` runs the incremental engine
    sharded over a process pool (see the module docstring for the merge
    semantics; with dedup, caches are per-shard).
    """
    if engine not in ("incremental", "dedup", "replay"):
        raise ValueError(
            f"unknown engine {engine!r}: expected 'incremental', "
            f"'dedup' or 'replay'"
        )
    if engine == "dedup":
        engine, dedup = "incremental", True
    if dedup and engine != "incremental":
        raise ValueError(
            "state deduplication requires the incremental engine"
        )
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if workers > 1 and engine != "incremental":
        raise ValueError("parallel exploration requires the incremental engine")
    simulator = Simulator(
        simulator.n,
        simulator.algorithm_factory,
        k=simulator.k,
        ksa_policy=simulator.ksa_policy,
        sync_broadcasts=simulator.sync_broadcasts,
        atomic_local=True,
    )
    if engine == "replay":
        return _explore_replay(
            simulator,
            scripts,
            property_check,
            crash_schedule,
            max_schedules,
            max_depth,
            stop_at_first_violation,
        )
    if workers > 1:
        try:
            multiprocessing.get_context("fork")
        except ValueError:
            workers = 1  # platform without fork: degrade gracefully
    if workers > 1:
        return _explore_parallel(
            simulator,
            scripts,
            property_check,
            crash_schedule,
            max_schedules,
            max_depth,
            stop_at_first_violation,
            workers,
            dedup,
        )
    sub = _explore_subtree(
        simulator,
        scripts,
        property_check,
        crash_schedule,
        (),
        max_schedules,
        max_depth,
        stop_at_first_violation,
        dedup=dedup,
    )
    return ExplorationResult(
        schedules_explored=sub.schedules_explored,
        terminal_schedules=sub.terminal_schedules,
        violations=[v for _, v in sub.violations],
        exhausted=sub.exhausted,
        max_depth_seen=sub.max_depth_seen,
        aborted=sub.aborted,
        events_executed=sub.events_executed,
        events_replayed=sub.events_replayed,
        workers=1,
        states_seen=sub.states_seen,
        states_deduped=sub.states_deduped,
    )

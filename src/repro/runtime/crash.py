"""Crash failure injection.

Processes in CAMP_n may halt prematurely at any point; the model places no
bound on how many (t = n - 1).  A :class:`CrashSchedule` tells the
simulator *when* each faulty process crashes, counted in scheduler
decisions, so that failure injection is deterministic and replayable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

__all__ = ["CrashSchedule"]


@dataclass(frozen=True)
class CrashSchedule:
    """When each faulty process crashes.

    ``at_step`` maps a process identifier to the global scheduler-step
    index at (or after) which it crashes; processes absent from the map
    are correct.  ``initially`` lists processes crashed before taking any
    step — the device Theorem 1 uses to embed CAMP_{k+1} into CAMP_n.
    """

    at_step: Mapping[int, int] = field(default_factory=dict)
    initially: frozenset[int] = field(default_factory=frozenset)

    @staticmethod
    def none() -> "CrashSchedule":
        """The failure-free schedule."""
        return CrashSchedule()

    @staticmethod
    def initial(processes: Iterable[int]) -> "CrashSchedule":
        """Crash ``processes`` before they take any step."""
        return CrashSchedule(initially=frozenset(processes))

    def faulty(self) -> frozenset[int]:
        """All processes that crash at some point under this schedule."""
        return frozenset(self.at_step) | self.initially

    def due(self, process: int, step_index: int) -> bool:
        """True if ``process`` should crash now (at ``step_index``)."""
        deadline = self.at_step.get(process)
        return deadline is not None and step_index >= deadline

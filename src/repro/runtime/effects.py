"""Effects: what a broadcast algorithm's step machine can do.

Algorithms in :mod:`repro.broadcasts` are written as Python generators that
*yield* effects; the drivers (:class:`repro.runtime.process.ProcessRuntime`
under the free simulator or the adversarial scheduler) turn each yielded
effect into exactly one step of the execution.  This gives the library the
paper's notion of "the next local step of p_i according to B in the
configuration C(α)" (Algorithm 1, line 8) for free.

Effect vocabulary:

* :class:`Send` — emit one point-to-point message (one ``send`` step);
* :class:`Propose` — invoke ``ksa.propose(v)``; the generator is resumed
  with the decided value (one ``propose`` step plus one ``decide`` step);
* :class:`Deliver` — trigger ``B.deliver`` of a message locally;
* :class:`Wait` — block until a guard over local state becomes true
  (allowed only in operation bodies, not in atomic ``upon receive``
  handlers);
* :class:`LocalNote` — an explicit internal step, for algorithms that want
  observable local computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Union

from ..core.message import Message

__all__ = [
    "Send",
    "Propose",
    "Deliver",
    "DeliverSet",
    "Wait",
    "LocalNote",
    "Effect",
]


@dataclass(frozen=True)
class Send:
    """Send ``payload`` to process ``dest`` over the point-to-point network."""

    dest: int
    payload: Hashable = None


@dataclass(frozen=True)
class Propose:
    """Propose ``value`` on the k-SA object named ``ksa``.

    The yielding generator is suspended across the propose/decide step pair
    and resumed with the decided value::

        decided = yield Propose("ksa:round3", my_value)
    """

    ksa: str
    value: Hashable = None


@dataclass(frozen=True)
class Deliver:
    """B-deliver ``message`` at the local process."""

    message: Message


@dataclass(frozen=True)
class DeliverSet:
    """B-deliver a *set* of messages at once (SCD-style interfaces)."""

    messages: tuple[Message, ...]


@dataclass(frozen=True)
class Wait:
    """Suspend the operation body until ``guard()`` returns true.

    The guard is evaluated against the algorithm's own mutable state, which
    ``upon receive`` handlers update.  ``reason`` appears in blocked-process
    diagnostics.
    """

    guard: Callable[[], bool]
    reason: str = ""


@dataclass(frozen=True)
class LocalNote:
    """An observable internal computation step (diagnostics only)."""

    label: str = ""


Effect = Union[Send, Propose, Deliver, DeliverSet, Wait, LocalNote]

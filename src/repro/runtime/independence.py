"""Dynamic independence of scheduling events — the POR foundation.

Two scheduling choices *commute* when taking them in either order from
the same state reaches the same state (equal
:meth:`~repro.runtime.simulator.SimulationRun.fingerprint`) and leaves
the same events enabled.  The schedule explorer's sleep-set reduction
(:mod:`repro.runtime.explorer`) uses commutation to prune redundant
interleavings *before* forking a run handle, so the relation here must
be sound: claiming independence for a dependent pair would silently
drop schedules.

Rather than reasoning statically about what an event *might* touch, the
simulator records what each committed event *actually* touched — its
:class:`Footprint`: the processes whose runtimes stepped (including the
``atomic_local`` drain the event triggered), the point-to-point
messages it emitted, whether it consulted a k-SA oracle object, and
whether a crash was injected alongside it.  Independence is then a pure
check over two footprints:

* disjoint process sets — neither event read or wrote the other's
  runtime, journal, scripts or sync gates;
* no emissions — the in-flight pool is fingerprinted *in insertion
  order* (it fixes the meaning of schedule guides), so two events that
  both append to the pool do not commute fingerprint-exactly even when
  they touch different processes.  This is why a reception whose
  handler forwards (Uniform Reliable Broadcast's first copy) is
  conservatively dependent while Send-To-All receptions always commute;
* no oracle touch — k-SA decision policies read the global
  proposals-so-far order, so propose steps never commute;
* no crash — crash schedules are indexed by the global decision count,
  so reordering two events across an injection changes which state the
  crash hits.

The conservative direction is always safe: a dependent verdict merely
keeps a branch.  The commutation differential tests
(``tests/runtime/test_independence.py``) execute both orders of every
claimed-independent pair from forked handles and compare fingerprints.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.actions import PointToPointId

__all__ = [
    "Footprint",
    "FootprintDraft",
    "choice_key",
    "independent",
    "observed_footprint",
]


@dataclass(frozen=True)
class Footprint:
    """What one committed scheduling event actually touched.

    Recorded by :meth:`~repro.runtime.simulator.SimulationRun.advance`
    and finalized when the next decision point's prelude (crash
    injection, ``atomic_local`` drain) has run, so the footprint covers
    the *whole* state delta between two consecutive decision points.
    """

    #: The choice kind that was committed: ``"local"``/``"recv"``/``"bcast"``.
    kind: str
    #: Processes whose runtime stepped (receiver, broadcaster, plus every
    #: process the post-event local drain advanced).
    pids: frozenset[int]
    #: Point-to-point messages emitted into the in-flight pool.
    sent: tuple[PointToPointId, ...] = ()
    #: True when the event (or its drain) proposed on a k-SA object.
    oracle: bool = False
    #: True when the next prelude injected a crash after this event.
    crashed: bool = False
    #: Still-alive victims of the crash schedule at the time the
    #: footprint was finalized.  Non-empty means a crash is *pending*:
    #: the dynamic relation stays conservative, but a
    #: :class:`~repro.statics.independence.StaticIndependence` table can
    #: still prove commutation when neither event touches a victim.
    pending: frozenset[int] = frozenset()


class FootprintDraft:
    """Mutable footprint being accumulated for the in-flight event."""

    __slots__ = ("kind", "origin", "pids", "sent", "oracle", "crashed",
                 "pending")

    def __init__(self, kind: str, pid: int) -> None:
        self.kind = kind
        #: The process the committed choice named (the receiver of a
        #: reception, the broadcaster of a start) — the anchor the
        #: footprint-validation mode checks ``pids`` against.
        self.origin = pid
        self.pids: set[int] = {pid}
        self.sent: list[PointToPointId] = []
        self.oracle = False
        self.crashed = False
        self.pending: frozenset[int] = frozenset()

    def copy(self) -> "FootprintDraft":
        clone = FootprintDraft(self.kind, self.origin)
        clone.pids = set(self.pids)
        clone.sent = list(self.sent)
        clone.oracle = self.oracle
        clone.crashed = self.crashed
        clone.pending = self.pending
        return clone

    def freeze(self) -> Footprint:
        return Footprint(
            self.kind,
            frozenset(self.pids),
            tuple(self.sent),
            self.oracle,
            self.crashed,
            self.pending,
        )


def independent(a: Footprint | None, b: Footprint | None) -> bool:
    """May the two recorded events be taken in either order?

    True only when commutation is *fingerprint-exact*: same reached
    state, same enabled events, same schedule-guide meaning.  ``None``
    (no footprint recorded) is conservatively dependent.
    """
    if a is None or b is None:
        return False
    if a.crashed or b.crashed:
        return False
    if a.pending or b.pending:
        # A crash is still scheduled at a *global* decision count; the
        # recorded footprints alone cannot rule out that reordering
        # changes what the injection lands on, so the dynamic relation
        # stays conservative (a static commutation proof can refine it:
        # :mod:`repro.statics.independence`).
        return False
    if a.oracle or b.oracle:
        return False
    if a.sent or b.sent:
        return False
    return not (a.pids & b.pids)


def choice_key(choice: tuple[str, object]) -> tuple:
    """A stable identity for an enabled choice, across sibling states.

    Choice *indices* shift as the enabled list evolves; the key does
    not: a reception is identified by its point-to-point identity, a
    local step or broadcast start by its process.  Sleep sets are keyed
    by this, so an event put to sleep at one node is recognized among
    the (re-indexed) choices of a descendant node.
    """
    kind, payload = choice
    if kind == "recv":
        p2p = payload.p2p  # type: ignore[attr-defined]
        return ("recv", p2p.sender, p2p.receiver, p2p.seq)
    return (kind, payload)


def observed_footprint(run, index: int) -> Footprint | None:
    """The footprint of taking choice ``index`` from ``run``, on a fork.

    Executes the event (and the following decision point's prelude) on
    an independent fork, leaving ``run`` untouched — the probe the
    commutation tests use; the explorer itself reads
    ``SimulationRun.last_footprint`` from the handles it advances
    anyway, at zero extra cost.
    """
    probe = run.fork()
    enabled = probe.choices()
    if not enabled:
        raise ValueError(
            "observed_footprint probed a terminal run: no event is "
            "enabled, so there is no footprint to observe (advance "
            "would have rejected the index with an out-of-range error "
            "that hides the real cause)"
        )
    probe.advance(index)
    probe.choices()
    return probe.last_footprint

"""Dynamic independence of scheduling events — the POR foundation.

Two scheduling choices *commute* when taking them in either order from
the same state reaches the same state (equal
:meth:`~repro.runtime.simulator.SimulationRun.fingerprint`) and leaves
the same events enabled.  The schedule explorer's sleep-set reduction
(:mod:`repro.runtime.explorer`) uses commutation to prune redundant
interleavings *before* forking a run handle, so the relation here must
be sound: claiming independence for a dependent pair would silently
drop schedules.

Rather than reasoning statically about what an event *might* touch, the
simulator records what each committed event *actually* touched — its
:class:`Footprint`: the processes whose runtimes stepped (including the
``atomic_local`` drain the event triggered), the point-to-point
messages it emitted, whether it consulted a k-SA oracle object, and
whether a crash was injected alongside it.  Independence is then a pure
check over two footprints:

* disjoint process sets — neither event read or wrote the other's
  runtime, journal, scripts or sync gates;
* no emissions — the in-flight pool is fingerprinted *in insertion
  order* (it fixes the meaning of schedule guides), so two events that
  both append to the pool do not commute fingerprint-exactly even when
  they touch different processes.  This is why a reception whose
  handler forwards (Uniform Reliable Broadcast's first copy) is
  conservatively dependent while Send-To-All receptions always commute;
* no oracle touch — k-SA decision policies read the global
  proposals-so-far order, so propose steps never commute;
* no crash in the pair's window — crash schedules are indexed by the
  global decision count, and an adjacent swap preserves every
  subsequent count, so the victims an event must avoid are exactly
  those whose injection lands between or immediately after the pair
  (``crashed_pids`` and ``imminent`` below).

Crashes — fired or pending — used to make the relation
blanket-conservative.  The crash-aware proof replaces that: crashes
inject at a fixed *global decision count*, and swapping two adjacent
events preserves every subsequent decision count, so the injection
lands on the same index either way.  For a pair enabled at decision
count *s* (events committing at counts *s+1* and *s+2*), a schedule
entry with deadline *t* interacts with the swap in exactly one of
three ways:

* ``t == s+1`` — the injection fires *between* the pair, at the
  prelude after whichever event ran first, the same count in both
  orders.  Both probed footprints record the victim in
  ``crashed_pids``; the pair commutes iff neither event touched it.
* ``t == s+2`` — the injection fires at the prelude after the second
  event, *before* that prelude's ``atomic_local`` drain.  An event
  touching the victim therefore behaves differently in second position
  (its handler work on the victim is cut off by the crash) than in
  first (fully drained one prelude earlier) — so the pair commutes
  only when neither event's ``pids`` intersects the victims due at
  exactly that count: the **imminent** set.
* ``t > s+2`` — the injection fires after both events in both orders;
  every victim is alive throughout the pair's window either way, and
  the swap is invisible to the crash *even if the events touch the
  victim*.

The recorded footprint distinguishes the imminent and just-killed
sets from the full still-alive victim set (``pending``), which is
what makes the third case provable — the historical blanket refused
every one of them wholesale.  :func:`classify` reports which argument
carried the verdict so the explorer can count them.

The conservative direction is always safe: a dependent verdict merely
keeps a branch.  The commutation differential tests
(``tests/runtime/test_independence.py``) execute both orders of every
claimed-independent pair from forked handles — including at every
pending-crash decision point of crash-heavy configs — and compare
fingerprints and enabled sets.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.actions import PointToPointId

__all__ = [
    "Footprint",
    "FootprintDraft",
    "choice_key",
    "classify",
    "conservative_independent",
    "independent",
    "observed_footprint",
]


@dataclass(frozen=True)
class Footprint:
    """What one committed scheduling event actually touched.

    Recorded by :meth:`~repro.runtime.simulator.SimulationRun.advance`
    and finalized when the next decision point's prelude (crash
    injection, ``atomic_local`` drain) has run, so the footprint covers
    the *whole* state delta between two consecutive decision points.
    """

    #: The choice kind that was committed: ``"local"``/``"recv"``/``"bcast"``.
    kind: str
    #: Processes whose runtime stepped (receiver, broadcaster, plus every
    #: process the post-event local drain advanced).
    pids: frozenset[int]
    #: Point-to-point messages emitted into the in-flight pool.
    sent: tuple[PointToPointId, ...] = ()
    #: True when the event (or its drain) proposed on a k-SA object.
    oracle: bool = False
    #: True when the next prelude injected a crash after this event.
    #: Kept for observability and for the historical blanket relation
    #: (:func:`conservative_independent`); the crash-aware check uses
    #: ``crashed_pids`` instead.
    crashed: bool = False
    #: Still-alive victims of the crash schedule at the time the
    #: footprint was finalized.  Non-empty means a crash is *pending*;
    #: the historical blanket relation
    #: (:func:`conservative_independent`) refuses any such pair, and
    #: :func:`classify` uses it to attribute crash-aware verdicts.
    pending: frozenset[int] = frozenset()
    #: The pending schedule itself: sorted ``(victim, deadline)`` pairs
    #: for every still-alive victim, where ``deadline`` is the global
    #: decision count at which the injection fires.  Observability and
    #: the commutation differential tests use this to locate
    #: pending-crash decision points.
    pending_deadlines: tuple[tuple[int, int], ...] = ()
    #: Victims due to crash at the *next* decision count after this
    #: footprint was finalized — the only pending entries an adjacent
    #: swap can observe (the injection would land after the second
    #: event of the pair, ahead of that prelude's drain).  The hot
    #: independence check needs exactly this set.
    imminent: frozenset[int] = frozenset()
    #: Victims the finalizing prelude actually killed (``crashed`` is
    #: True iff this is non-empty).  For a pair probed from the same
    #: state the injection fires *between* the two events in both
    #: orders — at the same decision count — so the swap commutes
    #: whenever neither event touched one of these victims.
    crashed_pids: frozenset[int] = frozenset()


class FootprintDraft:
    """Mutable footprint being accumulated for the in-flight event."""

    __slots__ = ("kind", "origin", "pids", "sent", "oracle", "crashed",
                 "pending", "pending_deadlines", "imminent",
                 "crashed_pids")

    def __init__(self, kind: str, pid: int) -> None:
        self.kind = kind
        #: The process the committed choice named (the receiver of a
        #: reception, the broadcaster of a start) — the anchor the
        #: footprint-validation mode checks ``pids`` against.
        self.origin = pid
        self.pids: set[int] = {pid}
        self.sent: list[PointToPointId] = []
        self.oracle = False
        self.crashed = False
        self.pending: frozenset[int] = frozenset()
        self.pending_deadlines: tuple[tuple[int, int], ...] = ()
        self.imminent: frozenset[int] = frozenset()
        self.crashed_pids: frozenset[int] = frozenset()

    def copy(self) -> "FootprintDraft":
        clone = FootprintDraft(self.kind, self.origin)
        clone.pids = set(self.pids)
        clone.sent = list(self.sent)
        clone.oracle = self.oracle
        clone.crashed = self.crashed
        clone.pending = self.pending
        clone.pending_deadlines = self.pending_deadlines
        clone.imminent = self.imminent
        clone.crashed_pids = self.crashed_pids
        return clone

    def freeze(self) -> Footprint:
        return Footprint(
            self.kind,
            frozenset(self.pids),
            tuple(self.sent),
            self.oracle,
            self.crashed,
            self.pending,
            self.pending_deadlines,
            self.imminent,
            self.crashed_pids,
        )


def independent(a: Footprint | None, b: Footprint | None) -> bool:
    """May the two recorded events be taken in either order?

    True only when commutation is *fingerprint-exact*: same reached
    state, same enabled events, same schedule-guide meaning.  ``None``
    (no footprint recorded) is conservatively dependent.

    Crash-aware: a crash no longer blankets the pair.  The injection
    fires at a global decision count that an adjacent swap preserves,
    so the only victims the swap can observe are those whose injection
    lands inside the pair's window: the ones the probe's own prelude
    killed (``crashed_pids`` — between the two events, at the same
    count in both orders) and the ones due at the very next count
    (``imminent`` — after the second event, ahead of that prelude's
    drain).  The pair commutes iff neither event's ``pids`` (including
    the ``atomic_local`` drain) intersects either set.  Victims with
    later deadlines crash after both events in both orders, so they
    impose no constraint at all.
    """
    if a is None or b is None:
        return False
    if a.oracle or b.oracle:
        return False
    if a.sent or b.sent:
        return False
    if a.pids & b.pids:
        return False
    # Crash-aware victim disjointness: swapping adjacent events keeps
    # every later decision count, so an injection lands on the same
    # index either way — it is only observable through the pair if one
    # of them advanced a victim that dies inside the pair's window
    # (killed by the probed prelude, or due at the count right after
    # the second event, where the prelude injects before draining and
    # cuts off that victim's handler work when its event runs second).
    hazards = a.crashed_pids | b.crashed_pids | a.imminent | b.imminent
    return not ((a.pids | b.pids) & hazards)


def conservative_independent(
    a: Footprint | None, b: Footprint | None
) -> bool:
    """The pre-crash-aware relation: any pending crash blankets the pair.

    Kept for before/after benchmarking (``crash_aware=False`` engine
    variants) and as the reference the crash-aware differential tests
    strengthen against.
    """
    if a is None or b is None:
        return False
    if a.crashed or b.crashed:
        return False
    if a.pending or b.pending:
        return False
    return independent(a, b)


def classify(
    a: Footprint | None, b: Footprint | None
) -> tuple[bool, str]:
    """The :func:`independent` verdict plus the argument that carried it.

    Sources:

    * ``"dynamic"`` — independent with no pending crash in sight (the
      pre-crash-aware relation would have agreed);
    * ``"crash_proof"`` — independent *because* the crash-aware victim
      disjointness argument discharged a pending or fired crash that
      the old blanket would have refused;
    * ``"conservative"`` — dependent (branch kept).

    The explorer adds a fourth source, ``"static_table"``, when the
    :class:`~repro.statics.independence.StaticIndependence` fallback
    proves a pair this relation declined.
    """
    if not independent(a, b):
        return (False, "conservative")
    assert a is not None and b is not None
    if a.pending or b.pending or a.crashed or b.crashed:
        return (True, "crash_proof")
    return (True, "dynamic")


def choice_key(choice: tuple[str, object]) -> tuple:
    """A stable identity for an enabled choice, across sibling states.

    Choice *indices* shift as the enabled list evolves; the key does
    not: a reception is identified by its point-to-point identity, a
    local step or broadcast start by its process.  Sleep sets are keyed
    by this, so an event put to sleep at one node is recognized among
    the (re-indexed) choices of a descendant node.
    """
    kind, payload = choice
    if kind == "recv":
        p2p = payload.p2p  # type: ignore[attr-defined]
        return ("recv", p2p.sender, p2p.receiver, p2p.seq)
    return (kind, payload)


def observed_footprint(run, index: int) -> Footprint | None:
    """The footprint of taking choice ``index`` from ``run``, on a fork.

    Executes the event (and the following decision point's prelude) on
    an independent fork, leaving ``run`` untouched — the probe the
    commutation tests use; the explorer itself reads
    ``SimulationRun.last_footprint`` from the handles it advances
    anyway, at zero extra cost.

    ``choices()`` is enumerated once per probe: the terminal guard runs
    on ``run`` itself (idempotent — the enumeration is cached on the
    handle), so the fork inherits the cached choice list and only the
    post-event prelude enumerates fresh state.
    """
    enabled = run.choices()
    if not enabled:
        raise ValueError(
            "observed_footprint probed a terminal run: no event is "
            "enabled, so there is no footprint to observe (advance "
            "would have rejected the index with an out-of-range error "
            "that hides the real cause)"
        )
    probe = run.fork()
    probe.advance(index)
    probe.choices()
    return probe.last_footprint

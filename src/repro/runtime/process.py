"""Deterministic per-process step machines.

A :class:`BroadcastProcess` is one process's instance of a broadcast
algorithm ``B``: event-handler generators written against the effect
vocabulary of :mod:`repro.runtime.effects`.  A :class:`ProcessRuntime`
drives one such instance step by step, exposing exactly the interface
Algorithm 1 needs:

* :meth:`ProcessRuntime.start_broadcast` — begin a ``B.broadcast(m)``
  invocation (Algorithm 1 line 7);
* :meth:`ProcessRuntime.next_step` — produce "p_i's next local step
  according to B in C(α)" (line 8);
* :meth:`ProcessRuntime.inject_receive` — a ``receive`` event occurred
  (lines 11/23/26); the matching ``upon receive`` handler runs atomically
  over the subsequent ``next_step`` calls;
* :meth:`ProcessRuntime.resume_decide` — the pending ``propose`` was
  decided (lines 16–20).

Scheduling inside one process is deterministic: pending ``upon receive``
handlers run first (FIFO, to completion), then the operation body.  The
operation body may suspend on :class:`~repro.runtime.effects.Wait` guards;
a process whose operation is waiting and whose handler queue is empty has
no enabled local step and reports :class:`Blocked`.
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterable, Iterator, Sequence

from ..core.actions import PointToPointId
from ..core.message import Message, MessageFactory, MessageId
from .fingerprint import stable_digest
from .effects import (
    Deliver,
    DeliverSet,
    Effect,
    LocalNote,
    Propose,
    Send,
    Wait,
)

__all__ = [
    "BroadcastProcess",
    "ProcessRuntime",
    "SendStep",
    "ProposeStep",
    "DeliverStep",
    "DeliverSetStep",
    "ReturnStep",
    "LocalStep",
    "Blocked",
    "Idle",
    "RuntimeOutcome",
    "ProtocolError",
]


class ProtocolError(Exception):
    """An algorithm or driver violated the step-machine protocol."""


class BroadcastProcess(ABC):
    """One process's instance of a broadcast algorithm.

    Subclasses implement the two event handlers as generators over
    :class:`~repro.runtime.effects.Effect`:

    * :meth:`on_broadcast` — the body of ``B.broadcast(m)``; it runs until
      exhaustion, at which point the invocation returns.  May ``Wait``.
    * :meth:`on_receive` — the ``upon receive`` handler; atomic, must not
      ``Wait``.
    """

    def __init__(self, pid: int, n: int) -> None:
        self.pid = pid
        self.n = n

    @abstractmethod
    def on_broadcast(self, message: Message) -> Iterator[Effect]:
        """Steps taken while executing ``B.broadcast(message)``."""

    @abstractmethod
    def on_receive(self, payload: Hashable, sender: int) -> Iterator[Effect]:
        """Steps taken upon receiving ``payload`` from ``sender``."""

    def symmetric_processes(self) -> Sequence[Iterable[int]] | None:
        """Groups of process ids this algorithm treats interchangeably.

        Returning groups declares *renaming equivariance*: for any
        permutation of pids within a group (identity elsewhere) and any
        injective renaming of message contents, the permuted-and-renamed
        image of a reachable system state behaves exactly like the
        original (same schedule tree up to the relabeling).  That holds
        when instances of the algorithm differ only in ``self.pid``,
        address processes uniformly (``send_to_all``, ``others()``) and
        never branch on a content's *value* — only on identity equality.
        The schedule explorer's ``symmetry="rename"`` reduction prunes
        states that are images of an already-expanded state under such a
        relabeling, so a wrong declaration silently drops schedules.

        The default ``None`` declares nothing and disables symmetry
        reduction for the algorithm.  Declared groups are further
        restricted by the explorer (crash-faulty pids are pinned, script
        shapes must match, the k-SA decision policy must be
        pid-uniform).
        """
        return None

    # -- convenience -----------------------------------------------------

    def everyone(self) -> range:
        """All process identifiers, including this process."""
        return range(self.n)

    def others(self) -> Iterator[int]:
        """All process identifiers except this process."""
        return (p for p in range(self.n) if p != self.pid)

    def send_to_all(self, payload: Hashable) -> Iterator[Effect]:
        """Yield ``Send`` effects addressing every process (self included)."""
        for dest in self.everyone():
            yield Send(dest, payload)


# ---------------------------------------------------------------------------
# Outcomes of ProcessRuntime.next_step
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SendStep:
    """The process emitted one point-to-point message."""

    p2p: PointToPointId
    payload: Hashable


@dataclass(frozen=True)
class ProposeStep:
    """The process invoked ``ksa.propose(value)`` and awaits the decision."""

    ksa: str
    value: Hashable


@dataclass(frozen=True)
class DeliverStep:
    """The process B-delivered ``message``."""

    message: Message


@dataclass(frozen=True)
class DeliverSetStep:
    """The process B-delivered a set of messages (SCD interface)."""

    messages: tuple[Message, ...]


@dataclass(frozen=True)
class ReturnStep:
    """The pending ``B.broadcast(message)`` invocation returned."""

    message: Message


@dataclass(frozen=True)
class LocalStep:
    """The process took an internal computation step."""

    label: str


@dataclass(frozen=True)
class Blocked:
    """No enabled local step: the operation body is waiting on a guard."""

    reason: str


@dataclass(frozen=True)
class Idle:
    """No operation in progress and no pending handler work."""


RuntimeOutcome = (
    SendStep | ProposeStep | DeliverStep | DeliverSetStep | ReturnStep
    | LocalStep | Blocked | Idle
)


class ProcessRuntime:
    """Drives one :class:`BroadcastProcess` one step at a time."""

    def __init__(
        self,
        algorithm: BroadcastProcess,
        *,
        message_factory: MessageFactory | None = None,
    ) -> None:
        self.algorithm = algorithm
        self.pid = algorithm.pid
        self.n = algorithm.n
        self._factory = message_factory or MessageFactory()
        self._p2p_seq: dict[int, int] = {}
        self._handlers: deque[Iterator[Effect]] = deque()
        self._operation: Iterator[Effect] | None = None
        self._operation_message: Message | None = None
        self._waiting: Wait | None = None
        #: Generator that emitted a Propose and has not been decided yet.
        self._awaiting_decide: Iterator[Effect] | None = None
        #: Decided values waiting to be fed back, keyed by generator id.
        #: Several generators can be suspended at once (the operation plus
        #: the front 'upon receive' handler), so this is a map, not a slot.
        self._resume_values: dict[int, Hashable] = {}
        self._suspended: set[int] = set()
        #: Messages delivered locally, in delivery order.
        self.delivered: list[Message] = []
        self._delivered_uids: set[MessageId] = set()
        #: Messages whose broadcast invocation has returned.
        self.returned_uids: set[MessageId] = set()
        #: Journal of driver calls, the process's *input log*.  The local
        #: state of a deterministic algorithm is a function of this log,
        #: which is what makes a runtime with a live (suspended) operation
        #: generator forkable: generators cannot be copied, but the log
        #: can be replayed into a fresh instance (see :meth:`fork`).
        self._journal: list[tuple[Any, ...]] = []
        self._recording = True

    # -- driver API ------------------------------------------------------

    def start_broadcast(
        self, content: Hashable, *, _replay_message: Message | None = None
    ) -> Message:
        """Begin a ``B.broadcast`` invocation; returns the minted message."""
        if self._operation is not None:
            raise ProtocolError(
                f"p{self.pid}: broadcast invoked while a previous "
                f"invocation is pending"
            )
        if _replay_message is not None:
            message = _replay_message
        else:
            message = self._factory.new(self.pid, content)
        if self._recording:
            self._journal.append(("b", message))
        self._operation = self.algorithm.on_broadcast(message)
        self._operation_message = message
        self._waiting = None
        return message

    def inject_receive(self, p2p: PointToPointId, payload: Hashable) -> None:
        """A ``receive`` event occurred; queue its handler."""
        if p2p.receiver != self.pid:
            raise ProtocolError(
                f"p{self.pid}: received a message addressed to "
                f"p{p2p.receiver}"
            )
        if self._recording:
            self._journal.append(("r", p2p, payload))
        self._handlers.append(
            self.algorithm.on_receive(payload, p2p.sender)
        )

    def resume_decide(self, value: Hashable) -> None:
        """Provide the decided value for the pending ``propose``."""
        if self._awaiting_decide is None:
            raise ProtocolError(
                f"p{self.pid}: decide without a pending proposal"
            )
        if self._recording:
            self._journal.append(("d", value))
        self._resume_values[id(self._awaiting_decide)] = value
        self._awaiting_decide = None

    def mint_p2p(self, dest: int) -> PointToPointId:
        """Mint a unique point-to-point message identity towards ``dest``."""
        seq = self._p2p_seq.get(dest, 0)
        self._p2p_seq[dest] = seq + 1
        return PointToPointId(self.pid, dest, seq)

    @property
    def operation_message(self) -> Message | None:
        """The message of the in-progress broadcast invocation, if any."""
        return self._operation_message

    @property
    def busy(self) -> bool:
        """True while a broadcast invocation has not yet returned."""
        return self._operation is not None

    @property
    def waiting_reason(self) -> str | None:
        """The reason of the operation's current Wait, if it is waiting."""
        if self._waiting is None:
            return None
        return self._waiting.reason or "operation waiting"

    def has_delivered(self, uid: MessageId) -> bool:
        return uid in self._delivered_uids

    def journal_entries(self) -> tuple[tuple[Any, ...], ...]:
        """The driver-call journal, the process's complete input log.

        A read-only snapshot; the symmetry canonicalizer re-encodes it
        under pid permutations, where :meth:`fingerprint` only needs the
        digest of the raw entries.
        """
        return tuple(self._journal)

    def fingerprint(self) -> str:
        """A stable structural digest of this runtime's local state.

        The journal is the process's complete input log and the
        algorithm is a deterministic step machine, so the local state —
        generators, delivered/returned bookkeeping, sequence counters —
        is a function of ``(pid, journal)``; digesting the journal
        therefore identifies the state without touching live generators.
        Equal fingerprints mean the two runtimes behave identically on
        every future driver call (the same argument that makes
        journal-replay :meth:`fork` sound).
        """
        return stable_digest("process", self.pid, self._journal)

    # -- snapshot / fork -------------------------------------------------

    def fork(
        self,
        *,
        message_factory: MessageFactory,
        algorithm_factory: Callable[[int, int], BroadcastProcess]
        | None = None,
    ) -> tuple["ProcessRuntime", int]:
        """An independent runtime in the same local state.

        Returns ``(clone, replayed_steps)`` where ``replayed_steps`` is
        the number of local steps the clone had to re-execute.

        Two strategies, chosen automatically:

        * **structural copy** — when no generator is live (no operation in
          progress, no queued handlers), the runtime's state is plain
          data; the algorithm instance is deep-copied (messages are
          shared, they are immutable) and bookkeeping is copied.  Cost:
          O(local state), zero re-executed steps.
        * **journal replay** — a live generator (an operation suspended on
          a ``Wait`` guard, or pending handlers) cannot be copied; the
          clone is rebuilt by replaying the recorded driver-call journal
          into a fresh algorithm instance (``algorithm_factory`` is
          required in this case).  Determinism of the algorithm makes the
          replayed state identical.

        Forking while a ``propose`` awaits its decision is a protocol
        error — drivers resolve decisions atomically with the propose
        step, so no consistent snapshot exists at that point.
        """
        if self._awaiting_decide is not None:
            raise ProtocolError(
                f"p{self.pid}: fork while awaiting a k-SA decision"
            )
        if (
            self._operation is None
            and not self._handlers
            and not self._resume_values
        ):
            try:
                algorithm = copy.deepcopy(self.algorithm)
            except TypeError:
                algorithm = None  # instance holds a generator; replay below
            if algorithm is not None:
                clone = ProcessRuntime(
                    algorithm, message_factory=message_factory
                )
                clone._p2p_seq = dict(self._p2p_seq)
                clone.delivered = list(self.delivered)
                clone._delivered_uids = set(self._delivered_uids)
                clone.returned_uids = set(self.returned_uids)
                clone._journal = list(self._journal)
                return clone, 0
        if algorithm_factory is None:
            raise ProtocolError(
                f"p{self.pid}: fork mid-operation requires an "
                f"algorithm_factory to replay the driver journal"
            )
        clone = ProcessRuntime(
            algorithm_factory(self.pid, self.n),
            message_factory=message_factory,
        )
        clone._recording = False
        replayed = 0
        for entry in self._journal:
            kind = entry[0]
            if kind == "s":
                clone.next_step()
                replayed += 1
            elif kind == "r":
                clone.inject_receive(entry[1], entry[2])
            elif kind == "b":
                message = entry[1]
                clone.start_broadcast(
                    message.content, _replay_message=message
                )
            else:  # "d"
                clone.resume_decide(entry[1])
        clone._recording = True
        clone._journal = list(self._journal)
        return clone, replayed

    def has_enabled_step(self) -> bool:
        """True if ``next_step`` would produce an actual step."""
        outcome = self._peek()
        return not isinstance(outcome, (Blocked, Idle))

    def _peek(self) -> RuntimeOutcome | None:
        if self._awaiting_decide is not None:
            raise ProtocolError(
                f"p{self.pid}: stepped while awaiting a k-SA decision"
            )
        if self._handlers or self._resume_values:
            return None  # definitely has work
        if self._operation is None:
            return Idle()
        if self._waiting is not None and not self._waiting.guard():
            return Blocked(self._waiting.reason or "operation waiting")
        return None

    # -- the heart: one local step ----------------------------------------

    def next_step(self) -> RuntimeOutcome:
        """Produce the process's next local step according to the algorithm.

        Handler generators take priority (FIFO, atomic); the operation body
        runs when no handler is pending.  Exhausted generators are skipped
        transparently; an exhausted operation body produces
        :class:`ReturnStep`.
        """
        if self._recording:
            self._journal.append(("s",))
        while True:
            peeked = self._peek()
            if peeked is not None:
                return peeked
            source, resume_value = self._pick_source()
            try:
                effect = source.send(resume_value)
            except StopIteration:
                if source is self._operation:
                    message = self._operation_message
                    assert message is not None
                    self._operation = None
                    self._operation_message = None
                    self._waiting = None
                    self.returned_uids.add(message.uid)
                    return ReturnStep(message)
                self._handlers.popleft()
                continue
            outcome = self._apply_effect(source, effect)
            if outcome is not None:
                return outcome

    def _pick_source(self) -> tuple[Iterator[Effect], Hashable]:
        """Choose the generator to advance and the value to resume it with.

        'Upon receive' handlers run first (atomic event-handler
        semantics); a generator suspended on a ``propose`` resumes with
        its decided value when its turn comes.  In particular an
        *operation* suspended on a decision resumes only once the handler
        queue is quiet, so messages received across the propose/decide
        pair are processed before the operation continues — this is the
        window in which SCD-style batching accumulates.
        """
        source = self._handlers[0] if self._handlers else self._operation
        assert source is not None
        if id(source) in self._suspended:
            if id(source) not in self._resume_values:
                raise ProtocolError(
                    f"p{self.pid}: generator suspended on a proposal "
                    f"whose decision never arrived"
                )
            self._suspended.discard(id(source))
            return source, self._resume_values.pop(id(source))
        if source is self._operation:
            self._waiting = None
        return source, None

    def _apply_effect(
        self, source: Iterator[Effect], effect: Effect
    ) -> RuntimeOutcome | None:
        """Translate one yielded effect into a runtime outcome (or none)."""
        if isinstance(effect, Send):
            return SendStep(self.mint_p2p(effect.dest), effect.payload)
        if isinstance(effect, Propose):
            self._awaiting_decide = source
            self._suspended.add(id(source))
            return ProposeStep(effect.ksa, effect.value)
        if isinstance(effect, Deliver):
            if effect.message.uid in self._delivered_uids:
                raise ProtocolError(
                    f"p{self.pid}: algorithm delivers "
                    f"{effect.message} twice"
                )
            self.delivered.append(effect.message)
            self._delivered_uids.add(effect.message.uid)
            return DeliverStep(effect.message)
        if isinstance(effect, DeliverSet):
            messages = tuple(
                sorted(effect.messages, key=lambda m: m.uid)
            )
            if not messages:
                raise ProtocolError(
                    f"p{self.pid}: algorithm delivers an empty set"
                )
            for message in messages:
                if message.uid in self._delivered_uids:
                    raise ProtocolError(
                        f"p{self.pid}: algorithm delivers {message} twice"
                    )
                self.delivered.append(message)
                self._delivered_uids.add(message.uid)
            return DeliverSetStep(messages)
        if isinstance(effect, Wait):
            if source is not self._operation:
                raise ProtocolError(
                    f"p{self.pid}: Wait inside an atomic 'upon receive' "
                    f"handler"
                )
            if effect.guard():
                return None  # guard already true: zero-cost transition
            self._waiting = effect
            return Blocked(effect.reason or "operation waiting")
        if isinstance(effect, LocalNote):
            return LocalStep(effect.label)
        raise ProtocolError(
            f"p{self.pid}: algorithm yielded unknown effect {effect!r}"
        )

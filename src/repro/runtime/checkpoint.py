"""Versioned, atomically-written checkpoints for the schedule explorer.

An interrupted exploration used to be lost work: the DFS frontier, the
transposition cache, and the partial counters lived only in process
memory.  This module gives them an at-rest form.  A checkpoint file is
one JSON envelope::

    {"integrity": "<digest>", "checkpoint": {"schema": 1, ...}}

where ``integrity`` is :func:`~repro.runtime.fingerprint.payload_digest`
over the canonical JSON encoding of the body — a truncated or
bit-flipped file is rejected loudly instead of resuming a corrupted
search.  Files are written with the same atomic-replace discipline as
the server's memo store (tmp file + ``os.replace``), so readers never
observe a half-written checkpoint, and the previous checkpoint survives
a crash mid-write.

The body's ``config`` field is :func:`config_digest` over everything
that determines the search tree — system size, algorithm, scripts,
crash schedule, engine reductions, bounds — so a checkpoint can only
resume the exploration it was written for; resuming against a different
configuration raises :class:`CheckpointError` instead of silently
merging incompatible partial results.

The explorer-facing codecs here cover the search-state leaves shared
across engines: recorded event :class:`~repro.runtime.independence.
Footprint`\\ s, sleep-set/choice keys, and sleep sets themselves.  The
engine-private structures (subtree summaries, cache entries, DFS
frames) are encoded by :mod:`repro.runtime.explorer`, which owns their
types.
"""

from __future__ import annotations

import json
import os
from typing import Any, Mapping

from ..core.actions import PointToPointId
from .fingerprint import payload_digest, stable_digest
from .independence import Footprint

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointError",
    "config_digest",
    "footprint_from_json",
    "footprint_to_json",
    "key_from_json",
    "key_to_json",
    "read_checkpoint",
    "sleep_from_json",
    "sleep_to_json",
    "write_checkpoint",
]

#: Version of the checkpoint body layout.  Bumped whenever the frame,
#: cache, or outcome encodings change shape: a checkpoint written by an
#: incompatible engine version must never be resumed, only discarded.
#: Schema 2: footprints carry ``pending_deadlines`` and ``imminent``
#: (crash-aware commutation) and outcomes carry ``independence_stats``.
CHECKPOINT_SCHEMA = 2


class CheckpointError(ValueError):
    """A checkpoint that cannot be read, verified, or resumed."""


# ---------------------------------------------------------------------------
# Leaf codecs: footprints, choice/sleep keys, sleep sets
# ---------------------------------------------------------------------------


def footprint_to_json(footprint: Footprint) -> dict:
    """A lossless JSON dict for one recorded event footprint."""
    return {
        "kind": footprint.kind,
        "pids": sorted(footprint.pids),
        "sent": [[p.sender, p.receiver, p.seq] for p in footprint.sent],
        "oracle": footprint.oracle,
        "crashed": footprint.crashed,
        "pending": sorted(footprint.pending),
        "deadlines": [
            [p, step] for p, step in footprint.pending_deadlines
        ],
        "imminent": sorted(footprint.imminent),
        "crashed_pids": sorted(footprint.crashed_pids),
    }


def footprint_from_json(data: Mapping[str, Any]) -> Footprint:
    """Rebuild a :class:`Footprint` from :func:`footprint_to_json`."""
    return Footprint(
        kind=str(data["kind"]),
        pids=frozenset(int(p) for p in data["pids"]),
        sent=tuple(
            PointToPointId(int(s), int(r), int(q))
            for s, r, q in data["sent"]
        ),
        oracle=bool(data["oracle"]),
        crashed=bool(data["crashed"]),
        pending=frozenset(int(p) for p in data["pending"]),
        pending_deadlines=tuple(
            (int(p), int(step)) for p, step in data.get("deadlines", ())
        ),
        imminent=frozenset(int(p) for p in data.get("imminent", ())),
        crashed_pids=frozenset(
            int(p) for p in data.get("crashed_pids", ())
        ),
    )


def key_to_json(key: tuple) -> list:
    """A choice/sleep key (a flat tuple of strings and ints) as JSON."""
    return list(key)


def key_from_json(data: list) -> tuple:
    """Rebuild a choice/sleep key from :func:`key_to_json`.

    JSON keeps the leaf types (strings stay strings, ints stay ints),
    so the tuple round-trips exactly — which matters: sleep-set
    membership is an exact-equality test.
    """
    return tuple(data)


def sleep_to_json(sleep: Mapping[tuple, Footprint]) -> list:
    """A sleep set (key → slept event's footprint) as a JSON pair list."""
    return [
        [key_to_json(key), footprint_to_json(footprint)]
        for key, footprint in sorted(
            sleep.items(), key=lambda item: repr(item[0])
        )
    ]


def sleep_from_json(data: list) -> dict:
    """Rebuild a sleep set from :func:`sleep_to_json`."""
    return {
        key_from_json(key): footprint_from_json(footprint)
        for key, footprint in data
    }


# ---------------------------------------------------------------------------
# Configuration identity
# ---------------------------------------------------------------------------


def config_digest(**facets: Any) -> str:
    """A stable digest of an exploration configuration.

    The caller passes every facet that determines the search tree and
    the result semantics (the explorer passes system size, algorithm,
    scripts, crash schedule, engine reductions, and bounds).  Facet
    values go through the canonical encoding of
    :func:`~repro.runtime.fingerprint.stable_digest`, so dataclasses
    (crash schedules) and nested tuples (normalized scripts) digest
    structurally and machine-stably.
    """
    return stable_digest(
        "repro.checkpoint.config", tuple(sorted(facets.items()))
    )


# ---------------------------------------------------------------------------
# Atomic file IO with integrity sealing
# ---------------------------------------------------------------------------


def _canonical_body(body: Mapping[str, Any]) -> str:
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def write_checkpoint(path: str, body: Mapping[str, Any]) -> None:
    """Seal ``body`` and write it to ``path`` atomically.

    The schema version is stamped into the body, the integrity digest
    is computed over the canonical encoding, and the file is replaced
    in one ``os.replace`` — a crash mid-write leaves the previous
    checkpoint intact, never a torn one.
    """
    stamped = dict(body)
    stamped["schema"] = CHECKPOINT_SCHEMA
    encoded = _canonical_body(stamped)
    envelope = {"integrity": payload_digest(encoded), "checkpoint": stamped}
    tmp = f"{path}.tmp"
    with open(tmp, "w") as handle:
        json.dump(envelope, handle)
    os.replace(tmp, path)


def read_checkpoint(path: str) -> dict:
    """Load, verify, and return a checkpoint body.

    Raises :class:`CheckpointError` for every failure mode a resume
    must not paper over: missing file, unparseable JSON, a tampered or
    truncated body (integrity mismatch), or a schema written by an
    incompatible engine version.
    """
    try:
        with open(path) as handle:
            envelope = json.load(handle)
    except FileNotFoundError:
        raise CheckpointError(f"no checkpoint at {path!r}") from None
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(
            f"unreadable checkpoint at {path!r}: {exc}"
        ) from exc
    if (
        not isinstance(envelope, dict)
        or not isinstance(envelope.get("checkpoint"), dict)
        or not isinstance(envelope.get("integrity"), str)
    ):
        raise CheckpointError(
            f"malformed checkpoint envelope at {path!r}"
        )
    body = envelope["checkpoint"]
    if payload_digest(_canonical_body(body)) != envelope["integrity"]:
        raise CheckpointError(
            f"checkpoint at {path!r} failed its integrity check "
            f"(truncated or tampered)"
        )
    schema = body.get("schema")
    if schema != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"checkpoint at {path!r} has schema {schema!r}; this engine "
            f"reads schema {CHECKPOINT_SCHEMA} — re-run from scratch"
        )
    return body

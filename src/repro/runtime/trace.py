"""Trace recording: from driver events to :class:`~repro.core.Execution`.

Both drivers (the free simulator and the adversarial scheduler) append
steps through a :class:`TraceRecorder`, which provides one well-named
method per step kind and guards the step vocabulary in a single place.
"""

from __future__ import annotations

from typing import Hashable

from ..core.actions import (
    BroadcastInvoke,
    BroadcastReturn,
    CrashAction,
    DecideAction,
    DeliverAction,
    DeliverSetAction,
    LocalAction,
    PointToPointId,
    ProposeAction,
    ReceiveAction,
    SendAction,
)
from ..core.execution import Execution
from ..core.message import Message
from ..core.steps import Step

__all__ = ["TraceRecorder"]


class TraceRecorder:
    """Accumulates the steps of one execution."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.steps: list[Step] = []

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def last(self) -> Step | None:
        return self.steps[-1] if self.steps else None

    def mark(self) -> int:
        """A position marker usable to slice the trace later."""
        return len(self.steps)

    def since(self, mark: int) -> list[Step]:
        """The steps recorded after ``mark`` (a :meth:`mark` return value)."""
        return self.steps[mark:]

    def fork(self) -> "TraceRecorder":
        """An independent recorder continuing from the current trace.

        Recorded :class:`~repro.core.steps.Step` objects are immutable and
        shared between the two recorders.
        """
        clone = TraceRecorder(self.n)
        clone.steps = list(self.steps)
        return clone

    def execution(self) -> Execution:
        """The execution recorded so far (a snapshot)."""
        return Execution(tuple(self.steps), self.n)

    # -- one method per step kind -----------------------------------------

    def send(
        self, process: int, p2p: PointToPointId, payload: Hashable
    ) -> Step:
        return self._append(process, SendAction(p2p, payload))

    def receive(
        self, process: int, p2p: PointToPointId, payload: Hashable
    ) -> Step:
        return self._append(process, ReceiveAction(p2p, payload))

    def broadcast_invoke(self, process: int, message: Message) -> Step:
        return self._append(process, BroadcastInvoke(message))

    def broadcast_return(self, process: int, message: Message) -> Step:
        return self._append(process, BroadcastReturn(message))

    def deliver(self, process: int, message: Message) -> Step:
        return self._append(process, DeliverAction(message))

    def deliver_set(
        self, process: int, messages: tuple[Message, ...]
    ) -> Step:
        return self._append(process, DeliverSetAction(messages))

    def propose(self, process: int, ksa: str, value: Hashable) -> Step:
        return self._append(process, ProposeAction(ksa, value))

    def decide(self, process: int, ksa: str, value: Hashable) -> Step:
        return self._append(process, DecideAction(ksa, value))

    def crash(self, process: int) -> Step:
        return self._append(process, CrashAction())

    def local(self, process: int, label: str = "") -> Step:
        return self._append(process, LocalAction(label))

    def _append(self, process: int, action) -> Step:
        step = Step(process, action)
        self.steps.append(step)
        return step

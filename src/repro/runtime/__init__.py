"""The CAMP_n[H] substrate: step machines, network, oracles, simulator.

This subpackage is the "machine" underneath both execution drivers:

* :mod:`repro.runtime.effects` / :mod:`repro.runtime.process` — algorithms
  as deterministic step machines (the form Algorithm 1 requires);
* :mod:`repro.runtime.network` — the reliable asynchronous network;
* :mod:`repro.runtime.ksa_objects` — axiomatic k-SA oracle objects with
  pluggable decision policies;
* :mod:`repro.runtime.crash` — deterministic failure injection;
* :mod:`repro.runtime.trace` — step recording into core executions;
* :mod:`repro.runtime.simulator` — the seeded free scheduler.
"""

from .checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointError,
    read_checkpoint,
    write_checkpoint,
)
from .crash import CrashSchedule
from .effects import Deliver, DeliverSet, Effect, LocalNote, Propose, Send, Wait
from .explorer import (
    ExplorationResult,
    ProgressSnapshot,
    PropertyTracker,
    Violation,
    channels_property,
    combine_properties,
    explore_schedules,
    spec_property,
)
from .fingerprint import (
    PidCanonicalizer,
    canonical_update,
    orbit_digest,
    stable_digest,
)
from .independence import (
    Footprint,
    choice_key,
    independent,
    observed_footprint,
)
from .ksa_objects import (
    DecisionPolicy,
    FirstProposalsPolicy,
    KsaObject,
    KsaRegistry,
    OwnValuePolicy,
    ScriptedPolicy,
)
from .network import InFlight, Network
from .policies import (
    ChannelFifoPolicy,
    LockstepPolicy,
    SchedulingPolicy,
    TargetedDelayPolicy,
    UniformPolicy,
)
from .process import (
    Blocked,
    BroadcastProcess,
    DeliverSetStep,
    DeliverStep,
    Idle,
    LocalStep,
    ProcessRuntime,
    ProposeStep,
    ProtocolError,
    ReturnStep,
    RuntimeOutcome,
    SendStep,
)
from .simulator import Gated, SimulationResult, SimulationRun, Simulator
from .trace import TraceRecorder

__all__ = [
    "Blocked",
    "BroadcastProcess",
    "CHECKPOINT_SCHEMA",
    "ChannelFifoPolicy",
    "CheckpointError",
    "CrashSchedule",
    "DecisionPolicy",
    "Deliver",
    "DeliverSet",
    "DeliverSetStep",
    "DeliverStep",
    "Effect",
    "ExplorationResult",
    "FirstProposalsPolicy",
    "Footprint",
    "Gated",
    "Idle",
    "InFlight",
    "KsaObject",
    "KsaRegistry",
    "LocalNote",
    "LockstepPolicy",
    "LocalStep",
    "Network",
    "OwnValuePolicy",
    "PidCanonicalizer",
    "ProcessRuntime",
    "ProgressSnapshot",
    "PropertyTracker",
    "Propose",
    "ProposeStep",
    "ProtocolError",
    "ReturnStep",
    "RuntimeOutcome",
    "ScriptedPolicy",
    "SchedulingPolicy",
    "Send",
    "SendStep",
    "SimulationResult",
    "SimulationRun",
    "Simulator",
    "TargetedDelayPolicy",
    "TraceRecorder",
    "UniformPolicy",
    "Violation",
    "Wait",
    "canonical_update",
    "orbit_digest",
    "channels_property",
    "choice_key",
    "combine_properties",
    "explore_schedules",
    "independent",
    "observed_footprint",
    "read_checkpoint",
    "spec_property",
    "stable_digest",
    "write_checkpoint",
]

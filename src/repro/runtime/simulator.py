"""The free scheduler: seeded, fair, replayable runs of CAMP_n[H].

Where Algorithm 1 drives processes with a hand-crafted hostile schedule,
the :class:`Simulator` explores *typical* asynchronous schedules: at each
point it chooses uniformly at random (from an explicit seed) among all
enabled events —

* an enabled local step of some live process,
* the reception of some in-flight message by a live process,
* the start of the next scripted broadcast at an idle process,

and injects crashes according to a :class:`~repro.runtime.crash.CrashSchedule`.
The run ends when no event is enabled (quiescence) or a step budget is
exhausted.  Every sent message addressed to a live process is eventually
received because receptions stay enabled until taken — so finite quiescent
runs satisfy SR-Termination by construction, and the checkers in
:mod:`repro.core.model` re-verify it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping, Sequence

from ..core.execution import Execution
from ..core.message import Message, MessageFactory
from .crash import CrashSchedule
from .ksa_objects import DecisionPolicy, FirstProposalsPolicy, KsaRegistry
from .network import Network
from .policies import SchedulingPolicy, UniformPolicy
from .process import (
    Blocked,
    BroadcastProcess,
    DeliverSetStep,
    DeliverStep,
    Idle,
    LocalStep,
    ProcessRuntime,
    ProposeStep,
    ReturnStep,
    SendStep,
)
from .trace import TraceRecorder

__all__ = ["Gated", "SimulationResult", "Simulator"]

AlgorithmFactory = Callable[[int, int], BroadcastProcess]


@dataclass(frozen=True)
class Gated:
    """A script entry that waits for a delivery before broadcasting.

    ``Gated(content, after)`` becomes eligible only once the process has
    locally delivered a message whose content equals ``after`` — the way
    scripts express *causal* dependencies across processes (a reply
    gated on its parent, a command gated on an acknowledgement).
    """

    content: Hashable
    after: Hashable


@dataclass
class SimulationResult:
    """Everything observable after one simulated run."""

    execution: Execution
    runtimes: Mapping[int, ProcessRuntime]
    quiescent: bool
    steps_taken: int
    blocked: Mapping[int, str] = field(default_factory=dict)
    #: Number of events that were enabled when a guided run exhausted its
    #: guide (0 for free runs, which always run to quiescence/budget).
    pending_choices: int = 0

    def deliveries(self, process: int) -> list[Message]:
        """The messages ``process`` B-delivered, in order."""
        return list(self.runtimes[process].delivered)

    def delivered_contents(self, process: int) -> list[Hashable]:
        """The contents ``process`` B-delivered, in order."""
        return [m.content for m in self.runtimes[process].delivered]


class Simulator:
    """Runs a broadcast algorithm under seeded random asynchrony.

    Parameters
    ----------
    n:
        Number of processes.
    algorithm_factory:
        ``factory(pid, n)`` building each process's algorithm instance.
    k:
        The ``k`` of the k-SA oracle objects available to the algorithm.
    ksa_policy:
        Decision policy of the oracles (default: first-proposals-win).
    seed:
        Seed of the scheduling randomness; equal seeds replay identically.
    sync_broadcasts:
        When true, a process starts its next scripted broadcast only after
        the previous one returned *and* was delivered locally
        (``sync-broadcast`` of Section 3.1); otherwise after return alone.
    scheduling_policy:
        How the next event is chosen among the enabled ones (default:
        seeded uniform); see :mod:`repro.runtime.policies`.
    atomic_local:
        When true, local computation runs eagerly to quiescence (in pid
        order) after every scheduled event, so the only scheduling
        decisions are receptions and broadcast starts.  Local steps of a
        deterministic algorithm commute with each other, so this is a
        sound partial-order reduction for terminal-state properties —
        it is what makes exhaustive exploration
        (:mod:`repro.runtime.explorer`) tractable.
    """

    def __init__(
        self,
        n: int,
        algorithm_factory: AlgorithmFactory,
        *,
        k: int = 1,
        ksa_policy: DecisionPolicy | None = None,
        seed: int = 0,
        sync_broadcasts: bool = False,
        scheduling_policy: SchedulingPolicy | None = None,
        atomic_local: bool = False,
    ) -> None:
        self.n = n
        self.algorithm_factory = algorithm_factory
        self.k = k
        self.ksa_policy = ksa_policy or FirstProposalsPolicy()
        self.seed = seed
        self.sync_broadcasts = sync_broadcasts
        self.scheduling_policy = scheduling_policy or UniformPolicy()
        self.atomic_local = atomic_local

    def run(
        self,
        scripts: Mapping[int, Sequence[Hashable]],
        *,
        crash_schedule: CrashSchedule | None = None,
        max_steps: int = 100_000,
        guide: Sequence[int] | None = None,
    ) -> SimulationResult:
        """Execute the scripted broadcasts to quiescence.

        ``scripts[p]`` lists the contents process ``p`` broadcasts, in
        order.  Returns the recorded execution plus per-process state.

        ``guide`` switches the run to *guided* mode: the i-th scheduling
        decision takes the ``guide[i]``-th enabled event instead of
        consulting the policy, and the run stops when the guide is
        exhausted, reporting how many events were enabled at that point
        in :attr:`SimulationResult.pending_choices`.  Guided runs are the
        replay primitive of the exhaustive schedule explorer
        (:mod:`repro.runtime.explorer`).
        """
        rng = random.Random(self.seed)
        crashes = crash_schedule or CrashSchedule.none()
        factory = MessageFactory()
        runtimes = {
            p: ProcessRuntime(
                self.algorithm_factory(p, self.n), message_factory=factory
            )
            for p in range(self.n)
        }
        registry = KsaRegistry(self.k, self.ksa_policy)
        network = Network()
        trace = TraceRecorder(self.n)
        remaining = {p: list(scripts.get(p, ())) for p in range(self.n)}
        last_sync_message: dict[int, Message | None] = {
            p: None for p in range(self.n)
        }
        alive = set(range(self.n))

        for p in sorted(crashes.initially):
            trace.crash(p)
            alive.discard(p)

        steps = 0
        pending_choices = 0
        while steps < max_steps:
            for p in sorted(alive):
                if crashes.due(p, steps):
                    trace.crash(p)
                    alive.discard(p)

            if self.atomic_local:
                self._drain_local(alive, runtimes, trace, registry, network)

            choices = self._enabled_choices(
                alive, runtimes, network, remaining, last_sync_message
            )
            if not choices:
                break
            if guide is not None:
                if steps >= len(guide):
                    pending_choices = len(choices)
                    break
                kind, payload = choices[guide[steps] % len(choices)]
            else:
                kind, payload = self.scheduling_policy.select(
                    choices, rng, steps
                )
            steps += 1
            if kind == "local":
                self._take_local_step(
                    payload, runtimes[payload], trace, registry, network
                )
            elif kind == "recv":
                item = payload
                network.receive(item.p2p)
                trace.receive(item.receiver, item.p2p, item.payload)
                runtimes[item.receiver].inject_receive(
                    item.p2p, item.payload
                )
            else:  # "bcast"
                p = payload
                entry = remaining[p].pop(0)
                content = (
                    entry.content if isinstance(entry, Gated) else entry
                )
                message = runtimes[p].start_broadcast(content)
                last_sync_message[p] = message
                trace.broadcast_invoke(p, message)

        blocked = {
            p: outcome.reason
            for p, outcome in (
                (p, self._peek_outcome(runtimes[p])) for p in sorted(alive)
            )
            if isinstance(outcome, Blocked)
        }
        quiescent = not self._enabled_choices(
            alive, runtimes, network, remaining, last_sync_message
        )
        return SimulationResult(
            execution=trace.execution(),
            runtimes=runtimes,
            quiescent=quiescent,
            steps_taken=steps,
            blocked=blocked,
            pending_choices=pending_choices,
        )

    # ------------------------------------------------------------------

    def _drain_local(
        self, alive, runtimes, trace, registry, network
    ) -> None:
        """Run every enabled local step, in pid order, to quiescence."""
        progress = True
        while progress:
            progress = False
            for p in sorted(alive):
                runtime = runtimes[p]
                while runtime.has_enabled_step():
                    self._take_local_step(
                        p, runtime, trace, registry, network
                    )
                    progress = True

    def _enabled_choices(
        self, alive, runtimes, network, remaining, last_sync_message
    ) -> list[tuple[str, object]]:
        choices: list[tuple[str, object]] = []
        for p in sorted(alive):
            runtime = runtimes[p]
            if self.atomic_local:
                pass  # local work was drained eagerly
            elif runtime.has_enabled_step():
                choices.append(("local", p))
            if remaining[p] and self._may_start_broadcast(
                runtime, last_sync_message[p], remaining[p][0]
            ):
                choices.append(("bcast", p))
        for item in network.deliverable(alive):
            choices.append(("recv", item))
        return choices

    def _may_start_broadcast(
        self,
        runtime: ProcessRuntime,
        last_message: Message | None,
        next_entry: Hashable = None,
    ) -> bool:
        if runtime.busy:
            return False
        if self.sync_broadcasts and last_message is not None:
            if not runtime.has_delivered(last_message.uid):
                return False
        if isinstance(next_entry, Gated):
            return any(
                m.content == next_entry.after for m in runtime.delivered
            )
        return True

    @staticmethod
    def _peek_outcome(runtime: ProcessRuntime):
        if runtime.has_enabled_step():
            return None
        if runtime.busy:
            return Blocked(runtime.waiting_reason or "operation waiting")
        return Idle()

    def _take_local_step(
        self, p: int, runtime: ProcessRuntime, trace, registry, network
    ) -> None:
        outcome = runtime.next_step()
        if isinstance(outcome, SendStep):
            trace.send(p, outcome.p2p, outcome.payload)
            network.send(outcome.p2p, outcome.payload)
        elif isinstance(outcome, ProposeStep):
            trace.propose(p, outcome.ksa, outcome.value)
            decided = registry.propose(outcome.ksa, p, outcome.value)
            trace.decide(p, outcome.ksa, decided)
            runtime.resume_decide(decided)
        elif isinstance(outcome, DeliverStep):
            trace.deliver(p, outcome.message)
        elif isinstance(outcome, DeliverSetStep):
            trace.deliver_set(p, outcome.messages)
        elif isinstance(outcome, ReturnStep):
            trace.broadcast_return(p, outcome.message)
        elif isinstance(outcome, LocalStep):
            trace.local(p, outcome.label)
        else:
            # Blocked / Idle: the apparent work was an 'upon receive'
            # handler that produced no step (e.g. a duplicate message).
            # next_step() has drained it; nothing to record.
            pass

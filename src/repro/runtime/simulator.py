"""The free scheduler: seeded, fair, replayable runs of CAMP_n[H].

Where Algorithm 1 drives processes with a hand-crafted hostile schedule,
the :class:`Simulator` explores *typical* asynchronous schedules: at each
point it chooses uniformly at random (from an explicit seed) among all
enabled events —

* an enabled local step of some live process,
* the reception of some in-flight message by a live process,
* the start of the next scripted broadcast at an idle process,

and injects crashes according to a :class:`~repro.runtime.crash.CrashSchedule`.
The run ends when no event is enabled (quiescence) or a step budget is
exhausted.  Every sent message addressed to a live process is eventually
received because receptions stay enabled until taken — so finite quiescent
runs satisfy SR-Termination by construction, and the checkers in
:mod:`repro.core.model` re-verify it.

Runs come in two shapes:

* :meth:`Simulator.run` — the classic one-shot entry point: drive the
  system to quiescence (or budget/guide exhaustion) and return a
  :class:`SimulationResult`.
* :meth:`Simulator.begin` — a *resumable run handle*
  (:class:`SimulationRun`): the caller inspects the enabled events
  (:meth:`SimulationRun.choices`), commits one (:meth:`SimulationRun.advance`)
  and may snapshot the whole system state at any decision point
  (:meth:`SimulationRun.fork`).  This is the primitive underneath the
  incremental schedule explorer (:mod:`repro.runtime.explorer`), which
  extends a DFS prefix by *one* event instead of re-running it from
  scratch.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping, Sequence

from ..core.execution import Execution
from ..core.message import Message, MessageFactory
from .crash import CrashSchedule
from .fingerprint import PidCanonicalizer, orbit_digest, stable_digest
from .independence import Footprint, FootprintDraft
from .ksa_objects import DecisionPolicy, FirstProposalsPolicy, KsaRegistry
from .network import Network
from .policies import SchedulingPolicy, UniformPolicy
from .process import (
    Blocked,
    BroadcastProcess,
    DeliverSetStep,
    DeliverStep,
    Idle,
    LocalStep,
    ProcessRuntime,
    ProposeStep,
    ReturnStep,
    SendStep,
)
from .trace import TraceRecorder

__all__ = [
    "FootprintViolationError",
    "Gated",
    "SimulationResult",
    "SimulationRun",
    "Simulator",
]


class FootprintViolationError(AssertionError):
    """A dynamic footprint escaped its static effect summary.

    Raised only under ``validate_footprints=True``: the simulator
    recorded an event touching state, emitting messages or consulting an
    oracle that the closed summary inferred by
    :mod:`repro.statics.analyzer` proves the handler cannot — meaning
    either the analyzer is unsound or the recording is wrong.  Both are
    bugs worth crashing a differential test over.
    """

AlgorithmFactory = Callable[[int, int], BroadcastProcess]

#: One enabled scheduling choice: ``("local", pid)``, ``("recv", InFlight)``
#: or ``("bcast", pid)``.
Choice = tuple[str, object]


@dataclass(frozen=True)
class Gated:
    """A script entry that waits for a delivery before broadcasting.

    ``Gated(content, after)`` becomes eligible only once the process has
    locally delivered a message whose content equals ``after`` — the way
    scripts express *causal* dependencies across processes (a reply
    gated on its parent, a command gated on an acknowledgement).
    """

    content: Hashable
    after: Hashable


@dataclass
class SimulationResult:
    """Everything observable after one simulated run."""

    execution: Execution
    runtimes: Mapping[int, ProcessRuntime]
    quiescent: bool
    steps_taken: int
    blocked: Mapping[int, str] = field(default_factory=dict)
    #: Number of events that were enabled when a guided run exhausted its
    #: guide (0 for free runs, which always run to quiescence/budget).
    pending_choices: int = 0

    def deliveries(self, process: int) -> list[Message]:
        """The messages ``process`` B-delivered, in order."""
        return list(self.runtimes[process].delivered)

    def delivered_contents(self, process: int) -> list[Hashable]:
        """The contents ``process`` B-delivered, in order."""
        return [m.content for m in self.runtimes[process].delivered]


class SimulationRun:
    """A resumable, forkable handle on one in-progress simulation.

    The handle owns the full mutable state of a run — process runtimes,
    in-flight network, oracle registry, trace, script remainders, crash
    bookkeeping — and exposes the scheduling loop one decision at a time:

    >>> run = simulator.begin(scripts)           # doctest: +SKIP
    ... while run.choices():
    ...     run.advance(0)                       # take the first event
    ... result = run.result()

    :meth:`fork` produces an independent copy of the whole state in
    O(state) time without re-executing any event, which turns depth-first
    schedule exploration from O(nodes × depth) re-simulated events into
    O(edges): each tree edge is executed exactly once, on exactly one
    handle.

    Handles are created by :meth:`Simulator.begin`; the parent
    :class:`Simulator` object only carries immutable configuration and is
    shared between forks.
    """

    def __init__(
        self,
        simulator: "Simulator",
        scripts: Mapping[int, Sequence[Hashable]],
        *,
        crash_schedule: CrashSchedule | None = None,
    ) -> None:
        self.simulator = simulator
        self.crashes = crash_schedule or CrashSchedule.none()
        self.factory = MessageFactory()
        self.runtimes: dict[int, ProcessRuntime] = {
            p: ProcessRuntime(
                simulator.algorithm_factory(p, simulator.n),
                message_factory=self.factory,
            )
            for p in range(simulator.n)
        }
        self.registry = KsaRegistry(simulator.k, simulator.ksa_policy)
        self.network = Network()
        self.trace = TraceRecorder(simulator.n)
        self.remaining: dict[int, list[Hashable]] = {
            p: list(scripts.get(p, ())) for p in range(simulator.n)
        }
        self.last_sync_message: dict[int, Message | None] = {
            p: None for p in range(simulator.n)
        }
        self.alive: set[int] = set(range(simulator.n))
        #: Scheduling decisions committed so far (the depth of this run).
        self.steps = 0
        #: Local steps re-executed to materialize this handle (0 unless
        #: the handle was forked from a runtime with a live generator).
        self.replayed_steps = 0
        #: Footprint of the last committed event (what it actually
        #: touched), finalized by the next :meth:`choices` prelude; the
        #: explorer's sleep-set reduction reads it.  ``None`` until the
        #: first event's footprint is complete.
        self.last_footprint: Footprint | None = None
        self._pending_footprint: FootprintDraft | None = None
        self._choices: list[Choice] | None = None
        for p in sorted(self.crashes.initially):
            self.trace.crash(p)
            self.alive.discard(p)

    # -- the scheduling interface ----------------------------------------

    def choices(self) -> list[Choice]:
        """The events enabled at this decision point, in canonical order.

        Computing the choice set performs the per-decision prelude of the
        scheduling loop: due crashes are injected and, under
        ``atomic_local``, enabled local computation is drained.  The
        result is cached until :meth:`advance` commits an event, so
        repeated calls (and calls after :meth:`fork`) are idempotent.
        """
        if self._choices is None:
            for p in sorted(self.alive):
                if self.crashes.due(p, self.steps):
                    self.trace.crash(p)
                    self.alive.discard(p)
                    if self._pending_footprint is not None:
                        # The injection lands between the last event and
                        # this decision point — at a global count an
                        # adjacent swap preserves — so the crash-aware
                        # relation only needs the pair to have avoided
                        # this victim, not a blanket refusal.
                        self._pending_footprint.crashed = True
                        self._pending_footprint.crashed_pids = (
                            self._pending_footprint.crashed_pids | {p}
                        )
            if self.simulator.atomic_local:
                self._drain_local()
            self._choices = self._enabled_choices()
            if self._pending_footprint is not None:
                # A crash still scheduled at a *global* step count is
                # recorded on the footprint (victims and deadlines).
                # The injection index is preserved by adjacent swaps,
                # so the only pending victims a swap can observe are
                # the *imminent* ones — due at the very next decision
                # count, where the injection would land after the
                # second event of a swapped pair but before that
                # prelude's drain.  Later deadlines fire after both
                # events in either order and impose no constraint.
                self._pending_footprint.pending = frozenset(
                    p for p in self.crashes.at_step if p in self.alive
                )
                self._pending_footprint.pending_deadlines = tuple(
                    sorted(
                        (p, step)
                        for p, step in self.crashes.at_step.items()
                        if p in self.alive
                    )
                )
                self._pending_footprint.imminent = frozenset(
                    p
                    for p, step in self.crashes.at_step.items()
                    if p in self.alive and step == self.steps + 1
                )
                if self.simulator.validate_footprints:
                    self._validate_footprint(self._pending_footprint)
                self.last_footprint = self._pending_footprint.freeze()
                self._pending_footprint = None
        return self._choices

    def _validate_footprint(self, draft: FootprintDraft) -> None:
        """Assert the recorded footprint is contained in the static one.

        The containment direction matters: the static summary is an
        *over*-approximation, so every dynamically observed effect must
        appear in it.  Skipped silently when no closed summary exists
        for the algorithm (open summaries prove nothing).
        """
        summary = self.simulator.footprint_summary()
        if summary is None or not summary.closed:
            return
        from ..statics.independence import attributed_handlers

        handlers = attributed_handlers(summary, draft.kind)
        if not handlers:
            return
        stray = set(draft.pids) - {draft.origin}
        if stray:
            raise FootprintViolationError(
                f"{summary.qualname}: {draft.kind} event at process "
                f"{draft.origin} touched foreign processes "
                f"{sorted(stray)}, but its closed effect summary proves "
                f"per-process state isolation"
            )
        if draft.sent and not any(h.sends for h in handlers):
            raise FootprintViolationError(
                f"{summary.qualname}: {draft.kind} event at process "
                f"{draft.origin} emitted {len(draft.sent)} message(s), "
                f"but no attributed handler has a send effect"
            )
        if draft.oracle and not any(h.proposes for h in handlers):
            raise FootprintViolationError(
                f"{summary.qualname}: {draft.kind} event at process "
                f"{draft.origin} consulted a k-SA oracle, but no "
                f"attributed handler has a propose effect"
            )

    def advance(self, index: int) -> None:
        """Commit the ``index``-th enabled event and apply it."""
        choices = self.choices()
        if not 0 <= index < len(choices):
            raise ValueError(
                f"choice index {index} out of range: only "
                f"{len(choices)} events are enabled"
            )
        kind, payload = choices[index]
        self.steps += 1
        self._choices = None
        touched = (
            payload.receiver  # type: ignore[attr-defined]
            if kind == "recv"
            else payload
        )
        assert isinstance(touched, int)
        self._pending_footprint = FootprintDraft(kind, touched)
        if kind == "local":
            assert isinstance(payload, int)
            self._take_local_step(payload, self.runtimes[payload])
        elif kind == "recv":
            item = payload
            self.network.receive(item.p2p)  # type: ignore[attr-defined]
            self.trace.receive(
                item.receiver, item.p2p, item.payload  # type: ignore[attr-defined]
            )
            self.runtimes[item.receiver].inject_receive(  # type: ignore[attr-defined]
                item.p2p, item.payload  # type: ignore[attr-defined]
            )
        else:  # "bcast"
            assert isinstance(payload, int)
            p = payload
            entry = self.remaining[p].pop(0)
            content = entry.content if isinstance(entry, Gated) else entry
            message = self.runtimes[p].start_broadcast(content)
            self.last_sync_message[p] = message
            self.trace.broadcast_invoke(p, message)

    def fork(self) -> "SimulationRun":
        """An independent handle in the same state, ready to diverge.

        No scheduled event is re-executed; per-process runtimes are
        snapshotted structurally when possible and rebuilt by journal
        replay otherwise (see :meth:`ProcessRuntime.fork`), with the
        re-executed local steps accounted in
        :attr:`SimulationRun.replayed_steps` of the clone.
        """
        clone = object.__new__(SimulationRun)
        clone.simulator = self.simulator
        clone.crashes = self.crashes
        clone.factory = self.factory.fork()
        clone.registry = self.registry.fork()
        clone.network = self.network.fork()
        clone.trace = self.trace.fork()
        clone.remaining = {
            p: list(entries) for p, entries in self.remaining.items()
        }
        clone.last_sync_message = dict(self.last_sync_message)
        clone.alive = set(self.alive)
        clone.steps = self.steps
        clone.replayed_steps = 0
        clone.last_footprint = self.last_footprint
        clone._pending_footprint = (
            None
            if self._pending_footprint is None
            else self._pending_footprint.copy()
        )
        # The cached enumeration (if any) is valid on the clone: the
        # prelude already ran on the parent, the copied state is
        # post-prelude, and choice payloads are value-identified
        # (``Network.receive`` looks up by ``PointToPointId``), so
        # forked probes skip re-enumerating the parent state.
        clone._choices = (
            None if self._choices is None else list(self._choices)
        )
        clone.runtimes = {}
        for p, runtime in self.runtimes.items():
            forked, replayed = runtime.fork(
                message_factory=clone.factory,
                algorithm_factory=self.simulator.algorithm_factory,
            )
            clone.runtimes[p] = forked
            clone.replayed_steps += replayed
        return clone

    def result(self, *, pending_choices: int = 0) -> SimulationResult:
        """A :class:`SimulationResult` snapshot at the next decision point.

        Reporting goes through the same per-decision prelude that
        :meth:`choices` performs (due-crash injection and, under
        ``atomic_local``, the local-computation drain): without it, a
        result taken immediately after :meth:`advance` could claim
        quiescence while drained local steps would enable further events,
        misreport ``blocked``, and miss a crash due at the current step.
        When the prelude has not run yet, it is applied to a *fork* of
        the handle, so the committed state is never mutated — calling
        ``result()`` leaves subsequent :meth:`choices`/:meth:`advance`
        behaviour unchanged.
        """
        run = self
        if run._choices is None:
            run = self.fork()  # probe: prelude without committing it
        enabled = run.choices()
        blocked = {
            p: outcome.reason
            for p, outcome in (
                (p, _peek_outcome(run.runtimes[p]))
                for p in sorted(run.alive)
            )
            if isinstance(outcome, Blocked)
        }
        return SimulationResult(
            execution=run.trace.execution(),
            runtimes=run.runtimes,
            quiescent=not enabled,
            steps_taken=self.steps,
            blocked=blocked,
            pending_choices=pending_choices,
        )

    def fingerprint(self) -> str:
        """A canonical digest of the run's forward-relevant state.

        Two runs with equal fingerprints enable the same events in the
        same order at every future decision point and produce the same
        per-process observations at every descendant terminal — the
        invariant the schedule explorer's dedup cache relies on to prune
        converged branches (see :mod:`repro.runtime.fingerprint`).

        Everything the scheduling loop reads is covered: per-process
        input journals (local state is a function of them), the ordered
        in-flight pool, the oracle registry, identity-minting counters,
        remaining scripts, the alive set, sync-broadcast gates, and the
        decision count (crash schedules are indexed by it).  The recorded
        *trace* is deliberately excluded: converging decision sequences
        differ exactly in how they interleaved the same per-process
        histories.

        The digest is taken over the committed state, before the next
        decision's prelude; callers comparing states at a decision point
        should invoke :meth:`choices` first so due crashes and the
        ``atomic_local`` drain are already applied.
        """
        return stable_digest(
            "run",
            self.steps,
            sorted(self.alive),
            [
                self.runtimes[p].fingerprint()
                for p in range(self.simulator.n)
            ],
            self.network.fingerprint(),
            self.registry.fingerprint(),
            self.factory.counters(),
            {
                p: None if m is None else m.uid
                for p, m in self.last_sync_message.items()
            },
            self.remaining,
        )

    def canonical_state_digest(self, permutation: Sequence[int]) -> str:
        """The state digest after relabeling pids through ``permutation``.

        Encodes the same forward-relevant components as
        :meth:`fingerprint`, but with every structural process id mapped
        through ``permutation``, every message content replaced by a
        first-appearance token (an injective content renaming, Def. 3),
        and the in-flight pool sorted by mapped point-to-point identity
        instead of insertion order.  Minimizing this digest over a group
        of permutations yields a canonical representative per symmetry
        orbit — the cache key of ``symmetry="rename"`` exploration (see
        :class:`~repro.runtime.fingerprint.PidCanonicalizer` for the
        soundness conditions, which the explorer gates on the
        algorithm's ``symmetric_processes()`` declaration).

        Dropping the pool's insertion order is sound here — but not for
        the plain fingerprint — because symmetry hits re-emit the cached
        *representative's* guides (with the witnessing permutation
        recorded on the violation) rather than rebasing suffixes onto
        the arrival's own enumeration order.
        """
        canon = PidCanonicalizer(permutation)
        n = self.simulator.n
        # Old pids visited in mapped order, so token numbering (first
        # appearance) is a function of the *relabeled* state alone.
        order = sorted(range(n), key=lambda p: permutation[p])
        journals = [
            canon.value(self.runtimes[p].journal_entries()) for p in order
        ]
        pool = sorted(
            (
                (
                    permutation[item.p2p.sender],
                    permutation[item.p2p.receiver],
                    item.p2p.seq,
                ),
                item,
            )
            for item in self.network.deliverable(None)
        )
        pool_encoding = [(key, canon.value(item.payload)) for key, item in pool]
        registry_encoding = [
            (
                name,
                {
                    canon.pid(p): canon.value(obj.proposals[p])
                    for p in sorted(
                        obj.proposals, key=lambda p: permutation[p]
                    )
                },
                {
                    canon.pid(p): canon.value(obj.decisions[p])
                    for p in sorted(
                        obj.decisions, key=lambda p: permutation[p]
                    )
                },
            )
            for name, obj in sorted(self.registry.objects.items())
        ]
        counters = {
            permutation[p]: c for p, c in self.factory.counters().items()
        }
        last_sync = [
            None
            if self.last_sync_message[p] is None
            else canon.value(self.last_sync_message[p].uid)
            for p in order
        ]
        remaining = [canon.value(tuple(self.remaining[p])) for p in order]
        canon.seal()  # one state per canonicalizer: token table is spent
        return stable_digest(
            "canon-run",
            self.steps,
            sorted(permutation[p] for p in self.alive),
            journals,
            pool_encoding,
            registry_encoding,
            counters,
            last_sync,
            remaining,
        )

    def orbit_key(
        self, groups: Sequence[Sequence[int]]
    ) -> tuple[str, tuple[int, ...], int]:
        """The orbit-canonical digest of this state, by canonical labelling.

        Rather than minimizing :meth:`canonical_state_digest` over every
        permutation admissible for ``groups`` (|perms| encodings per
        state), this refines each group by an *equivariant* per-pid
        invariant profile and only encodes the residual automorphism
        candidates — usually exactly one (see
        :func:`~repro.runtime.fingerprint.orbit_digest`).

        The profile reads, per pid: liveness, the journal's entry-tag
        sequence (the *shape* of the input history — broadcasts,
        receptions, decisions, syncs — not the contents, which the
        canonical encoding renames injectively), the shape of the
        remaining script (gated/plain per entry), the sync-gate flag,
        and the pid's in/out-degree in the in-flight pool.  None of
        these mention a raw pid label or a raw content, so relabeling
        the state permutes the profiles with it — the equivariance that
        makes the refined key constant on each orbit.

        Returns ``(digest, permutation, encodings)`` — the orbit key,
        the witnessing permutation realizing it, and how many candidate
        encodings were paid for it.
        """
        in_degree: dict[int, int] = {}
        out_degree: dict[int, int] = {}
        for item in self.network.deliverable(None):
            out_degree[item.p2p.sender] = out_degree.get(item.p2p.sender, 0) + 1
            in_degree[item.p2p.receiver] = (
                in_degree.get(item.p2p.receiver, 0) + 1
            )

        def profile(p: int) -> tuple:
            return (
                p in self.alive,
                tuple(
                    entry[0] for entry in self.runtimes[p].journal_entries()
                ),
                tuple(
                    "gated" if isinstance(entry, Gated) else "plain"
                    for entry in self.remaining[p]
                ),
                self.last_sync_message[p] is not None,
                in_degree.get(p, 0),
                out_degree.get(p, 0),
            )

        return orbit_digest(
            groups, self.simulator.n, profile, self.canonical_state_digest
        )

    # -- internals --------------------------------------------------------

    def _drain_local(self) -> None:
        """Run every enabled local step, in pid order, to quiescence."""
        progress = True
        while progress:
            progress = False
            for p in sorted(self.alive):
                runtime = self.runtimes[p]
                while runtime.has_enabled_step():
                    self._take_local_step(p, runtime)
                    progress = True

    def _enabled_choices(self) -> list[Choice]:
        choices: list[Choice] = []
        for p in sorted(self.alive):
            runtime = self.runtimes[p]
            if self.simulator.atomic_local:
                pass  # local work was drained eagerly
            elif runtime.has_enabled_step():
                choices.append(("local", p))
            if self.remaining[p] and self._may_start_broadcast(
                runtime, self.last_sync_message[p], self.remaining[p][0]
            ):
                choices.append(("bcast", p))
        for item in self.network.deliverable(self.alive):
            choices.append(("recv", item))
        return choices

    def _may_start_broadcast(
        self,
        runtime: ProcessRuntime,
        last_message: Message | None,
        next_entry: Hashable = None,
    ) -> bool:
        if runtime.busy:
            return False
        if self.simulator.sync_broadcasts and last_message is not None:
            if not runtime.has_delivered(last_message.uid):
                return False
        if isinstance(next_entry, Gated):
            return any(
                m.content == next_entry.after for m in runtime.delivered
            )
        return True

    def _take_local_step(self, p: int, runtime: ProcessRuntime) -> None:
        outcome = runtime.next_step()
        draft = self._pending_footprint
        if draft is not None:
            draft.pids.add(p)
        if isinstance(outcome, SendStep):
            if draft is not None:
                draft.sent.append(outcome.p2p)
            self.trace.send(p, outcome.p2p, outcome.payload)
            self.network.send(outcome.p2p, outcome.payload)
        elif isinstance(outcome, ProposeStep):
            if draft is not None:
                draft.oracle = True
            self.trace.propose(p, outcome.ksa, outcome.value)
            decided = self.registry.propose(outcome.ksa, p, outcome.value)
            self.trace.decide(p, outcome.ksa, decided)
            runtime.resume_decide(decided)
        elif isinstance(outcome, DeliverStep):
            self.trace.deliver(p, outcome.message)
        elif isinstance(outcome, DeliverSetStep):
            self.trace.deliver_set(p, outcome.messages)
        elif isinstance(outcome, ReturnStep):
            self.trace.broadcast_return(p, outcome.message)
        elif isinstance(outcome, LocalStep):
            self.trace.local(p, outcome.label)
        else:
            # Blocked / Idle: the apparent work was an 'upon receive'
            # handler that produced no step (e.g. a duplicate message).
            # next_step() has drained it; nothing to record.
            pass


def _peek_outcome(runtime: ProcessRuntime) -> Blocked | Idle | None:
    if runtime.has_enabled_step():
        return None
    if runtime.busy:
        return Blocked(runtime.waiting_reason or "operation waiting")
    return Idle()


class Simulator:
    """Runs a broadcast algorithm under seeded random asynchrony.

    Parameters
    ----------
    n:
        Number of processes.
    algorithm_factory:
        ``factory(pid, n)`` building each process's algorithm instance.
    k:
        The ``k`` of the k-SA oracle objects available to the algorithm.
    ksa_policy:
        Decision policy of the oracles (default: first-proposals-win).
    seed:
        Seed of the scheduling randomness; equal seeds replay identically.
    sync_broadcasts:
        When true, a process starts its next scripted broadcast only after
        the previous one returned *and* was delivered locally
        (``sync-broadcast`` of Section 3.1); otherwise after return alone.
    scheduling_policy:
        How the next event is chosen among the enabled ones (default:
        seeded uniform); see :mod:`repro.runtime.policies`.
    atomic_local:
        When true, local computation runs eagerly to quiescence (in pid
        order) after every scheduled event, so the only scheduling
        decisions are receptions and broadcast starts.  Local steps of a
        deterministic algorithm commute with each other, so this is a
        sound partial-order reduction for terminal-state properties —
        it is what makes exhaustive exploration
        (:mod:`repro.runtime.explorer`) tractable.
    validate_footprints:
        When true, every finalized event footprint is checked for
        containment in the algorithm's static effect summary
        (:mod:`repro.statics`); escape raises
        :class:`FootprintViolationError`.  A sanitizer for differential
        tests — off by default because it adds a check per decision.
    """

    def __init__(
        self,
        n: int,
        algorithm_factory: AlgorithmFactory,
        *,
        k: int = 1,
        ksa_policy: DecisionPolicy | None = None,
        seed: int = 0,
        sync_broadcasts: bool = False,
        scheduling_policy: SchedulingPolicy | None = None,
        atomic_local: bool = False,
        validate_footprints: bool = False,
    ) -> None:
        self.n = n
        self.algorithm_factory = algorithm_factory
        self.k = k
        self.ksa_policy = ksa_policy or FirstProposalsPolicy()
        self.seed = seed
        self.sync_broadcasts = sync_broadcasts
        self.scheduling_policy = scheduling_policy or UniformPolicy()
        self.atomic_local = atomic_local
        self.validate_footprints = validate_footprints
        self._footprint_summary: object | None = None
        self._footprint_summary_ready = False

    def footprint_summary(self):
        """The algorithm's static effect summary, inferred lazily.

        ``None`` when the factory cannot be probed or its source cannot
        be analyzed — the sanitizer then has nothing to check against
        and stays silent.  Cached on the simulator, so forked run
        handles (which share it) analyze the algorithm exactly once.
        """
        if not self._footprint_summary_ready:
            self._footprint_summary_ready = True
            from ..statics.analyzer import summarize_algorithm

            try:
                probe = self.algorithm_factory(0, self.n)
                self._footprint_summary = summarize_algorithm(type(probe))
            except (OSError, TypeError, SyntaxError):
                self._footprint_summary = None
        return self._footprint_summary

    def begin(
        self,
        scripts: Mapping[int, Sequence[Hashable]],
        *,
        crash_schedule: CrashSchedule | None = None,
    ) -> SimulationRun:
        """Open a resumable run handle on this system configuration.

        ``scripts[p]`` lists the contents process ``p`` broadcasts, in
        order.  The returned :class:`SimulationRun` has taken no
        scheduling decision yet (initial crashes, if any, are already
        injected).
        """
        return SimulationRun(self, scripts, crash_schedule=crash_schedule)

    def run(
        self,
        scripts: Mapping[int, Sequence[Hashable]],
        *,
        crash_schedule: CrashSchedule | None = None,
        max_steps: int = 100_000,
        guide: Sequence[int] | None = None,
    ) -> SimulationResult:
        """Execute the scripted broadcasts to quiescence.

        ``scripts[p]`` lists the contents process ``p`` broadcasts, in
        order.  Returns the recorded execution plus per-process state.

        ``guide`` switches the run to *guided* mode: the i-th scheduling
        decision takes the ``guide[i]``-th enabled event instead of
        consulting the policy, and the run stops when the guide is
        exhausted, reporting how many events were enabled at that point
        in :attr:`SimulationResult.pending_choices`.  Guided runs are the
        replay primitive of the exhaustive schedule explorer
        (:mod:`repro.runtime.explorer`).  A guide entry outside the range
        of enabled events raises :class:`ValueError`: a stale or corrupt
        guide must fail loudly instead of silently aliasing to a
        different schedule.
        """
        rng = random.Random(self.seed)
        run = self.begin(scripts, crash_schedule=crash_schedule)
        pending_choices = 0
        while run.steps < max_steps:
            choices = run.choices()
            if not choices:
                break
            if guide is not None:
                if run.steps >= len(guide):
                    pending_choices = len(choices)
                    break
                index = guide[run.steps]
                if not 0 <= index < len(choices):
                    raise ValueError(
                        f"guide entry at decision {run.steps} selects "
                        f"event {index}, but only {len(choices)} events "
                        f"are enabled; the guide does not belong to this "
                        f"configuration"
                    )
            else:
                choice = self.scheduling_policy.select(
                    choices, rng, run.steps
                )
                index = choices.index(choice)
            run.advance(index)
        return run.result(pending_choices=pending_choices)

"""Total-Order Broadcast from consensus objects — the k = 1 anchor.

The classical reduction (Chandra & Toueg [7]) adapted to axiomatic
consensus oracles: processes disseminate messages reliably, and agree on
the delivery order by running a sequence of consensus instances
``to:0, to:1, …``, each deciding a *batch* (a set of pending messages,
delivered in a deterministic order).  Every process walks the rounds in
order, proposing its pending set and delivering whatever batch the round's
consensus decided, so all processes deliver identical batch sequences —
total order.

Together with :func:`repro.agreement.from_broadcast.solve_agreement_with_
broadcast` (consensus = decide the first TO-delivered proposal) this
realizes the consensus ⇔ Total-Order-Broadcast equivalence recalled in
Section 1.2, the k = 1 boundary of the paper's question.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from ..core.message import Message, MessageId
from ..runtime.effects import Deliver, Effect, Propose
from ..runtime.process import BroadcastProcess

__all__ = ["TotalOrderBroadcast", "RoundAgreementBroadcast"]


class RoundAgreementBroadcast(BroadcastProcess):
    """Round-based agreement on delivery batches over k-SA oracles.

    With k = 1 oracles (consensus) every round decides a single batch and
    the result is Total-Order Broadcast.  With k > 1 oracles up to k
    batches per round may be decided — the "k-BO attempt" studied by the
    corollary experiments (see
    :class:`repro.broadcasts.kbo_attempt.KboAttemptBroadcast`).

    ``object_prefix`` names the oracle family (one object per round).
    """

    object_prefix = "to"

    def __init__(self, pid: int, n: int) -> None:
        super().__init__(pid, n)
        self._known: set[MessageId] = set()
        self._delivered: set[MessageId] = set()
        self._pending: list[Message] = []
        self._next_round = 0
        self._advancing = False

    def _advance_rounds(self) -> Iterator[Effect]:
        """Propose round objects until all currently-pending is delivered."""
        while any(m.uid not in self._delivered for m in self._pending):
            batch = tuple(
                sorted(
                    (m for m in self._pending
                     if m.uid not in self._delivered),
                    key=lambda m: m.uid,
                )
            )
            round_name = f"{self.object_prefix}:{self._next_round}"
            self._next_round += 1
            decided_batch = yield Propose(round_name, batch)
            for message in decided_batch:
                if message.uid not in self._delivered:
                    self._delivered.add(message.uid)
                    yield Deliver(message)

    def _learn(self, message: Message) -> Iterator[Effect]:
        if message.uid in self._known:
            return
        self._known.add(message.uid)
        yield from self.send_to_all(message)
        self._pending.append(message)
        # One round-walking generator at a time: rounds must be proposed
        # and their batches delivered strictly in order, and the active
        # generator re-reads ``pending``, so messages learned while it is
        # suspended across a propose are picked up by the next round.
        if self._advancing:
            return
        self._advancing = True
        try:
            yield from self._advance_rounds()
        finally:
            self._advancing = False

    def on_broadcast(self, message: Message) -> Iterator[Effect]:
        yield from self._learn(message)

    def on_receive(self, payload: Hashable, sender: int) -> Iterator[Effect]:
        message = payload
        assert isinstance(message, Message)
        yield from self._learn(message)


class TotalOrderBroadcast(RoundAgreementBroadcast):
    """Total-Order Broadcast: run :class:`RoundAgreementBroadcast` on k=1."""

    object_prefix = "to"

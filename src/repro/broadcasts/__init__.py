"""Broadcast *algorithms* (implementations over the runtime substrate).

Implementable in ``CAMP_n[∅]`` (send/receive only):

* :class:`SendToAllBroadcast` — the baseline;
* :class:`UniformReliableBroadcast` — forward-then-deliver;
* :class:`FifoBroadcast` — per-sender sequence numbers;
* :class:`CausalBroadcast` — vector clocks.

Requiring oracle objects (``CAMP_n[k-SA]``):

* :class:`TotalOrderBroadcast` — rounds of consensus (k = 1);
* :class:`KboAttemptBroadcast` — rounds of k-SA (the doomed corollary
  candidate);
* :class:`TrivialKsaBroadcast` — private k-SA objects, minimal adversary
  input;
* :class:`FirstKKsaBroadcast` — one shared k-SA object (Section 1.4's
  candidate).

All are deterministic step machines over
:class:`~repro.runtime.process.BroadcastProcess`, runnable both under the
free simulator and under Algorithm 1's adversarial scheduler.
"""

from .causal import CausalBroadcast
from .fifo import FifoBroadcast
from .first_k_ksa import FirstKKsaBroadcast
from .kbo_attempt import KboAttemptBroadcast
from .kstepped_ksa import KSteppedKsaBroadcast
from .scd import ScdBroadcast
from .send_to_all import SendToAllBroadcast
from .total_order import RoundAgreementBroadcast, TotalOrderBroadcast
from .trivial_ksa import TrivialKsaBroadcast
from .uniform_reliable import UniformReliableBroadcast

__all__ = [
    "CausalBroadcast",
    "FifoBroadcast",
    "FirstKKsaBroadcast",
    "KSteppedKsaBroadcast",
    "KboAttemptBroadcast",
    "RoundAgreementBroadcast",
    "ScdBroadcast",
    "SendToAllBroadcast",
    "TotalOrderBroadcast",
    "TrivialKsaBroadcast",
    "UniformReliableBroadcast",
]

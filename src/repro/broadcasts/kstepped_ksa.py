"""k-Stepped Broadcast over one k-SA object per round (Section 3.2).

The paper introduces k-Stepped Broadcast as the would-be characterization
of *iterated* k-SA: for each round ``a``, the set ``S_a`` of the a-th
messages of all processes may contribute at most k distinct "first of
the round" deliveries.  This class implements it the obvious way — one
shared k-SA object per round selects the round's head message:

* the a-th ``broadcast(m)`` proposes ``m`` on object ``step:a`` and
  delivers the decided message before anything else of round a;
* messages of round a received *before* the local a-th broadcast are
  buffered, so the agreed head is always the local first-of-round;
* everything buffered is flushed right behind the head.

On the free simulator the produced executions satisfy
:class:`~repro.specs.kstepped.KSteppedBroadcastSpec` — so iterated k-SA
is indeed solvable over it, one instance per round (see
:func:`repro.agreement.iterated.solve_iterated_agreement`).  The paper's
§3.2 point stands on top: this abstraction is *not compositional*
(restriction re-numbers the rounds), so it is not an admissible answer
to the characterization question — the Theorem 1 pipeline localizes its
failure to compositionality just like First-k's.

A process that receives round-a messages but never performs an a-th
broadcast of its own buffers them until its next broadcast; at
quiescence the driver's scripts are arranged so that all processes
broadcast in every round (the "lock-step pattern" the paper criticizes —
the abstraction is only meaningful under it).
"""

from __future__ import annotations

from typing import Hashable, Iterator

from ..core.message import Message, MessageId
from ..runtime.effects import Deliver, Effect, Propose
from ..runtime.process import BroadcastProcess

__all__ = ["KSteppedKsaBroadcast"]


class KSteppedKsaBroadcast(BroadcastProcess):
    """One k-SA object per round selects each round's first delivery."""

    def __init__(self, pid: int, n: int) -> None:
        super().__init__(pid, n)
        self._known: set[MessageId] = set()
        self._delivered: set[MessageId] = set()
        self._rounds_opened = 0  # rounds whose head was delivered locally
        self._buffer: dict[int, list[Message]] = {}

    def _deliver_new(self, message: Message) -> Iterator[Effect]:
        if message.uid not in self._delivered:
            self._delivered.add(message.uid)
            yield Deliver(message)

    def _flush_open_rounds(self) -> Iterator[Effect]:
        for round_index in sorted(list(self._buffer)):
            if round_index >= self._rounds_opened:
                continue
            for message in self._buffer.pop(round_index):
                yield from self._deliver_new(message)

    def on_broadcast(self, message: Message) -> Iterator[Effect]:
        round_index = message.uid.seq
        self._known.add(message.uid)
        decided = yield Propose(f"step:{round_index}", message)
        self._rounds_opened = max(self._rounds_opened, round_index + 1)
        yield from self._deliver_new(decided)
        yield from self.send_to_all(message)
        yield from self._deliver_new(message)
        yield from self._flush_open_rounds()

    def on_receive(self, payload: Hashable, sender: int) -> Iterator[Effect]:
        message = payload
        assert isinstance(message, Message)
        if message.uid in self._known:
            return
        self._known.add(message.uid)
        yield from self.send_to_all(message)
        round_index = message.uid.seq
        if round_index < self._rounds_opened:
            yield from self._deliver_new(message)
        else:
            self._buffer.setdefault(round_index, []).append(message)

"""First-k Broadcast over a single shared k-SA object (Section 1.4).

The Introduction's "simplistic" equivalence candidate, implemented: one
k-SA object (``"first"``) "selects the set of messages eligible for
initial delivery".  Before its first delivery, a process proposes the
first message it knows (its own broadcast, or the first one it receives)
and delivers the decided message first; everything else is delivered in
arrival order behind it.  Dissemination is forward-then-deliver.

In benign runs, at most k distinct messages are ever delivered first
(k-SA-Agreement on the shared object), i.e. the produced executions
satisfy :class:`~repro.specs.first_k.FirstKBroadcastSpec` — which is why
the abstraction solves k-SA (decide the content of your first delivery).
It is also the star witness of the Theorem 1 pipeline: Algorithm 1 runs
this very implementation into N-solo executions whose restriction to the
witness messages breaks the spec — localizing the equivalence failure in
the spec's missing compositionality.

The message decided by the shared object travels *through* the object
(k-SA transports proposed values), so a process may deliver a message it
has never received on the network — legal, and exactly the behaviour the
adversary's lines 17–25 must handle.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from ..core.message import Message, MessageId
from ..runtime.effects import Deliver, Effect, Propose
from ..runtime.process import BroadcastProcess

__all__ = ["FirstKKsaBroadcast"]


class FirstKKsaBroadcast(BroadcastProcess):
    """Agree on the first delivery through one shared k-SA object."""

    def __init__(self, pid: int, n: int) -> None:
        super().__init__(pid, n)
        self._known: set[MessageId] = set()
        self._delivered: set[MessageId] = set()
        self._backlog: list[Message] = []
        self._proposed = False
        self._head_done = False

    def _head(self, message: Message) -> Iterator[Effect]:
        """Ensure the agreed first delivery happened, seeding with ``message``.

        Messages learned while the proposition is in flight are buffered
        by :meth:`_tail` and released here, right behind the agreed head
        — nothing may be delivered before it.
        """
        if self._proposed:
            return
        self._proposed = True
        decided = yield Propose("first", message)
        if decided.uid not in self._delivered:
            self._delivered.add(decided.uid)
            yield Deliver(decided)
        self._head_done = True
        for buffered in self._backlog:
            if buffered.uid not in self._delivered:
                self._delivered.add(buffered.uid)
                yield Deliver(buffered)
        self._backlog.clear()

    def _tail(self, message: Message) -> Iterator[Effect]:
        if not self._head_done:
            self._backlog.append(message)
            return
        if message.uid not in self._delivered:
            self._delivered.add(message.uid)
            yield Deliver(message)

    def on_broadcast(self, message: Message) -> Iterator[Effect]:
        self._known.add(message.uid)
        yield from self._head(message)
        yield from self.send_to_all(message)
        yield from self._tail(message)

    def on_receive(self, payload: Hashable, sender: int) -> Iterator[Effect]:
        message = payload
        assert isinstance(message, Message)
        if message.uid in self._known:
            return
        self._known.add(message.uid)
        yield from self._head(message)
        yield from self.send_to_all(message)
        yield from self._tail(message)
